// Tests for verification routines and the configuration evaluator.
#include <gtest/gtest.h>

#include <cmath>

#include "asm/assembler.hpp"
#include "config/config.hpp"
#include "program/layout.hpp"
#include "verify/evaluate.hpp"
#include "support/error.hpp"
#include "verify/verifier.hpp"

namespace fpmix::verify {
namespace {

using arch::Opcode;
using arch::Operand;
namespace in = arch::intrinsics;

TEST(RelativeErrorVerifier, BasicChecks) {
  RelativeErrorVerifier v({1.0, -2.0, 0.0}, 1e-3, 1e-9);
  EXPECT_TRUE(v.verify(std::vector<double>{1.0, -2.0, 0.0}));
  EXPECT_TRUE(v.verify(std::vector<double>{1.0005, -2.001, 1e-10}));
  EXPECT_FALSE(v.verify(std::vector<double>{1.01, -2.0, 0.0}));
  EXPECT_FALSE(v.verify(std::vector<double>{1.0, -2.0}));        // count
  EXPECT_FALSE(v.verify(std::vector<double>{1.0, -2.0, 1e-3}));  // abs
  EXPECT_FALSE(v.verify(std::vector<double>{NAN, -2.0, 0.0}));
  EXPECT_FALSE(v.verify(std::vector<double>{INFINITY, -2.0, 0.0}));
}

TEST(RelativeErrorVerifier, PerOutputOverrides) {
  RelativeErrorVerifier v({10.0, 10.0}, 1e-6);
  v.set_output_tolerance(1, 0.5);
  EXPECT_TRUE(v.verify(std::vector<double>{10.0, 14.0}));   // loose slot
  EXPECT_FALSE(v.verify(std::vector<double>{10.1, 10.0}));  // tight slot
}

TEST(BitExactVerifier, ExactOrNothing) {
  const double x = 1.0 / 3.0;
  BitExactVerifier v({x});
  EXPECT_TRUE(v.verify(std::vector<double>{x}));
  EXPECT_FALSE(v.verify(std::vector<double>{x, x}));  // count mismatch
  // One ulp away must fail.
  EXPECT_FALSE(v.verify(std::vector<double>{std::nextafter(x, 1.0)}));
}

TEST(ThresholdVerifier, ChecksReportedError) {
  ThresholdVerifier v(0, 1e-4, 2);
  EXPECT_TRUE(v.verify(std::vector<double>{5e-5, 123.0}));
  EXPECT_FALSE(v.verify(std::vector<double>{2e-4, 123.0}));
  EXPECT_FALSE(v.verify(std::vector<double>{5e-5}));            // count
  EXPECT_FALSE(v.verify(std::vector<double>{NAN, 123.0}));      // non-finite
}

TEST(Evaluate, CrashCountsAsFailure) {
  // A program whose single-precision narrowing leads to a division that the
  // verifier would accept -- but the configuration flags the consumer
  // `ignore`, so the run traps and must be reported as failed.
  casm::Assembler a;
  a.begin_function("main", "main");
  const auto x = a.data_f64(2.0);
  a.emit(Opcode::kMovsdXM, Operand::xmm(2),
         Operand::mem_abs(static_cast<std::int32_t>(x)));
  a.emit(Opcode::kAddsd, Operand::xmm(2), Operand::xmm(2));
  a.emit(Opcode::kMulsd, Operand::xmm(2), Operand::xmm(2));
  a.emit(Opcode::kMovsdXX, Operand::xmm(0), Operand::xmm(2));
  a.intrin(in::Id::kOutputF64);
  a.halt();
  a.end_function();
  const program::Image img = program::relayout(a.finish("main"));
  auto ix = config::StructureIndex::build(program::lift(img));

  const std::vector<double> ref = reference_outputs(img);
  RelativeErrorVerifier verifier(ref, 1.0);  // accepts anything finite

  config::PrecisionConfig cfg;
  std::size_t add_id = SIZE_MAX, mul_id = SIZE_MAX;
  for (std::size_t i : ix.candidates()) {
    if (ix.instrs()[i].instr.op == Opcode::kAddsd) add_id = i;
    if (ix.instrs()[i].instr.op == Opcode::kMulsd) mul_id = i;
  }
  cfg.set_instr(add_id, config::Precision::kSingle);
  cfg.set_instr(mul_id, config::Precision::kIgnore);

  const EvalResult r = evaluate_config(img, ix, cfg, verifier);
  EXPECT_FALSE(r.passed);
  EXPECT_EQ(r.run_status, vm::RunResult::Status::kTrapped);
  EXPECT_NE(r.failure.find("sentinel"), std::string::npos);
}

TEST(Evaluate, BudgetBlowupCountsAsFailure) {
  casm::Assembler a;
  a.begin_function("main", "main");
  auto l = a.new_label();
  a.bind(l);
  a.emit(Opcode::kAddsd, Operand::xmm(1), Operand::xmm(1));
  a.jmp(l);
  a.end_function();
  const program::Image img = program::relayout(a.finish("main"));
  auto ix = config::StructureIndex::build(program::lift(img));
  RelativeErrorVerifier verifier({}, 1.0);
  EvalOptions opts;
  opts.max_instructions = 5000;
  const EvalResult r =
      evaluate_config(img, ix, config::PrecisionConfig{}, verifier, opts);
  EXPECT_FALSE(r.passed);
  EXPECT_EQ(r.run_status, vm::RunResult::Status::kOutOfBudget);
}

TEST(Evaluate, ReferenceOutputsThrowOnBrokenProgram) {
  casm::Assembler a;
  a.begin_function("main", "main");
  a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(1));
  a.emit(Opcode::kMov, Operand::gpr(2), Operand::make_imm(0));
  a.emit(Opcode::kIdiv, Operand::gpr(1), Operand::gpr(2));
  a.halt();
  a.end_function();
  const program::Image img = program::relayout(a.finish("main"));
  EXPECT_THROW(reference_outputs(img), fpmix::Error);
}

}  // namespace
}  // namespace fpmix::verify
