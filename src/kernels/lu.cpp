// LU: SSOR solver analogue.
//
// NAS LU applies symmetric successive over-relaxation to a structured-grid
// system; our analogue runs SSOR sweeps (forward lower + backward upper
// triangular passes) over a 2D 5-point operator, tracking the residual and
// a solution checksum. Multiple functions across sweep/residual/setup
// modules give the search a realistic hierarchy.
#include "kernels/workload.hpp"

#include "lang/builder.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::kernels {

using lang::Builder;
using lang::Expr;

namespace {

struct LuParams {
  std::size_t m;        // interior grid side
  std::size_t sweeps;   // SSOR iterations
  double omega;
};

LuParams lu_params(char cls) {
  switch (cls) {
    case 'S': return {16, 6, 1.2};
    case 'W': return {28, 8, 1.2};
    case 'A': return {48, 10, 1.2};
    case 'C': return {84, 12, 1.2};
    default: throw Error(strformat("lu: unknown class %c", cls));
  }
}

}  // namespace

Workload make_lu(char cls) {
  const LuParams p = lu_params(cls);
  const auto m = static_cast<std::int64_t>(p.m);
  const std::int64_t s = m + 2;
  const std::size_t total = static_cast<std::size_t>(s * s);

  Builder b;
  auto u = b.array_f64("u", total);
  auto f = b.array_f64("f", total);
  auto r = b.array_f64("r", total);

  // --- module lu_init ----------------------------------------------------------
  b.begin_func("setup", "lu_init");
  {
    auto i = b.var_i64("st_i");
    auto j = b.var_i64("st_j");
    b.for_(i, b.ci(1), b.ci(m + 1), [&] {
      b.for_(j, b.ci(1), b.ci(m + 1), [&] {
        // Smooth forcing field.
        b.store(f, Expr(i) * b.ci(s) + Expr(j),
                sin_(b.cf(0.18) * to_f64(i)) * cos_(b.cf(0.11) * to_f64(j)) +
                    b.cf(0.01) * to_f64(Expr(i) + Expr(j)));
      });
    });
  }
  b.end_func();

  // --- module lu_sweep: forward and backward SSOR passes ------------------------
  b.begin_func("sweep_lower", "lu_sweep");
  {
    auto i = b.var_i64("fl_i");
    auto j = b.var_i64("fl_j");
    auto id = b.var_i64("fl_id");
    auto res = b.var_f64("fl_res");
    b.for_(i, b.ci(1), b.ci(m + 1), [&] {
      b.for_(j, b.ci(1), b.ci(m + 1), [&] {
        b.set(id, Expr(i) * b.ci(s) + Expr(j));
        b.set(res, f[Expr(id)] -
                       (b.cf(4.0) * u[Expr(id)] - u[Expr(id) - b.ci(1)] -
                        u[Expr(id) + b.ci(1)] - u[Expr(id) - b.ci(s)] -
                        u[Expr(id) + b.ci(s)]));
        b.store(u, Expr(id),
                u[Expr(id)] + b.cf(p.omega) * Expr(res) / b.cf(4.0));
      });
    });
  }
  b.end_func();

  b.begin_func("sweep_upper", "lu_sweep");
  {
    auto i = b.var_i64("bu_i");
    auto j = b.var_i64("bu_j");
    auto id = b.var_i64("bu_id");
    auto res = b.var_f64("bu_res");
    b.for_(i, b.ci(m), b.ci(0), [&] {
      b.for_(j, b.ci(m), b.ci(0), [&] {
        b.set(id, Expr(i) * b.ci(s) + Expr(j));
        b.set(res, f[Expr(id)] -
                       (b.cf(4.0) * u[Expr(id)] - u[Expr(id) - b.ci(1)] -
                        u[Expr(id) + b.ci(1)] - u[Expr(id) - b.ci(s)] -
                        u[Expr(id) + b.ci(s)]));
        b.store(u, Expr(id),
                u[Expr(id)] + b.cf(p.omega) * Expr(res) / b.cf(4.0));
      }, /*step=*/-1);
    }, /*step=*/-1);
  }
  b.end_func();

  // --- module lu_resid -----------------------------------------------------------
  auto rnorm = b.var_f64("rnorm");
  b.begin_func("compute_resid", "lu_resid");
  {
    auto i = b.var_i64("rs_i");
    auto j = b.var_i64("rs_j");
    auto id = b.var_i64("rs_id");
    auto acc = b.var_f64("rs_acc");
    b.set(acc, b.cf(0.0));
    b.for_(i, b.ci(1), b.ci(m + 1), [&] {
      b.for_(j, b.ci(1), b.ci(m + 1), [&] {
        b.set(id, Expr(i) * b.ci(s) + Expr(j));
        b.store(r, Expr(id),
                f[Expr(id)] -
                    (b.cf(4.0) * u[Expr(id)] - u[Expr(id) - b.ci(1)] -
                     u[Expr(id) + b.ci(1)] - u[Expr(id) - b.ci(s)] -
                     u[Expr(id) + b.ci(s)]));
        b.set(acc, Expr(acc) + r[Expr(id)] * r[Expr(id)]);
      });
    });
    b.set(rnorm, sqrt_(acc));
  }
  b.end_func();

  // --- module lu_main --------------------------------------------------------------
  b.begin_func("main", "lu_main");
  {
    auto k = b.var_i64("mn_k");
    auto i = b.var_i64("mn_i");
    auto usum = b.var_f64("mn_usum");
    b.call("setup");
    b.for_(k, b.ci(0), b.ci(static_cast<std::int64_t>(p.sweeps)), [&] {
      b.call("sweep_lower");
      b.call("sweep_upper");
      b.call("compute_resid");
      b.output(rnorm);  // per-sweep residual history (loose)
    });
    b.set(usum, b.cf(0.0));
    b.for_(i, b.ci(0), b.ci(s * s),
           [&] { b.set(usum, Expr(usum) + u[Expr(i)]); });
    b.output(usum);  // figure of merit (tight)
  }
  b.end_func();

  Workload w;
  w.name = strformat("lu.%c", cls);
  w.model = b.take_model();
  w.rel_tol = 1e-7;  // checksum, tight-ish
  for (std::size_t k = 0; k < p.sweeps; ++k) {
    w.output_tols.push_back({k, 5e-3, 1e-8});
  }
  return w;
}

}  // namespace fpmix::kernels
