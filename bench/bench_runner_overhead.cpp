// Process-isolation overhead: in-process trials vs sandboxed workers.
//
// In-process: the seed path -- trials run on a thread pool inside the
// driver, sharing its address space.
// Isolated: every trial crosses a fork boundary -- canonical-key request
// out, CRC-framed verdict back, rlimits armed in the child. The gap
// between the two columns is the rent the sandbox charges for making a
// SIGSEGV in one trial invisible to the other thousand.
#include <cstdio>

#include "bench_util.hpp"
#include "runner/trial_runner.hpp"
#include "search/search.hpp"

namespace {

using namespace fpmix;

struct Row {
  double seconds = 0.0;
  std::size_t trials = 0;
  search::SearchResult result;
};

Row run_mode(const kernels::Workload& w, bool isolate, std::size_t lanes) {
  const program::Image img = kernels::build_image(w);
  auto ix = config::StructureIndex::build(program::lift(img));
  const auto verifier = kernels::make_verifier(w, img);

  search::SearchOptions opts;
  opts.keep_log = false;
  opts.num_threads = lanes;
  opts.isolate_trials = isolate;
  opts.num_workers = lanes;

  Row row;
  Timer t;
  row.result = search::run_search(img, &ix, *verifier, opts);
  row.seconds = t.elapsed_seconds();
  row.trials = row.result.configs_tested;
  return row;
}

void run_row(const kernels::Workload& w, std::size_t lanes) {
  const Row in = run_mode(w, /*isolate=*/false, lanes);
  const Row iso = run_mode(w, /*isolate=*/true, lanes);
  const double in_tps = in.seconds > 0 ? in.trials / in.seconds : 0.0;
  const double iso_tps = iso.seconds > 0 ? iso.trials / iso.seconds : 0.0;
  const bool identical =
      in.result.final_config == iso.result.final_config &&
      in.trials == iso.trials;
  std::printf("  %-24s %6zu %9.1f/s %9.1f/s %7.2fx %s\n", w.name.c_str(),
              in.trials, in_tps, iso_tps,
              iso_tps > 0 ? in_tps / iso_tps : 0.0,
              identical ? "identical" : "MISMATCH");
  std::fflush(stdout);
}

}  // namespace

int main() {
  if (!fpmix::runner::isolation_supported()) {
    std::printf("process isolation unsupported on this platform; skipping\n");
    return 0;
  }
  const std::size_t lanes = 4;
  std::printf("Trial throughput: in-process vs sandboxed workers (%zu lanes)\n",
              lanes);
  std::printf("  %-24s %6s %11s %11s %8s %s\n", "workload", "trials",
              "in-proc", "isolated", "overhead", "result");
  bench::print_rule();
  run_row(fpmix::kernels::make_ep('W'), lanes);
  run_row(fpmix::kernels::make_mg('W'), lanes);
  run_row(fpmix::kernels::make_ft('W'), lanes);
  return 0;
}
