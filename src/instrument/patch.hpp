// Basic-block patching and binary rewriting (Section 2.4, Figure 7).
//
// For every floating-point instruction selected by the configuration, the
// patcher splits the containing basic block into (1) the instructions before
// it, (2) the instruction itself and (3) the instructions after it, then
// replaces the middle with the snippet chain produced by the mini-compiler
// and rewires the surrounding edges. The layout engine (program::relayout)
// finally emits a fresh executable image -- the analogue of Dyninst's binary
// rewriter producing a new executable.
//
// The generic splice engine is shared with the cancellation-detection
// instrumenter (instrument/cancellation.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "config/config.hpp"
#include "config/structure.hpp"
#include "instrument/snippet.hpp"
#include "program/image.hpp"
#include "program/program.hpp"

namespace fpmix::instrument {

struct InstrumentStats {
  std::size_t wrapped = 0;          // instructions replaced by snippets
  std::size_t replaced_single = 0;  // of which executed in single precision
  std::size_t ignored = 0;          // flagged `ignore` and left untouched
  std::size_t snippet_instrs = 0;   // total instructions across all snippets
  std::size_t checks_elided = 0;    // sentinel tests removed by dataflow
};

struct InstrumentOptions {
  SnippetOptions snippet;
  /// Intra-block tag-state dataflow (the paper's Section 2.5: "static data
  /// flow analysis could improve overheads by detecting instructions that
  /// never encounter replaced double-precision numbers"): when a register's
  /// boxed/plain state is statically known, the snippet's sentinel test for
  /// that operand is elided or strength-reduced.
  bool dataflow_optimize = false;
};

struct InstrumentResult {
  program::Program patched;
  InstrumentStats stats;
};

/// Patches a lifted program according to `cfg`. The structure index must
/// have been built from this same program (instruction addresses are the
/// join key). Throws ProgramError when the program violates the
/// instrumentation preconditions (flags or scratch registers live across an
/// instrumented instruction).
InstrumentResult instrument(const program::Program& prog,
                            const config::StructureIndex& index,
                            const config::PrecisionConfig& cfg,
                            const InstrumentOptions& options = {});

/// End-to-end convenience: lift the image, patch it, rewrite it. This is the
/// paper's whole pipeline: binary in, mixed-precision binary out.
program::Image instrument_image(const program::Image& image,
                                const config::StructureIndex& index,
                                const config::PrecisionConfig& cfg,
                                InstrumentStats* stats = nullptr,
                                const InstrumentOptions& options = {});

// ---------------------------------------------------------------------------
// Generic splice engine.

/// Returns the snippet chain replacing `ins`, or nullopt to keep the
/// instruction untouched. Called exactly once per instruction, in program
/// order within each block.
using SnippetFactory =
    std::function<std::optional<SnippetChain>(const arch::Instr& ins)>;

/// Predicate used for the flags-liveness precondition check ("would this
/// instruction be wrapped?").
using WrapPredicate = std::function<bool(const arch::Instr& ins)>;

/// Rebuilds every function of `prog`, replacing instructions selected by
/// `factory` with their snippet chains (block split + edge rewire). Also
/// enforces that condition flags are not live across any wrapped
/// instruction.
program::Program splice_snippets(const program::Program& prog,
                                 const WrapPredicate& would_wrap,
                                 const SnippetFactory& factory,
                                 InstrumentStats* stats,
                                 const std::function<void()>& on_block_start =
                                     nullptr);

}  // namespace fpmix::instrument
