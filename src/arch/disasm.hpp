// Textual disassembly, used by the config explorer, the Figure-3 style
// configuration files, and error messages.
#pragma once

#include <string>

#include "arch/instr.hpp"

namespace fpmix::arch {

/// One operand, AT&T-free flat syntax: r3, xmm5, 42, [r1+r2*8+16].
std::string operand_to_string(const Operand& op, bool is_xmm_reg);

/// Whole instruction, e.g. "addsd xmm0, xmm1" or "jne 0x4002f1".
std::string instr_to_string(const Instr& ins);

/// "0x6f45ce \"addsd xmm0, xmm1\"" -- the form used in configuration files.
std::string instr_to_config_string(const Instr& ins);

}  // namespace fpmix::arch
