// Figure 8 reproduction: NAS MPI intra-node scaling of the instrumentation
// overhead.
//
// Paper (Figure 8): for EP/CG/FT/MG class A at 1/2/4/8 MPI ranks, the
// overhead of all-double instrumentation is mostly under 20X and generally
// *decreases* as ranks increase, because communication/synchronization time
// is not instrumented and takes a growing share of the fixed-size run.
//
// Our ranks are VM instances on std::threads meeting in the mini-MPI
// communicator; the same dilution mechanism applies.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace fpmix;
  std::printf("Figure 8: NAS MPI scaling of instrumentation overhead "
              "(class A)\n");
  std::printf("(paper: overheads < 25X, decreasing with rank count)\n\n");
  std::printf("%-6s %6s %14s %14s %10s %10s\n", "bench", "ranks", "orig (s)",
              "instr (s)", "wall ovh", "instr ovh");
  bench::print_rule(72);

  struct Row {
    const char* name;
    kernels::Workload (*make)(char, int);
  };
  const Row rows[] = {
      {"ep", kernels::make_ep},
      {"cg", kernels::make_cg},
      {"ft", kernels::make_ft},
      {"mg", kernels::make_mg},
  };
  for (const Row& row : rows) {
    for (int ranks : {1, 2, 4, 8}) {
      const kernels::Workload w = row.make('A', ranks);
      const program::Image orig = kernels::build_image(w);
      const program::Image inst = bench::all_double_instrumented(orig);
      const bench::TimedRun ro = bench::run_timed_mpi(orig, ranks);
      const bench::TimedRun ri = bench::run_timed_mpi(inst, ranks);
      if (!ro.ok || !ri.ok) {
        std::printf("%-6s %6d FAILED: %s%s\n", row.name, ranks,
                    ro.error.c_str(), ri.error.c_str());
        continue;
      }
      std::printf("%-6s %6d %14.3f %14.3f %9.1fX %9.1fX\n", row.name, ranks,
                  ro.seconds, ri.seconds, ri.seconds / ro.seconds,
                  double(ri.instructions) / double(ro.instructions));
    }
  }
  return 0;
}
