#include "support/strings.hpp"

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace fpmix {

std::string strformat(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                          s[b] == '\n')) {
    ++b;
  }
  size_t e = s.size();
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::vector<std::string_view> split_fields(std::string_view s,
                                           std::string_view seps) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && seps.find(s[i]) != std::string_view::npos) ++i;
    size_t j = i;
    while (j < s.size() && seps.find(s[j]) == std::string_view::npos) ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string_view> split_lines(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i <= s.size()) {
    size_t j = s.find('\n', i);
    if (j == std::string_view::npos) {
      if (i < s.size()) out.push_back(s.substr(i));
      break;
    }
    out.push_back(s.substr(i, j - i));
    i = j + 1;
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool parse_hex_u64(std::string_view s, std::uint64_t* out) {
  if (starts_with(s, "0x") || starts_with(s, "0X")) s.remove_prefix(2);
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    std::uint64_t d;
    if (c >= '0' && c <= '9') d = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') d = static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') d = static_cast<std::uint64_t>(c - 'A' + 10);
    else return false;
    v = (v << 4) | d;
  }
  *out = v;
  return true;
}

}  // namespace fpmix
