// Lazily-filled JIT compilation caches embedded in the predecode layer.
//
// A CodeSegment is immutable and shared (by ExecutableImages that splice it
// and by the IncrementalPatcher's per-signature variant table), so a blob of
// native code compiled from its micro-ops is reusable everywhere the segment
// is: a delta trial that re-splices mostly-unchanged functions re-JITs only
// the dirty ones. Likewise an ExecutableImage is shared (ImageCache, forked
// workers), so the linked whole-image code buffer is compiled at most once
// per image and profile variant. Both caches live behind a mutex on the
// otherwise-const owner; exec_image.hpp embeds these handles by value, which
// is why this header stays free of the emitter/linker machinery.
#pragma once

#include <memory>
#include <mutex>

namespace fpmix::vm::jit {

class SegmentBlob;
class JitImage;

/// Two slots: [0] plain, [1] profiled (per-instruction execution counters
/// compiled in). The tag-trap option does not fork the cache: compiled code
/// compares against a per-run sentinel value that is unmatchable when the
/// trap is disabled.
struct BlobCache {
  std::mutex mu;
  std::shared_ptr<const SegmentBlob> variant[2];
};

struct ImageJitCache {
  std::mutex mu;
  std::shared_ptr<const JitImage> variant[2];
};

}  // namespace fpmix::vm::jit
