#include "vm/minimpi.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace fpmix::vm {

MiniMpi::MiniMpi(int size) : size_(size) { FPMIX_CHECK(size >= 1); }

void MiniMpi::collective(const std::function<void()>& init,
                         const std::function<void()>& merge,
                         const std::function<void()>& consume) {
  std::unique_lock<std::mutex> lock(mutex_);
  // A new phase may not begin while the previous one drains.
  cv_.wait(lock, [this] { return !draining_; });
  if (arrived_ == 0 && init) init();
  if (merge) merge();
  ++arrived_;
  if (arrived_ == size_) {
    draining_ = true;
    leaving_ = size_;
    arrived_ = 0;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [this] { return draining_; });
  }
  if (consume) consume();
  if (--leaving_ == 0) {
    draining_ = false;
    cv_.notify_all();
  }
}

void MiniMpi::barrier() { collective(nullptr, nullptr, nullptr); }

double MiniMpi::allreduce_sum(double x) {
  double out = 0.0;
  collective([this] { scalar_ = 0.0; },
             [this, x] { scalar_ += x; },
             [this, &out] { out = scalar_; });
  return out;
}

double MiniMpi::allreduce_max(double x) {
  double out = 0.0;
  collective([this, x] { scalar_ = x; },
             [this, x] { scalar_ = std::max(scalar_, x); },
             [this, &out] { out = scalar_; });
  return out;
}

void MiniMpi::allreduce_vec(std::span<double> data) {
  collective(
      [this, data] { vec_.assign(data.size(), 0.0); },
      [this, data] {
        FPMIX_CHECK(vec_.size() == data.size());
        for (std::size_t i = 0; i < data.size(); ++i) vec_[i] += data[i];
      },
      [this, data] {
        std::copy(vec_.begin(), vec_.end(), data.begin());
      });
}

}  // namespace fpmix::vm
