#include "linalg/refine.hpp"

namespace fpmix::linalg {

double scaled_residual(const Dense<double>& a, const std::vector<double>& x,
                       const std::vector<double>& b) {
  const std::vector<double> r = residual(a, x, b);
  double norm_a = 0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += std::fabs(a.at(i, j));
    norm_a = std::max(norm_a, s);
  }
  const double den = norm_a * double(norm_inf(x)) + double(norm_inf(b));
  return den == 0 ? double(norm_inf(r)) : double(norm_inf(r)) / den;
}

RefineResult refine_solve(const Dense<double>& a, const std::vector<double>& b,
                          double tol, std::size_t max_iters) {
  const std::size_t n = a.rows();
  FPMIX_CHECK(b.size() == n);

  // Steps 1-3: factor and first solve entirely in single precision.
  Dense<float> lu = a.cast<float>();
  const std::vector<std::size_t> piv = lu_factor(&lu);
  std::vector<float> bf(n);
  for (std::size_t i = 0; i < n; ++i) bf[i] = static_cast<float>(b[i]);
  const std::vector<float> x0 = lu_solve(lu, piv, bf);

  RefineResult out;
  out.x.assign(x0.begin(), x0.end());

  for (std::size_t k = 1; k <= max_iters; ++k) {
    // Step 5 (*): double-precision residual.
    const std::vector<double> r = residual(a, out.x, b);
    // Steps 6-7: correction solve in single precision.
    std::vector<float> rf(n);
    for (std::size_t i = 0; i < n; ++i) rf[i] = static_cast<float>(r[i]);
    const std::vector<float> z = lu_solve(lu, piv, rf);
    // Step 8 (*): double-precision update.
    for (std::size_t i = 0; i < n; ++i) {
      out.x[i] += static_cast<double>(z[i]);
    }
    out.iterations = k;
    out.final_residual = scaled_residual(a, out.x, b);
    if (out.final_residual < tol) {
      out.converged = true;
      break;
    }
  }
  if (out.iterations == 0) out.final_residual = scaled_residual(a, out.x, b);
  return out;
}

}  // namespace fpmix::linalg
