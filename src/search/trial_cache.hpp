// Persistent trial cache for the configuration search.
//
// Every evaluated configuration (a "trial") is identified by the stable
// digest of its PrecisionConfig serialization. Outcomes are held in an
// in-memory cache and appended to a JSONL journal, so that
//   * identical sub-configurations -- common under binary splitting and
//     composition refinement -- are evaluated exactly once, and
//   * a crashed or interrupted search resumes by replaying the journal:
//     the deterministic search re-traverses the same frontier, but every
//     already-journaled trial is served from cache at zero evaluation cost.
//
// Cache entries are only valid for one *search identity*: the verifier
// (its fingerprint covers tolerances and a digest of the reference data)
// plus the evaluation-affecting options. Journals carry that identity in
// meta records, and replay skips trials recorded under a different one.
//
// Journal format (one JSON object per line; see DESIGN.md). Version-2
// records are *sealed*: a per-session sequence number and a CRC32 of the
// line are spliced in before the closing brace (support/journal.hpp), so
// replay detects interior corruption, replayed lines and lost records and
// skips exactly the damaged ones. Version-1 (unsealed) lines stay readable.
//   {"type":"meta","version":2,"search_fp":"<16-hex>","seq":1,"crc":"<8-hex>"}
//   {"type":"trial","key":"<16-hex>","unit":"func cg","cand":12,
//    "passed":false,"class":"trap","failure":"...","eval_ns":18234987,
//    "seq":2,"crc":"<8-hex>"}
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "verify/evaluate.hpp"

namespace fpmix::search {

/// Outcome of one evaluated configuration, as persisted in the journal.
/// Pass/fail, the failure class and the failure reason are everything the
/// search's decision procedure consumes, so they are everything the cache
/// has to keep.
struct CachedTrial {
  bool passed = false;
  verify::FailureClass failure_class = verify::FailureClass::kNone;
  std::string failure;
  std::uint64_t eval_ns = 0;  // live evaluation cost when first computed
  /// Incremental-pipeline accounting when first computed: estimated
  /// patch+predecode ns avoided vs. a cold build, and whether any attempt
  /// was served whole from the image cache. Informational (journal
  /// analysis); the search's decision procedure never reads them.
  std::uint64_t saved_ns = 0;
  bool image_cache_hit = false;
};

/// In-memory index of completed trials, keyed on the config digest.
class TrialCache {
 public:
  /// First insert wins (re-evaluating a config is deterministic, so a
  /// duplicate insert never carries new information).
  void insert(const std::string& key, CachedTrial trial);

  /// Returns the cached outcome, or nullptr on a miss.
  const CachedTrial* lookup(const std::string& key) const;

  std::size_t size() const { return trials_.size(); }

 private:
  std::unordered_map<std::string, CachedTrial> trials_;
};

/// Digest identifying a search's evaluation semantics: the verifier
/// fingerprint plus every option that can change a trial's outcome -- the
/// per-run instruction budget, the wall-clock deadline, and (when a fault
/// campaign is active) the campaign tag, so faulted journals never
/// contaminate clean runs. Options that only steer *which* configs get
/// tested (stop level, splitting, prioritisation, thread count) are
/// deliberately excluded so journals stay valid across them.
std::string search_fingerprint(const std::string& verifier_fingerprint,
                               std::uint64_t max_instructions_per_run,
                               std::uint64_t deadline_ms = 0,
                               const std::string& fault_tag = "");

/// Journal meta record announcing the search identity of subsequent trials.
std::string encode_meta_line(const std::string& search_fp);

/// Journal trial record.
std::string encode_trial_line(const std::string& key, const std::string& unit,
                              std::size_t candidates, const CachedTrial& t);

/// What journal replay saw, for logging and the recovery tests.
struct JournalReplayStats {
  std::size_t loaded = 0;         // trials inserted into the cache
  std::size_t foreign = 0;        // trials under a different search identity
  std::size_t malformed = 0;      // lines that do not parse as flat JSON
  std::size_t crc_mismatch = 0;   // sealed lines whose CRC failed
  std::size_t duplicate_seq = 0;  // sealed lines replaying an earlier seq
  std::size_t seq_gaps = 0;       // forward jumps in the sequence numbers
  std::size_t legacy = 0;         // accepted unsealed (version-1) records
};

/// Replays the journal at `path` into `cache`: trial records whose most
/// recent preceding meta record matches `search_fp` are inserted. Damaged
/// records self-identify -- a sealed line with a CRC mismatch, a replayed
/// sequence number, or a line that does not parse is skipped (with a
/// warning) and replay continues; one bad line never abandons the journal.
/// Returns the number of trials loaded; `stats` (optional) receives the
/// full breakdown. A missing file loads nothing.
std::size_t load_journal(const std::string& path,
                         const std::string& search_fp, TrialCache* cache,
                         JournalReplayStats* stats = nullptr);

}  // namespace fpmix::search
