// Shared predecoded images and the micro-op program representation.
//
// Constructing a vm::Machine used to repeat, per trial, work that depends
// only on the image bytes: decoding, branch-target -> instruction-index
// resolution, and (implicitly, on every retired instruction) operand-kind
// classification. ExecutableImage hoists all of it into a single build step
// whose result is immutable and shareable across Machines and threads: the
// search predecodes the unpatched reference once, and each trial predecodes
// only its freshly patched image.
//
// Lowering: every arch::Instr becomes exactly one MicroOp -- a compact
// record with pre-resolved register indices, an effective-address recipe
// (with absent base/index registers redirected to an always-zero register
// slot, so address computation is branch-free), the immediate, and a
// handler id selected by (opcode x operand shape). The execution engine
// dispatches through a function-pointer table indexed by that id, so the
// inner loop never re-inspects OperandKind.
//
// The 1:1 instruction<->micro-op mapping is load-bearing: the micro-op
// index IS the instruction index, so branch targets, profiles and trap
// diagnostics are shared verbatim with the reference switch interpreter.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "arch/instr.hpp"
#include "program/image.hpp"
#include "vm/jit/cache.hpp"

namespace fpmix::program {
struct FuncLayout;
}  // namespace fpmix::program

namespace fpmix::vm {

/// Handler selector: one enumerator per specialized (opcode x operand
/// shape) execution routine. Suffixes: RR/RI = gpr,gpr / gpr,imm;
/// XX/XM = xmm,xmm / xmm,[mem]. The handler table in machine.cpp is
/// indexed by these values.
enum class MicroKind : std::uint16_t {
  kNop = 0,
  kHalt,
  // Control flow (imm = resolved target micro-op index).
  kJmp, kJe, kJne, kJl, kJle, kJg, kJge, kJb, kJbe, kJa, kJae,
  kCall, kRet,
  // Integer file.
  kMovRR, kMovRI, kLoad, kStore, kLea,
  kAddRR, kAddRI, kSubRR, kSubRI, kImulRR, kImulRI,
  kIdivRR, kIdivRI, kIremRR, kIremRI,
  kAndRR, kAndRI, kOrRR, kOrRI, kXorRR, kXorRI,
  kShlRR, kShlRI, kShrRR, kShrRI, kSarRR, kSarRI,
  kCmpRR, kCmpRI, kTestRR, kTestRI,
  kPush, kPop,
  // XMM data movement.
  kMovqXR, kMovqRX, kMovsdXX, kMovsdXM, kMovsdMX, kMovssXM, kMovssMX,
  kMovapdXX, kMovapdXM, kMovapdMX, kPushX, kPopX,
  // Scalar f64.
  kAddsdXX, kAddsdXM, kSubsdXX, kSubsdXM, kMulsdXX, kMulsdXM,
  kDivsdXX, kDivsdXM, kMinsdXX, kMinsdXM, kMaxsdXX, kMaxsdXM,
  kSqrtsdXX, kSqrtsdXM, kUcomisdXX, kUcomisdXM,
  kCvtsd2ssXX, kCvtsd2ssXM, kCvtss2sdXX, kCvtss2sdXM,
  kCvtsi2sd, kCvttsd2si,
  // Scalar f32.
  kAddssXX, kAddssXM, kSubssXX, kSubssXM, kMulssXX, kMulssXM,
  kDivssXX, kDivssXM, kMinssXX, kMinssXM, kMaxssXX, kMaxssXM,
  kSqrtssXX, kSqrtssXM, kUcomissXX, kUcomissXM,
  kCvtsi2ss, kCvttss2si,
  // Packed f64 / f32.
  kAddpdXX, kAddpdXM, kSubpdXX, kSubpdXM, kMulpdXX, kMulpdXM,
  kDivpdXX, kDivpdXM, kSqrtpdXX, kSqrtpdXM,
  kAddpsXX, kAddpsXM, kSubpsXX, kSubpsXM, kMulpsXX, kMulpsXM,
  kDivpsXX, kDivpsXM, kSqrtpsXX, kSqrtpsXM,
  // 128-bit bitwise.
  kAndpdXX, kAndpdXM, kOrpdXX, kOrpdXM, kXorpdXX, kXorpdXM,
  // Intrinsic call (imm = intrinsics::Id).
  kIntrin,
  // Any legal-but-unspecialized form: delegates to the switch oracle for
  // this one instruction. Lowering never fails.
  kFallback,

  kNumMicroKinds,
};

/// Index of the always-zero register slot used by effective-address
/// recipes whose base or index register is absent (Machine's gpr file has
/// arch::kNumGprs + 1 slots; only 0..15 are architecturally writable).
inline constexpr std::uint8_t kZeroRegSlot = 16;

/// One predecoded instruction. 32 bytes; everything the handler needs
/// without touching arch::Instr on the hot path.
struct MicroOp {
  std::uint16_t kind = 0;      // MicroKind, stored raw for direct indexing
  std::uint8_t a = 0;          // dst register index (gpr or xmm file)
  std::uint8_t b = 0;          // src register index
  std::uint8_t ea_base = kZeroRegSlot;   // effective-address base slot
  std::uint8_t ea_index = kZeroRegSlot;  // effective-address index slot
  std::uint8_t ea_shift = 0;             // log2 of the scale (decode-checked)
  std::uint8_t pad_ = 0;
  std::int32_t ea_disp = 0;
  std::uint32_t pad2_ = 0;
  std::int64_t imm = 0;        // immediate / branch-target index / intrin id
  std::uint64_t aux = 0;       // kCall: precomputed return address
};
static_assert(sizeof(MicroOp) == 32);

/// Lowers one decoded instruction to its micro-op (always 1:1; lowering
/// never fails). The branch/call immediate passes through untouched, so the
/// caller decides whether it holds a local or a global instruction index.
MicroOp lower_instr(const arch::Instr& ins);

/// Predecoded, position-independent form of ONE function's code: the
/// decoded instructions and lowered micro-ops of a FuncLayout, with control
/// transfers kept in local form (branch imm = instruction index *within the
/// segment*, or one-past-the-end for a branch to the function's end; call
/// imm = callee *function index*; call aux = local return offset; instr
/// addr = local byte offset). Immutable and shared: the incremental patcher
/// caches segments per (function, precision signature) and
/// ExecutableImage::build_spliced rebases any mix of them into a full
/// image without re-decoding or re-lowering.
class CodeSegment {
 public:
  /// Decodes and lowers `layout`. Throws VmError if a branch relocation
  /// does not land on an instruction boundary within the segment.
  static std::shared_ptr<const CodeSegment> build(
      const program::FuncLayout& layout);

  std::size_t instruction_count() const { return code_.size(); }
  std::size_t byte_size() const { return byte_size_; }

  const std::vector<arch::Instr>& code() const { return code_; }
  const std::vector<MicroOp>& uops() const { return uops_; }

  /// Lazily-filled native-code cache (see jit/cache.hpp): the JIT engine
  /// compiles a segment's local-form micro-ops at most once per profile
  /// variant, so delta trials that re-splice shared segments re-JIT only
  /// the dirty functions.
  jit::BlobCache& jit_cache() const { return jit_cache_; }

 private:
  friend class ExecutableImage;
  CodeSegment() = default;

  std::vector<arch::Instr> code_;
  std::vector<MicroOp> uops_;
  /// Instruction indices whose imm needs `+ first instruction index of this
  /// segment` (branches) or resolution through the callee's segment (calls).
  std::vector<std::uint32_t> branch_sites_;
  std::vector<std::uint32_t> call_sites_;
  std::size_t byte_size_ = 0;
  mutable jit::BlobCache jit_cache_;
};

/// An immutable, shareable execution form of a program::Image: decoded
/// instructions with control-transfer targets resolved to instruction
/// indices, the address->index map, and the lowered micro-op stream.
/// Build once per image; share freely across Machines and threads.
class ExecutableImage {
 public:
  static constexpr std::size_t kNoIndex = ~static_cast<std::size_t>(0);

  /// Validates and predecodes `image` (taken by value: move in to avoid the
  /// copy). Throws VmError when the image has no code, when a control
  /// transfer targets a non-boundary, or when the entry point is not an
  /// instruction boundary.
  static std::shared_ptr<const ExecutableImage> build(program::Image image);

  /// Splices predecoded per-function segments (one per function, in program
  /// order, matching `image`'s layout) into a full executable: bulk-copies
  /// each segment's instructions and micro-ops, rebases addresses, and
  /// rewrites branch/call immediates to global instruction indices. Produces
  /// a result indistinguishable from build(std::move(image)) without
  /// re-decoding or re-lowering unchanged functions. Throws VmError under
  /// exactly the same conditions (and with the same messages) as build().
  static std::shared_ptr<const ExecutableImage> build_spliced(
      program::Image image,
      const std::vector<std::shared_ptr<const CodeSegment>>& segments);

  const program::Image& image() const { return image_; }

  /// Decoded instructions. NOTE: branch/call `src.imm` fields hold
  /// *instruction indices*, not addresses (resolved at build time).
  const std::vector<arch::Instr>& code() const { return code_; }

  const std::vector<MicroOp>& uops() const { return uops_; }

  std::size_t entry_index() const { return entry_index_; }

  /// Instruction index for an address, or kNoIndex.
  std::size_t index_of(std::uint64_t addr) const {
    auto it = index_of_addr_.find(addr);
    return it == index_of_addr_.end() ? kNoIndex
                                      : static_cast<std::size_t>(it->second);
  }

  /// Segments this image was spliced from (empty when built from scratch).
  /// Holding them keeps the structural sharing alive for diagnostics.
  const std::vector<std::shared_ptr<const CodeSegment>>& segments() const {
    return segments_;
  }

  /// When spliced: global instruction index of each segment's first
  /// instruction, plus a final total-count entry (size = segments + 1).
  const std::vector<std::size_t>& segment_first_index() const {
    return segment_first_index_;
  }

  /// Lazily-filled linked-native-code cache: the JIT engine links a whole
  /// image at most once per profile variant, so a warm ImageCache hit
  /// carries compiled code along with the predecode.
  jit::ImageJitCache& jit_cache() const { return jit_cache_; }

 private:
  ExecutableImage() = default;

  program::Image image_;
  std::vector<arch::Instr> code_;
  std::vector<MicroOp> uops_;
  std::unordered_map<std::uint64_t, std::uint32_t> index_of_addr_;
  std::size_t entry_index_ = 0;
  std::vector<std::shared_ptr<const CodeSegment>> segments_;
  std::vector<std::size_t> segment_first_index_;
  mutable jit::ImageJitCache jit_cache_;
};

}  // namespace fpmix::vm
