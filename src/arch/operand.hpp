// Instruction operands: registers, immediates and memory references.
#pragma once

#include <cstdint>

namespace fpmix::arch {

/// Register numbers 0..15 for both files. GPR 15 is the stack pointer by
/// convention (the assembler exposes it as `sp`).
inline constexpr std::uint8_t kNumGprs = 16;
inline constexpr std::uint8_t kNumXmms = 16;
inline constexpr std::uint8_t kSpReg = 15;

/// Sentinel meaning "no register" in a memory reference.
inline constexpr std::uint8_t kNoReg = 0xFF;

/// A memory reference: [base + index*scale + disp]. Any of base/index may be
/// kNoReg; an absolute address is expressed with both absent.
struct MemRef {
  std::uint8_t base = kNoReg;
  std::uint8_t index = kNoReg;
  std::uint8_t scale = 1;  // 1, 2, 4 or 8
  std::int32_t disp = 0;

  friend bool operator==(const MemRef&, const MemRef&) = default;
};

enum class OperandKind : std::uint8_t {
  kNone = 0,
  kGpr = 1,
  kXmm = 2,
  kImm = 3,
  kMem = 4,
};

/// A single operand. Plain struct (no invariants beyond kind-discriminated
/// fields); the encoder validates operand forms against the opcode.
struct Operand {
  OperandKind kind = OperandKind::kNone;
  std::uint8_t reg = 0;   // kGpr / kXmm
  std::int64_t imm = 0;   // kImm
  MemRef mem;             // kMem

  static Operand none() { return Operand{}; }
  static Operand gpr(std::uint8_t r) {
    return Operand{OperandKind::kGpr, r, 0, {}};
  }
  static Operand xmm(std::uint8_t r) {
    return Operand{OperandKind::kXmm, r, 0, {}};
  }
  static Operand make_imm(std::int64_t v) {
    return Operand{OperandKind::kImm, 0, v, {}};
  }
  static Operand make_mem(MemRef m) {
    return Operand{OperandKind::kMem, 0, 0, m};
  }
  /// [base + disp]
  static Operand mem_bd(std::uint8_t base, std::int32_t disp) {
    return make_mem(MemRef{base, kNoReg, 1, disp});
  }
  /// [base + index*scale + disp]
  static Operand mem_bisd(std::uint8_t base, std::uint8_t index,
                          std::uint8_t scale, std::int32_t disp) {
    return make_mem(MemRef{base, index, scale, disp});
  }
  /// [disp] absolute
  static Operand mem_abs(std::int32_t addr) {
    return make_mem(MemRef{kNoReg, kNoReg, 1, addr});
  }

  bool is_none() const { return kind == OperandKind::kNone; }
  bool is_gpr() const { return kind == OperandKind::kGpr; }
  bool is_xmm() const { return kind == OperandKind::kXmm; }
  bool is_imm() const { return kind == OperandKind::kImm; }
  bool is_mem() const { return kind == OperandKind::kMem; }

  friend bool operator==(const Operand&, const Operand&) = default;
};

}  // namespace fpmix::arch
