#include "vm/exec_image.hpp"

#include <bit>
#include <utility>

#include "arch/encode.hpp"
#include "arch/opcode.hpp"
#include "program/layout.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::vm {

using arch::Instr;
using arch::Opcode;
using arch::Operand;

namespace {

void fill_ea(const arch::MemRef& m, MicroOp* u) {
  u->ea_base = m.base == arch::kNoReg ? kZeroRegSlot : m.base;
  u->ea_index = m.index == arch::kNoReg ? kZeroRegSlot : m.index;
  // Decode guarantees scale is 1/2/4/8; a shift keeps the index term off
  // the multiplier on the engine's address critical path.
  u->ea_shift = static_cast<std::uint8_t>(std::countr_zero(m.scale));
  u->ea_disp = m.disp;
}

/// Picks the XX or XM variant of an FP op from the src operand and fills
/// the shared fields (dst xmm in `a`; src xmm in `b` or the address
/// recipe). Returns kFallback for any form the specialization set does not
/// cover, which the engine executes through the switch oracle.
MicroKind xmm_variant(const Instr& ins, MicroKind xx, MicroKind xm,
                      MicroOp* u) {
  if (!ins.dst.is_xmm()) return MicroKind::kFallback;
  u->a = ins.dst.reg;
  if (ins.src.is_xmm()) {
    u->b = ins.src.reg;
    return xx;
  }
  if (ins.src.is_mem()) {
    fill_ea(ins.src.mem, u);
    return xm;
  }
  return MicroKind::kFallback;
}

/// Same scheme for two-operand integer ops (gpr,gpr / gpr,imm).
MicroKind int_variant(const Instr& ins, MicroKind rr, MicroKind ri,
                      MicroOp* u) {
  if (!ins.dst.is_gpr()) return MicroKind::kFallback;
  u->a = ins.dst.reg;
  if (ins.src.is_gpr()) {
    u->b = ins.src.reg;
    return rr;
  }
  if (ins.src.is_imm()) {
    u->imm = ins.src.imm;
    return ri;
  }
  return MicroKind::kFallback;
}

}  // namespace

MicroOp lower_instr(const Instr& ins) {
  MicroOp u;
  const auto set = [&u](MicroKind k) {
    u.kind = static_cast<std::uint16_t>(k);
  };
  switch (ins.op) {
    case Opcode::kNop: set(MicroKind::kNop); break;
    case Opcode::kHalt: set(MicroKind::kHalt); break;

    case Opcode::kJmp: set(MicroKind::kJmp); u.imm = ins.src.imm; break;
    case Opcode::kJe: set(MicroKind::kJe); u.imm = ins.src.imm; break;
    case Opcode::kJne: set(MicroKind::kJne); u.imm = ins.src.imm; break;
    case Opcode::kJl: set(MicroKind::kJl); u.imm = ins.src.imm; break;
    case Opcode::kJle: set(MicroKind::kJle); u.imm = ins.src.imm; break;
    case Opcode::kJg: set(MicroKind::kJg); u.imm = ins.src.imm; break;
    case Opcode::kJge: set(MicroKind::kJge); u.imm = ins.src.imm; break;
    case Opcode::kJb: set(MicroKind::kJb); u.imm = ins.src.imm; break;
    case Opcode::kJbe: set(MicroKind::kJbe); u.imm = ins.src.imm; break;
    case Opcode::kJa: set(MicroKind::kJa); u.imm = ins.src.imm; break;
    case Opcode::kJae: set(MicroKind::kJae); u.imm = ins.src.imm; break;
    case Opcode::kCall:
      set(MicroKind::kCall);
      u.imm = ins.src.imm;
      u.aux = ins.addr + ins.size;  // return address, precomputed
      break;
    case Opcode::kRet: set(MicroKind::kRet); break;

    case Opcode::kMov:
      set(int_variant(ins, MicroKind::kMovRR, MicroKind::kMovRI, &u));
      break;
    case Opcode::kLoad:
      if (ins.dst.is_gpr() && ins.src.is_mem()) {
        set(MicroKind::kLoad);
        u.a = ins.dst.reg;
        fill_ea(ins.src.mem, &u);
      } else {
        set(MicroKind::kFallback);
      }
      break;
    case Opcode::kStore:
      if (ins.dst.is_mem() && ins.src.is_gpr()) {
        set(MicroKind::kStore);
        u.b = ins.src.reg;
        fill_ea(ins.dst.mem, &u);
      } else {
        set(MicroKind::kFallback);
      }
      break;
    case Opcode::kLea:
      if (ins.dst.is_gpr() && ins.src.is_mem()) {
        set(MicroKind::kLea);
        u.a = ins.dst.reg;
        fill_ea(ins.src.mem, &u);
      } else {
        set(MicroKind::kFallback);
      }
      break;

    case Opcode::kAdd:
      set(int_variant(ins, MicroKind::kAddRR, MicroKind::kAddRI, &u));
      break;
    case Opcode::kSub:
      set(int_variant(ins, MicroKind::kSubRR, MicroKind::kSubRI, &u));
      break;
    case Opcode::kImul:
      set(int_variant(ins, MicroKind::kImulRR, MicroKind::kImulRI, &u));
      break;
    case Opcode::kIdiv:
      set(int_variant(ins, MicroKind::kIdivRR, MicroKind::kIdivRI, &u));
      break;
    case Opcode::kIrem:
      set(int_variant(ins, MicroKind::kIremRR, MicroKind::kIremRI, &u));
      break;
    case Opcode::kAnd:
      set(int_variant(ins, MicroKind::kAndRR, MicroKind::kAndRI, &u));
      break;
    case Opcode::kOr:
      set(int_variant(ins, MicroKind::kOrRR, MicroKind::kOrRI, &u));
      break;
    case Opcode::kXor:
      set(int_variant(ins, MicroKind::kXorRR, MicroKind::kXorRI, &u));
      break;
    case Opcode::kShl:
      set(int_variant(ins, MicroKind::kShlRR, MicroKind::kShlRI, &u));
      break;
    case Opcode::kShr:
      set(int_variant(ins, MicroKind::kShrRR, MicroKind::kShrRI, &u));
      break;
    case Opcode::kSar:
      set(int_variant(ins, MicroKind::kSarRR, MicroKind::kSarRI, &u));
      break;
    case Opcode::kCmp:
      set(int_variant(ins, MicroKind::kCmpRR, MicroKind::kCmpRI, &u));
      break;
    case Opcode::kTest:
      set(int_variant(ins, MicroKind::kTestRR, MicroKind::kTestRI, &u));
      break;
    case Opcode::kPush: set(MicroKind::kPush); u.a = ins.dst.reg; break;
    case Opcode::kPop: set(MicroKind::kPop); u.a = ins.dst.reg; break;

    case Opcode::kMovqXR:
      set(MicroKind::kMovqXR);
      u.a = ins.dst.reg;
      u.b = ins.src.reg;
      break;
    case Opcode::kMovqRX:
      set(MicroKind::kMovqRX);
      u.a = ins.dst.reg;
      u.b = ins.src.reg;
      break;
    case Opcode::kMovsdXX:
      set(MicroKind::kMovsdXX);
      u.a = ins.dst.reg;
      u.b = ins.src.reg;
      break;
    case Opcode::kMovsdXM:
      set(MicroKind::kMovsdXM);
      u.a = ins.dst.reg;
      fill_ea(ins.src.mem, &u);
      break;
    case Opcode::kMovsdMX:
      set(MicroKind::kMovsdMX);
      u.b = ins.src.reg;
      fill_ea(ins.dst.mem, &u);
      break;
    case Opcode::kMovssXM:
      set(MicroKind::kMovssXM);
      u.a = ins.dst.reg;
      fill_ea(ins.src.mem, &u);
      break;
    case Opcode::kMovssMX:
      set(MicroKind::kMovssMX);
      u.b = ins.src.reg;
      fill_ea(ins.dst.mem, &u);
      break;
    case Opcode::kMovapdXX:
      set(MicroKind::kMovapdXX);
      u.a = ins.dst.reg;
      u.b = ins.src.reg;
      break;
    case Opcode::kMovapdXM:
      set(MicroKind::kMovapdXM);
      u.a = ins.dst.reg;
      fill_ea(ins.src.mem, &u);
      break;
    case Opcode::kMovapdMX:
      set(MicroKind::kMovapdMX);
      u.b = ins.src.reg;
      fill_ea(ins.dst.mem, &u);
      break;
    case Opcode::kPushX: set(MicroKind::kPushX); u.a = ins.dst.reg; break;
    case Opcode::kPopX: set(MicroKind::kPopX); u.a = ins.dst.reg; break;

    case Opcode::kAddsd:
      set(xmm_variant(ins, MicroKind::kAddsdXX, MicroKind::kAddsdXM, &u));
      break;
    case Opcode::kSubsd:
      set(xmm_variant(ins, MicroKind::kSubsdXX, MicroKind::kSubsdXM, &u));
      break;
    case Opcode::kMulsd:
      set(xmm_variant(ins, MicroKind::kMulsdXX, MicroKind::kMulsdXM, &u));
      break;
    case Opcode::kDivsd:
      set(xmm_variant(ins, MicroKind::kDivsdXX, MicroKind::kDivsdXM, &u));
      break;
    case Opcode::kMinsd:
      set(xmm_variant(ins, MicroKind::kMinsdXX, MicroKind::kMinsdXM, &u));
      break;
    case Opcode::kMaxsd:
      set(xmm_variant(ins, MicroKind::kMaxsdXX, MicroKind::kMaxsdXM, &u));
      break;
    case Opcode::kSqrtsd:
      set(xmm_variant(ins, MicroKind::kSqrtsdXX, MicroKind::kSqrtsdXM, &u));
      break;
    case Opcode::kUcomisd:
      set(xmm_variant(ins, MicroKind::kUcomisdXX, MicroKind::kUcomisdXM,
                      &u));
      break;
    case Opcode::kCvtsd2ss:
      set(xmm_variant(ins, MicroKind::kCvtsd2ssXX, MicroKind::kCvtsd2ssXM,
                      &u));
      break;
    case Opcode::kCvtss2sd:
      set(xmm_variant(ins, MicroKind::kCvtss2sdXX, MicroKind::kCvtss2sdXM,
                      &u));
      break;
    case Opcode::kCvtsi2sd:
      set(MicroKind::kCvtsi2sd);
      u.a = ins.dst.reg;
      u.b = ins.src.reg;
      break;
    case Opcode::kCvttsd2si:
      set(MicroKind::kCvttsd2si);
      u.a = ins.dst.reg;
      u.b = ins.src.reg;
      break;

    case Opcode::kAddss:
      set(xmm_variant(ins, MicroKind::kAddssXX, MicroKind::kAddssXM, &u));
      break;
    case Opcode::kSubss:
      set(xmm_variant(ins, MicroKind::kSubssXX, MicroKind::kSubssXM, &u));
      break;
    case Opcode::kMulss:
      set(xmm_variant(ins, MicroKind::kMulssXX, MicroKind::kMulssXM, &u));
      break;
    case Opcode::kDivss:
      set(xmm_variant(ins, MicroKind::kDivssXX, MicroKind::kDivssXM, &u));
      break;
    case Opcode::kMinss:
      set(xmm_variant(ins, MicroKind::kMinssXX, MicroKind::kMinssXM, &u));
      break;
    case Opcode::kMaxss:
      set(xmm_variant(ins, MicroKind::kMaxssXX, MicroKind::kMaxssXM, &u));
      break;
    case Opcode::kSqrtss:
      set(xmm_variant(ins, MicroKind::kSqrtssXX, MicroKind::kSqrtssXM, &u));
      break;
    case Opcode::kUcomiss:
      set(xmm_variant(ins, MicroKind::kUcomissXX, MicroKind::kUcomissXM,
                      &u));
      break;
    case Opcode::kCvtsi2ss:
      set(MicroKind::kCvtsi2ss);
      u.a = ins.dst.reg;
      u.b = ins.src.reg;
      break;
    case Opcode::kCvttss2si:
      set(MicroKind::kCvttss2si);
      u.a = ins.dst.reg;
      u.b = ins.src.reg;
      break;

    case Opcode::kAddpd:
      set(xmm_variant(ins, MicroKind::kAddpdXX, MicroKind::kAddpdXM, &u));
      break;
    case Opcode::kSubpd:
      set(xmm_variant(ins, MicroKind::kSubpdXX, MicroKind::kSubpdXM, &u));
      break;
    case Opcode::kMulpd:
      set(xmm_variant(ins, MicroKind::kMulpdXX, MicroKind::kMulpdXM, &u));
      break;
    case Opcode::kDivpd:
      set(xmm_variant(ins, MicroKind::kDivpdXX, MicroKind::kDivpdXM, &u));
      break;
    case Opcode::kSqrtpd:
      set(xmm_variant(ins, MicroKind::kSqrtpdXX, MicroKind::kSqrtpdXM, &u));
      break;
    case Opcode::kAddps:
      set(xmm_variant(ins, MicroKind::kAddpsXX, MicroKind::kAddpsXM, &u));
      break;
    case Opcode::kSubps:
      set(xmm_variant(ins, MicroKind::kSubpsXX, MicroKind::kSubpsXM, &u));
      break;
    case Opcode::kMulps:
      set(xmm_variant(ins, MicroKind::kMulpsXX, MicroKind::kMulpsXM, &u));
      break;
    case Opcode::kDivps:
      set(xmm_variant(ins, MicroKind::kDivpsXX, MicroKind::kDivpsXM, &u));
      break;
    case Opcode::kSqrtps:
      set(xmm_variant(ins, MicroKind::kSqrtpsXX, MicroKind::kSqrtpsXM, &u));
      break;

    case Opcode::kAndpd:
      set(xmm_variant(ins, MicroKind::kAndpdXX, MicroKind::kAndpdXM, &u));
      break;
    case Opcode::kOrpd:
      set(xmm_variant(ins, MicroKind::kOrpdXX, MicroKind::kOrpdXM, &u));
      break;
    case Opcode::kXorpd:
      set(xmm_variant(ins, MicroKind::kXorpdXX, MicroKind::kXorpdXM, &u));
      break;

    case Opcode::kIntrin:
      set(MicroKind::kIntrin);
      u.imm = ins.src.imm;
      break;

    default:
      set(MicroKind::kFallback);
      break;
  }
  return u;
}

std::shared_ptr<const ExecutableImage> ExecutableImage::build(
    program::Image image) {
  // shared_ptr<ExecutableImage> first so members stay mutable during
  // construction; returned as pointer-to-const.
  auto exec = std::shared_ptr<ExecutableImage>(new ExecutableImage);
  exec->image_ = std::move(image);
  exec->image_.validate();
  exec->code_ = arch::decode_all(exec->image_.code, exec->image_.code_base);
  if (exec->code_.empty()) throw VmError("image has no code");
  exec->index_of_addr_.reserve(exec->code_.size() * 2);
  for (std::size_t i = 0; i < exec->code_.size(); ++i) {
    exec->index_of_addr_[exec->code_[i].addr] =
        static_cast<std::uint32_t>(i);
  }
  // Resolve branch/call targets to instruction indices once.
  for (Instr& ins : exec->code_) {
    const auto& info = arch::opcode_info(ins.op);
    if (info.is_branch || info.is_call) {
      const auto target = static_cast<std::uint64_t>(ins.src.imm);
      auto it = exec->index_of_addr_.find(target);
      if (it == exec->index_of_addr_.end()) {
        throw VmError(strformat(
            "control transfer at 0x%llx targets 0x%llx, which is not an "
            "instruction boundary",
            static_cast<unsigned long long>(ins.addr),
            static_cast<unsigned long long>(target)));
      }
      ins.src.imm = it->second;
    }
  }
  const std::size_t entry = exec->index_of(exec->image_.entry);
  if (entry == kNoIndex) {
    throw VmError(strformat(
        "entry point 0x%llx is not an instruction boundary",
        static_cast<unsigned long long>(exec->image_.entry)));
  }
  exec->entry_index_ = entry;

  exec->uops_.reserve(exec->code_.size());
  for (const Instr& ins : exec->code_) {
    exec->uops_.push_back(lower_instr(ins));
  }
  return exec;
}

std::shared_ptr<const CodeSegment> CodeSegment::build(
    const program::FuncLayout& layout) {
  auto seg = std::shared_ptr<CodeSegment>(new CodeSegment);
  seg->byte_size_ = layout.bytes.size();
  // Decoding at image base 0 makes every instr addr a local byte offset.
  seg->code_ = arch::decode_all(layout.bytes, /*image_base=*/0);

  std::unordered_map<std::uint64_t, std::uint32_t> index_of_off;
  index_of_off.reserve(seg->code_.size() * 2);
  for (std::size_t i = 0; i < seg->code_.size(); ++i) {
    index_of_off[seg->code_[i].addr] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t i = 0; i < seg->code_.size(); ++i) {
    Instr& ins = seg->code_[i];
    const auto& info = arch::opcode_info(ins.op);
    if (info.is_branch) {
      const auto target = static_cast<std::uint64_t>(ins.src.imm);
      if (target == seg->byte_size_) {
        // Branch to the function's end (an empty trailing block): local
        // index one-past-the-end, resolved against the NEXT function's
        // first instruction -- or rejected -- at splice time.
        ins.src.imm = static_cast<std::int64_t>(seg->code_.size());
      } else {
        auto it = index_of_off.find(target);
        if (it == index_of_off.end()) {
          throw VmError(strformat(
              "branch at local offset 0x%llx targets local offset 0x%llx, "
              "which is not an instruction boundary in its segment",
              static_cast<unsigned long long>(ins.addr),
              static_cast<unsigned long long>(target)));
        }
        ins.src.imm = it->second;
      }
      seg->branch_sites_.push_back(static_cast<std::uint32_t>(i));
    } else if (info.is_call) {
      // imm stays the callee function index until splice time.
      seg->call_sites_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  seg->uops_.reserve(seg->code_.size());
  for (const Instr& ins : seg->code_) {
    seg->uops_.push_back(lower_instr(ins));
  }
  return seg;
}

std::shared_ptr<const ExecutableImage> ExecutableImage::build_spliced(
    program::Image image,
    const std::vector<std::shared_ptr<const CodeSegment>>& segments) {
  auto exec = std::shared_ptr<ExecutableImage>(new ExecutableImage);
  exec->image_ = std::move(image);
  exec->image_.validate();

  const std::size_t n = segments.size();
  std::vector<std::uint64_t> seg_addr(n);
  std::vector<std::size_t> instr_base(n + 1);
  std::uint64_t pc = exec->image_.code_base;
  std::size_t total = 0;
  for (std::size_t f = 0; f < n; ++f) {
    seg_addr[f] = pc;
    instr_base[f] = total;
    pc += segments[f]->byte_size_;
    total += segments[f]->code_.size();
  }
  instr_base[n] = total;
  if (pc - exec->image_.code_base != exec->image_.code.size()) {
    throw VmError("spliced segments do not cover the image's code section");
  }
  if (total == 0) throw VmError("image has no code");

  exec->code_.reserve(total);
  exec->uops_.reserve(total);
  exec->index_of_addr_.reserve(total * 2);
  for (std::size_t f = 0; f < n; ++f) {
    const CodeSegment& seg = *segments[f];
    const std::uint64_t base = seg_addr[f];
    exec->code_.insert(exec->code_.end(), seg.code_.begin(),
                       seg.code_.end());
    exec->uops_.insert(exec->uops_.end(), seg.uops_.begin(),
                       seg.uops_.end());
    for (std::size_t i = instr_base[f]; i < instr_base[f + 1]; ++i) {
      Instr& ins = exec->code_[i];
      ins.addr += base;
      exec->index_of_addr_[ins.addr] = static_cast<std::uint32_t>(i);
    }
  }

  // Control-transfer fixups. Targets are read from the pristine segment
  // data (the copies above were already rebased), and the out-of-range
  // errors reconstruct the absolute target address so the message matches
  // build()'s byte-for-byte.
  for (std::size_t f = 0; f < n; ++f) {
    const CodeSegment& seg = *segments[f];
    const std::uint64_t base = seg_addr[f];
    const std::size_t ibase = instr_base[f];
    for (std::uint32_t site : seg.branch_sites_) {
      const auto local = static_cast<std::size_t>(seg.code_[site].src.imm);
      const std::size_t global = ibase + local;
      if (global >= total) {
        const std::uint64_t target =
            base + (local == seg.code_.size() ? seg.byte_size_
                                              : seg.code_[local].addr);
        throw VmError(strformat(
            "control transfer at 0x%llx targets 0x%llx, which is not an "
            "instruction boundary",
            static_cast<unsigned long long>(base + seg.code_[site].addr),
            static_cast<unsigned long long>(target)));
      }
      exec->code_[ibase + site].src.imm = static_cast<std::int64_t>(global);
      exec->uops_[ibase + site].imm = static_cast<std::int64_t>(global);
    }
    for (std::uint32_t site : seg.call_sites_) {
      const auto callee = static_cast<std::size_t>(seg.code_[site].src.imm);
      FPMIX_CHECK(callee < n);
      const std::size_t global = instr_base[callee];
      if (global >= total) {
        // Callee (and every function after it) is empty: its address is not
        // an instruction boundary, exactly as build() would discover.
        throw VmError(strformat(
            "control transfer at 0x%llx targets 0x%llx, which is not an "
            "instruction boundary",
            static_cast<unsigned long long>(base + seg.code_[site].addr),
            static_cast<unsigned long long>(seg_addr[callee])));
      }
      exec->code_[ibase + site].src.imm = static_cast<std::int64_t>(global);
      MicroOp& u = exec->uops_[ibase + site];
      u.imm = static_cast<std::int64_t>(global);
      u.aux += base;  // local return offset -> absolute return address
    }
  }

  const std::size_t entry = exec->index_of(exec->image_.entry);
  if (entry == kNoIndex) {
    throw VmError(strformat(
        "entry point 0x%llx is not an instruction boundary",
        static_cast<unsigned long long>(exec->image_.entry)));
  }
  exec->entry_index_ = entry;
  exec->segments_ = segments;
  exec->segment_first_index_ = std::move(instr_base);
  return exec;
}

}  // namespace fpmix::vm
