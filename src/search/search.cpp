#include "search/search.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <fstream>
#include <memory>

#include "net/socket.hpp"
#include "runner/worker_pool.hpp"
#include "search/scheduler.hpp"
#include "search/trial_cache.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/journal.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "verify/trial_builder.hpp"
#include "vm/jit/jit.hpp"
#include "vm/machine.hpp"

namespace fpmix::search {

using config::Precision;
using config::PrecisionConfig;
using config::StructureIndex;

namespace {

/// A unit of the configuration space: one structure (or partition) whose
/// candidates are flipped to single precision while the rest of the program
/// stays double.
struct Unit {
  enum class Kind : std::uint8_t {
    kModule,
    kFunction,
    kFuncPart,   // contiguous range of a function's blocks
    kBlock,
    kBlockPart,  // contiguous range of a block's candidate instructions
    kInstr,
  };
  Kind kind;
  std::size_t id = 0;                 // module/function/block/instr index
  std::vector<std::size_t> blocks;    // kFuncPart
  std::vector<std::size_t> instrs;    // kBlockPart
  std::uint64_t weight = 0;           // profiled executions of candidates
  std::uint64_t seq = 0;              // tie-break for deterministic order
};

std::vector<std::size_t> unit_candidates(const StructureIndex& ix,
                                         const Unit& u) {
  switch (u.kind) {
    case Unit::Kind::kModule:
      return ix.modules()[u.id].candidates;
    case Unit::Kind::kFunction:
      return ix.funcs()[u.id].candidates;
    case Unit::Kind::kFuncPart: {
      std::vector<std::size_t> out;
      for (std::size_t b : u.blocks) {
        const auto& c = ix.blocks()[b].candidates;
        out.insert(out.end(), c.begin(), c.end());
      }
      return out;
    }
    case Unit::Kind::kBlock:
      return ix.blocks()[u.id].candidates;
    case Unit::Kind::kBlockPart:
      return u.instrs;
    case Unit::Kind::kInstr:
      return {u.id};
  }
  return {};
}

std::uint64_t weight_of(const StructureIndex& ix,
                        const std::vector<std::size_t>& candidates) {
  std::uint64_t w = 0;
  for (std::size_t i : candidates) w += ix.instrs()[i].exec_weight;
  return w;
}

PrecisionConfig config_for(const Unit& u) {
  PrecisionConfig cfg;
  switch (u.kind) {
    case Unit::Kind::kModule:
      cfg.set_module(u.id, Precision::kSingle);
      break;
    case Unit::Kind::kFunction:
      cfg.set_func(u.id, Precision::kSingle);
      break;
    case Unit::Kind::kFuncPart:
      for (std::size_t b : u.blocks) cfg.set_block(b, Precision::kSingle);
      break;
    case Unit::Kind::kBlock:
      cfg.set_block(u.id, Precision::kSingle);
      break;
    case Unit::Kind::kBlockPart:
    case Unit::Kind::kInstr:
      break;  // fallthrough below
  }
  if (u.kind == Unit::Kind::kBlockPart) {
    for (std::size_t i : u.instrs) cfg.set_instr(i, Precision::kSingle);
  } else if (u.kind == Unit::Kind::kInstr) {
    cfg.set_instr(u.id, Precision::kSingle);
  }
  return cfg;
}

const char* level_name(Unit::Kind k) {
  switch (k) {
    case Unit::Kind::kModule: return "module";
    case Unit::Kind::kFunction: return "function";
    case Unit::Kind::kFuncPart: return "func-part";
    case Unit::Kind::kBlock: return "block";
    case Unit::Kind::kBlockPart: return "block-part";
    case Unit::Kind::kInstr: return "insn";
  }
  return "?";
}

std::string unit_name(const StructureIndex& ix, const Unit& u) {
  switch (u.kind) {
    case Unit::Kind::kModule:
      return strformat("module %s", ix.modules()[u.id].name.c_str());
    case Unit::Kind::kFunction:
      return strformat("func %s", ix.funcs()[u.id].name.c_str());
    case Unit::Kind::kFuncPart: {
      const auto& f = ix.funcs()[ix.blocks()[u.blocks.front()].func];
      return strformat("func %s part[%zu blocks]", f.name.c_str(),
                       u.blocks.size());
    }
    case Unit::Kind::kBlock:
      return strformat("block 0x%llx",
                       static_cast<unsigned long long>(
                           ix.blocks()[u.id].head_addr));
    case Unit::Kind::kBlockPart: {
      return strformat("block 0x%llx part[%zu insns]",
                       static_cast<unsigned long long>(
                           ix.blocks()[ix.instrs()[u.instrs.front()].block]
                               .head_addr),
                       u.instrs.size());
    }
    case Unit::Kind::kInstr:
      return strformat("insn 0x%llx",
                       static_cast<unsigned long long>(
                           ix.instrs()[u.id].addr));
  }
  return "?";
}

class Searcher {
 public:
  Searcher(const program::Image& original, StructureIndex* index,
           const verify::Verifier& verifier, const SearchOptions& options)
      : original_(original), ix_(*index), verifier_(verifier),
        options_(options) {}

  SearchResult run() {
    resolve_engine();
    compute_fingerprint();
    // The scheduler comes up before the journal so --adopt can rebuild the
    // local file from the fleet's replicated shards before replay.
    setup_remote();
    adopt_fleet_journal();
    setup_journal();
    profile_original();
    setup_builder();
    setup_pool();
    seed_queue();

    // In isolate mode the driver stays single-threaded (the forked workers
    // are the parallelism, and threads + fork do not mix); otherwise live
    // evaluations fan out on a thread pool.
    std::unique_ptr<ThreadPool> tpool;
    if (pool_ == nullptr && sched_ == nullptr) {
      tpool = std::make_unique<ThreadPool>(
          std::max<std::size_t>(1, options_.num_threads));
    }
    const std::size_t lanes =
        sched_ != nullptr
            ? std::max<std::size_t>(1, sched_->capacity())
            : (pool_ != nullptr
                   ? std::max<std::size_t>(1, pool_workers_)
                   : std::max<std::size_t>(1, options_.num_threads));
    while (!queue_.empty()) {
      // Pop a batch (highest priority first), resolve cache hits, and
      // evaluate the misses concurrently. Trials are committed in pop
      // order, so trace/journal order is deterministic for any thread
      // count.
      const std::size_t batch = std::min(queue_.size(), lanes);
      std::vector<Trial> trials;
      trials.reserve(batch);
      for (std::size_t i = 0; i < batch; ++i) {
        trials.push_back(make_trial(pop_unit()));
      }

      std::vector<std::size_t> live;
      for (std::size_t i = 0; i < trials.size(); ++i) {
        if (!trials[i].cached) live.push_back(i);
      }
      if (sched_ != nullptr && !live.empty()) {
        std::vector<Trial*> lp;
        lp.reserve(live.size());
        for (std::size_t i : live) lp.push_back(&trials[i]);
        evaluate_remote(lp);
      } else if (pool_ != nullptr && !live.empty()) {
        std::vector<Trial*> lp;
        lp.reserve(live.size());
        for (std::size_t i : live) lp.push_back(&trials[i]);
        evaluate_isolated(lp);
      } else if (live.size() == 1) {
        evaluate_live(&trials[live[0]]);
      } else if (!live.empty()) {
        for (std::size_t i : live) {
          tpool->submit([this, &trials, i] { evaluate_live(&trials[i]); });
        }
        tpool->wait_idle();
      }

      for (Trial& t : trials) {
        commit_trial(&t, unit_name(ix_, t.unit),
                     unit_candidates(ix_, t.unit).size(),
                     level_name(t.unit.kind));
        process_result(t.unit, t.result);
      }
    }

    // Compose and test the final configuration (Section 2.2: "the union of
    // all previously-found successful individual configurations").
    SearchResult out;
    out.final_config = final_config_;
    out.candidates = ix_.candidates().size();
    out.final_passed =
        run_config_trial(final_config_, "final composition").passed;

    // Optional second phase: precision interactions can make the plain
    // union fail even though each unit passed alone; rebuild a passing
    // composition greedily, heaviest units first.
    if (!out.final_passed && options_.refine_composition) {
      std::stable_sort(passing_.begin(), passing_.end(),
                       [](const PassingUnit& a, const PassingUnit& b) {
                         return a.weight > b.weight;
                       });
      PrecisionConfig composed;
      for (const PassingUnit& u : passing_) {
        PrecisionConfig trial = composed;
        trial.merge_union(u.cfg);
        const verify::EvalResult r =
            run_config_trial(trial, "refine composition");
        if (r.passed) composed = std::move(trial);
      }
      out.refined = true;
      out.refined_config = composed;
      out.refined_stats = config::replacement_stats(ix_, composed);
    }

    out.configs_tested = tested_;
    out.stats = config::replacement_stats(ix_, final_config_);
    out.trace = std::move(trace_);
    out.quarantine = std::move(quarantine_);

    metrics_.trials_total = tested_;
    metrics_.wall_seconds = wall_timer_.elapsed_seconds();
    metrics_.cache_hit_rate =
        tested_ == 0 ? 0.0
                     : 100.0 * static_cast<double>(metrics_.trials_cached) /
                           static_cast<double>(tested_);
    metrics_.trials_per_sec =
        metrics_.wall_seconds > 0.0
            ? static_cast<double>(tested_) / metrics_.wall_seconds
            : 0.0;
    if (pool_ != nullptr) {
      const runner::PoolStats& ps = pool_->stats();
      metrics_.isolated_trials = ps.isolated_trials;
      metrics_.worker_crashes = ps.worker_crashes;
      metrics_.worker_respawns = ps.workers_respawned;
      metrics_.worker_timeouts = ps.timeouts_killed;
      metrics_.protocol_errors = ps.protocol_errors;
      metrics_.crash_quarantined = ps.quarantined_configs;
      metrics_.crash_storm = ps.crash_storm;
      for (const auto& [sig, n] : ps.crashes_by_signal) {
        metrics_.crashes_by_signal[sig] = n;
      }
      metrics_.delta_requests = ps.delta_requests;
      metrics_.full_requests = ps.full_requests;
      metrics_.delta_bytes = ps.delta_bytes;
      metrics_.full_bytes = ps.full_bytes;
      for (const runner::SlotStats& ss : ps.slots) {
        metrics_.worker_slots.push_back(WorkerSlotMetrics{
            ss.requests, ss.respawns, ss.crashes, ss.timeouts,
            ss.quarantines});
      }
    }
    if (sched_ != nullptr) {
      metrics_.endpoints_used = sched_->endpoint_metrics();
      for (const EndpointMetrics& em : metrics_.endpoints_used) {
        metrics_.remote_trials += em.trials;
        metrics_.shard_cache_hits += em.cache_hits;
        metrics_.endpoint_failovers += em.failovers;
        metrics_.endpoint_reconnects += em.reconnects;
        metrics_.endpoint_disconnects += em.disconnects;
        metrics_.missed_beats += em.missed_beats;
        metrics_.lease_expiries += em.lease_expiries;
        metrics_.late_results += em.late_results;
        metrics_.redispatched += em.redispatched;
        metrics_.breaker_trips += em.breaker_trips;
        metrics_.gossip_rounds += em.gossip_rounds;
        metrics_.records_repaired += em.records_repaired;
        metrics_.shards_reloaded += em.shards_reloaded;
        metrics_.disk_faults += em.disk_faults;
        if (em.state_degraded) ++metrics_.state_degraded;
        if (em.lost) ++metrics_.endpoints_lost;
        if (em.jit_downgraded) ++metrics_.jit_downgraded;
      }
    }
    out.metrics = metrics_;
    if (options_.progress_log) {
      log::infof("search done: %zu trials (%zu live, %zu cached, %.1f%% "
                 "hit) in %.2fs, %.1f trials/s",
                 metrics_.trials_total, metrics_.trials_live,
                 metrics_.trials_cached, metrics_.cache_hit_rate,
                 metrics_.wall_seconds, metrics_.trials_per_sec);
    }
    return out;
  }

 private:
  /// Resolves the requested engine against this host's capabilities; the
  /// result drives the profiling run, in-process trials and the local
  /// worker pool. Remote endpoints resolve independently in the handshake
  /// (the hello carries the *requested* engine: a jit-capable server
  /// should compile even when this host cannot). Deliberately not part of
  /// the search fingerprint -- every engine is bit-identical.
  void resolve_engine() {
    engine_ = options_.engine;
    if (engine_ == vm::Engine::kJit && !vm::jit::jit_supported()) {
      log::warnf("search: jit engine unavailable (%s); running trials on "
                 "the micro-op engine",
                 vm::jit::jit_unsupported_reason());
      ++metrics_.jit_downgraded;
      engine_ = vm::Engine::kMicroOp;
    }
  }

  void profile_original() {
    vm::Machine::Options mopts;
    mopts.max_instructions = options_.max_instructions_per_run;
    mopts.engine = engine_;
    mopts.deadline_ns = options_.deadline_ms * 1000000ull;
    vm::Machine machine(original_, mopts);
    const vm::RunResult r = machine.run();
    if (!r.ok()) {
      // The profile only steers trial *order* (optimization 2), never
      // correctness -- so a failing reference run degrades the search to
      // unweighted structure-order prioritisation instead of aborting it.
      log::warnf(
          "search: profiling run of the original binary failed (%s); "
          "falling back to unweighted structure-order prioritisation",
          r.trap_message.c_str());
      metrics_.profile_degraded = true;
      return;
    }
    ix_.apply_profile(machine.profile_by_address());
  }

  void seed_queue() {
    for (std::size_t m = 0; m < ix_.modules().size(); ++m) {
      Unit u;
      u.kind = Unit::Kind::kModule;
      u.id = m;
      push_unit(std::move(u));
    }
  }

  void push_unit(Unit u) {
    const auto cands = unit_candidates(ix_, u);
    if (cands.empty()) return;
    u.weight = weight_of(ix_, cands);
    u.seq = next_seq_++;
    queue_.push_back(std::move(u));
  }

  Unit pop_unit() {
    FPMIX_CHECK(!queue_.empty());
    std::size_t best = 0;
    if (options_.prioritize_by_profile) {
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        const Unit& a = queue_[i];
        const Unit& b = queue_[best];
        if (a.weight > b.weight ||
            (a.weight == b.weight && a.seq < b.seq)) {
          best = i;
        }
      }
    }
    Unit u = std::move(queue_[best]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
    return u;
  }

  /// One configuration on its way through the cache -> evaluate -> commit
  /// pipeline. `unit` is only meaningful for frontier trials; composition
  /// trials carry an empty default.
  struct Trial {
    Unit unit;
    PrecisionConfig cfg;
    std::string key;     // stable config digest (cache/journal identity)
    bool cached = false;
    verify::EvalResult result;
    std::uint64_t eval_ns = 0;
    std::uint32_t attempts = 1;  // evaluations spent (retry policy)
    bool mixed_votes = false;    // attempts disagreed -> quarantine

    // Stage/cache accounting summed over *every* attempt via note_attempt
    // (t->result only keeps the last one); commit_trial folds these into
    // the metrics.
    std::uint64_t patch_ns = 0;
    std::uint64_t predecode_ns = 0;
    std::uint64_t run_ns = 0;
    std::uint64_t verify_ns = 0;
    std::uint64_t patch_saved_ns = 0;
    std::uint64_t predecode_saved_ns = 0;
    std::size_t funcs_reused = 0;
    std::size_t funcs_patched = 0;
    std::size_t image_hits = 0;
    std::size_t image_misses = 0;
  };

  /// Folds one evaluation attempt's stage costs and incremental-pipeline
  /// accounting into the trial's accumulators. The single bookkeeping path
  /// for both engines: evaluate_live calls it per in-process attempt,
  /// evaluate_isolated per worker-delivered result.
  static void note_attempt(Trial* t) {
    const verify::EvalResult& r = t->result;
    t->patch_ns += r.patch_ns;
    t->predecode_ns += r.predecode_ns;
    t->run_ns += r.run_ns;
    t->verify_ns += r.verify_ns;
    t->patch_saved_ns += r.patch_saved_ns;
    t->predecode_saved_ns += r.predecode_saved_ns;
    // funcs_total == 0 means the attempt never reached a TrialBuilder
    // (legacy path, synthetic breaker/storm verdicts): no cache traffic.
    if (r.funcs_total > 0) {
      if (r.image_cache_hit) {
        ++t->image_hits;
      } else {
        ++t->image_misses;
      }
      t->funcs_reused += r.funcs_reused;
      t->funcs_patched += r.funcs_total - r.funcs_reused;
    }
  }

  /// Settles the vote: majority verdict, ties failing (a config that
  /// cannot be trusted to pass must not enter the final composition).
  /// Shared by the in-process and isolated paths.
  static void apply_majority_verdict(Trial* t, std::uint32_t passes,
                                     std::uint32_t fails) {
    const bool verdict = passes > fails;
    if (verdict == t->result.passed) return;
    t->result.passed = verdict;
    if (verdict) {
      t->result.failure_class = verify::FailureClass::kNone;
      t->result.failure.clear();
    } else if (t->result.failure_class == verify::FailureClass::kNone) {
      t->result.failure_class = verify::FailureClass::kDivergence;
      t->result.failure = "verification failed (majority vote)";
    }
  }

  void compute_fingerprint() {
    std::string fault_tag = options_.fault_injector != nullptr
                                ? options_.fault_injector->fingerprint_tag()
                                : "";
    // Isolated execution under an active fault campaign draws per-execution
    // (not per-vote-attempt) fault indices and can absorb hard faults the
    // in-process path never sees; mark the fingerprint so such journals
    // never feed an in-process run. Clean journals stay mode-compatible.
    // Remote endpoints run the same sandboxed-pool semantics, so a
    // distributed faulted journal is interchangeable with a local isolated
    // one (the distributed-soak tests rely on exactly that).
    if (!fault_tag.empty() &&
        (options_.isolate_trials || !options_.endpoints.empty())) {
      fault_tag += "+iso";
    }
    search_fp_ = search_fingerprint(verifier_.fingerprint(),
                                    options_.max_instructions_per_run,
                                    options_.deadline_ms, fault_tag);
  }

  /// Replicates one freshly committed sealed journal line to the fleet.
  void stream_line(const std::string& line) {
    if (sched_ != nullptr && !line.empty()) sched_->stream_journal(line);
  }

  /// Scheduler failover (--adopt): rebuild the local journal from the
  /// fleet's replicated shards before the ordinary resume replay runs.
  /// Reconciliation rules: only lines whose seal verifies participate (a
  /// torn replica tail or damaged local line is healed by any intact
  /// copy); lines are keyed by their sealed sequence number, first valid
  /// copy wins; the union must begin with this search's meta record. The
  /// reconciled file then replays through the normal path, and appending
  /// continues at max(seq)+1 with no new meta -- so a resumed search's
  /// journal is byte-identical to an undisturbed run's.
  void adopt_fleet_journal() {
    if (!options_.adopt_fleet) return;
    if (options_.journal_path.empty()) {
      log::warnf("search: --adopt requested without a journal; ignored");
      return;
    }
    std::vector<std::string> fleet_lines;
    std::size_t served = 0;
    if (sched_ != nullptr) served = sched_->fetch_fleet_journal(&fleet_lines);
    if (served == 0) {
      log::warnf("search: adopt: no fleet shard answered; resuming from "
                 "the local journal alone");
    }
    std::map<std::uint64_t, std::string> by_seq;
    const auto take = [&](const std::string& line) {
      if (check_seal(line) != SealCheck::kOk) return;
      JsonRecord rec;
      if (!parse_flat_json(line, &rec)) return;
      const auto seq_it = rec.find("seq");
      std::uint64_t seq = 0;
      if (seq_it == rec.end() || !parse_u64(seq_it->second, &seq)) return;
      by_seq.emplace(seq, line);
    };
    for (const std::string& l : fleet_lines) take(l);
    // Local lines participate too, but only the *last* section recorded
    // under this search fingerprint: every journal session restarts
    // sequence numbering at its meta record, so mixing sections would
    // collide seqs.
    std::vector<std::string> local_section;
    bool fp_matches = false;
    for (const std::string& line :
         Journal::read_lines(options_.journal_path)) {
      JsonRecord rec;
      if (!parse_flat_json(line, &rec)) continue;
      const auto type = rec.find("type");
      if (type != rec.end() && type->second == "meta") {
        const auto fp = rec.find("search_fp");
        fp_matches = fp != rec.end() && fp->second == search_fp_;
        local_section.clear();
        if (fp_matches) local_section.push_back(line);
        continue;
      }
      if (fp_matches) local_section.push_back(line);
    }
    for (const std::string& l : local_section) take(l);
    if (by_seq.empty()) return;  // nothing anywhere: a fresh search
    {
      // The replay classifies trials as foreign until it sees this
      // search's meta record, so the reconciled history must lead with it.
      JsonRecord rec;
      const bool ok = parse_flat_json(by_seq.begin()->second, &rec);
      const auto type = rec.find("type");
      const auto fp = rec.find("search_fp");
      if (!ok || by_seq.begin()->first != 1 || type == rec.end() ||
          type->second != "meta" || fp == rec.end() ||
          fp->second != search_fp_) {
        log::warnf("search: adopt: reconciled history does not begin with "
                   "this search's meta record; starting fresh");
        return;
      }
    }
    // Atomic rewrite (tmp + fsync + rename + directory fsync): a crash
    // mid-adopt leaves either the old journal or the fully reconciled one
    // on disk, never a hybrid -- and the reconciled one survives power
    // loss, which matters because adoption is exactly the
    // crashed-predecessor path.
    std::string contents;
    for (const auto& [seq, line] : by_seq) {
      contents += line;
      contents += '\n';
    }
    std::string aerr;
    if (!atomic_replace(options_.journal_path, contents, &aerr)) {
      log::warnf("search: adopt: cannot replace %s (%s); resuming from the "
                 "local journal alone", options_.journal_path.c_str(),
                 aerr.c_str());
      return;
    }
    adopted_ = true;
    adopted_next_seq_ = by_seq.rbegin()->first + 1;
    metrics_.adopted_records = by_seq.size();
    log::infof("search: adopted %zu journal record(s) from %zu fleet "
               "shard(s)", by_seq.size(), served);
    // Heal the fleet in return: stream the reconciled union back so every
    // shard converges to it (sequence-deduplicated server-side, so
    // restreaming what a shard already holds is a no-op).
    for (const auto& [seq, line] : by_seq) stream_line(line);
  }

  void setup_journal() {
    if (options_.journal_path.empty()) return;
    if (options_.resume || adopted_) {
      JournalReplayStats stats;
      const std::size_t n =
          load_journal(options_.journal_path, search_fp_, &cache_, &stats);
      if (n > 0) {
        log::infof("search: resuming with %zu journaled trial(s) from %s"
                   " (%zu damaged record(s) skipped)",
                   n, options_.journal_path.c_str(),
                   stats.malformed + stats.crc_mismatch + stats.duplicate_seq);
      }
    }
    if (!journal_.open(options_.journal_path)) {
      log::warnf("search: cannot open journal %s for append; trials will "
                 "not be persisted", options_.journal_path.c_str());
      return;
    }
    // When trials run in crash-prone sandboxed workers, every committed
    // record must survive a driver loss too: fsync each sealed line.
    journal_.set_fsync(options_.journal_fsync || options_.isolate_trials);
    if (adopted_) {
      // The adopted history already leads with this search's meta record;
      // appending another would restart sequence numbering and break the
      // byte-identity of failover resumes. Continue the adopted stream.
      journal_.set_next_seq(adopted_next_seq_);
    } else {
      stream_line(journal_.append_sealed(encode_meta_line(search_fp_)));
    }
  }

  void setup_builder() {
    if (!options_.image_cache) return;
    builder_ = std::make_unique<verify::TrialBuilder>(original_, ix_);
  }

  /// Brings the distributed scheduler up when endpoints are configured.
  /// Any startup problem (bad addresses, unreachable fleet, platform
  /// without sockets) degrades to local execution with a warning -- same
  /// philosophy as setup_pool.
  void setup_remote() {
    if (options_.endpoints.empty()) return;
    if (!net::supported()) {
      log::warnf("search: endpoints configured but sockets are unsupported "
                 "on this platform; running locally");
      metrics_.remote_degraded = true;
      return;
    }
    if (options_.remote_bench.empty()) {
      log::warnf("search: endpoints configured but remote_bench is empty; "
                 "running locally");
      metrics_.remote_degraded = true;
      return;
    }
    SchedulerOptions sopts;
    for (const std::string& e : options_.endpoints) {
      net::Endpoint ep;
      if (!net::parse_endpoint(e, &ep)) {
        log::warnf("search: ignoring malformed endpoint '%s'", e.c_str());
        continue;
      }
      sopts.endpoints.push_back(ep);
    }
    if (sopts.endpoints.empty()) {
      metrics_.remote_degraded = true;
      return;
    }
    net::HelloMsg& h = sopts.hello;
    h.bench = options_.remote_bench;
    h.cls = static_cast<std::uint8_t>(options_.remote_class);
    h.engine = static_cast<std::uint8_t>(options_.engine);
    h.max_instructions = options_.max_instructions_per_run;
    h.deadline_ms = options_.deadline_ms;
    h.max_crashes = options_.max_trial_crashes;
    h.rlimit_mb = options_.worker_rlimit_as_mb;
    h.shard_cache = options_.shard_cache ? 1 : 0;
    h.search_fp = search_fp_;
    if (options_.fault_injector != nullptr) {
      h.has_fault = 1;
      h.fault_seed = options_.fault_injector->seed();
      h.fault_rates = options_.fault_injector->rates();
    }
    sopts.connect_timeout_ms = static_cast<int>(options_.connect_timeout_ms);
    sopts.hello_timeout_ms = static_cast<int>(options_.hello_timeout_ms);
    sopts.max_endpoint_failures = options_.max_endpoint_failures;
    sopts.max_trial_crashes = options_.max_trial_crashes;
    sopts.verifier_fp = verifier_.fingerprint();
    sopts.heartbeat_ms = options_.heartbeat_ms;
    sopts.gossip_ms = options_.gossip_ms;
    sopts.reconnect_backoff.cap_ms =
        std::max<std::uint64_t>(1, options_.reconnect_max_ms);
    auto sched = std::make_unique<Scheduler>(sopts);
    if (sched->connect() == 0) {
      log::warnf("search: no runner endpoint reachable; running locally");
      metrics_.remote_degraded = true;
      return;
    }
    sched_ = std::move(sched);
  }

  void setup_pool() {
    if (!options_.isolate_trials) return;
    if (sched_ != nullptr) return;  // endpoints sandbox trials remotely
    if (!runner::isolation_supported()) {
      log::warnf("search: trial isolation requested but fork is unavailable "
                 "on this platform; running trials in-process");
      metrics_.isolation_degraded = true;
      return;
    }
    runner::WorkerContext ctx;
    ctx.image = &original_;
    ctx.index = &ix_;
    ctx.verifier = &verifier_;
    ctx.eval.max_instructions = options_.max_instructions_per_run;
    ctx.eval.profile = false;
    ctx.eval.engine = engine_;
    ctx.eval.deadline_ns = options_.deadline_ms * 1000000ull;
    // Forked workers inherit the builder's warm caches (copy-on-write) and
    // keep their private copies hot across requests for the worker's
    // lifetime; each respawn starts from the driver's state at fork time.
    ctx.eval.builder = builder_.get();
    ctx.injector = options_.fault_injector;

    runner::PoolOptions popts;
    pool_workers_ = options_.num_workers != 0
                        ? options_.num_workers
                        : std::max<std::size_t>(1, options_.num_threads);
    popts.workers = static_cast<int>(pool_workers_);
    popts.max_crashes_per_config = options_.max_trial_crashes;
    popts.limits.address_space_mb = options_.worker_rlimit_as_mb;
    // Supervisor wall-clock backstop over the worker's own VM deadline: a
    // worker stuck before the VM loop even starts (or hard-hung by a fault)
    // still gets reaped.
    popts.trial_timeout_ms =
        options_.deadline_ms > 0 ? options_.deadline_ms * 3 + 1000 : 0;

    auto pool = std::make_unique<runner::WorkerPool>(ctx, popts);
    if (!pool->start()) {
      log::warnf("search: could not spawn any sandboxed worker; running "
                 "trials in-process");
      metrics_.isolation_degraded = true;
      return;
    }
    pool_ = std::move(pool);
  }

  /// Isolated counterpart of evaluate_live: runs each trial's attempts on
  /// the worker pool, whole-batch rounds, mirroring the majority-vote
  /// policy. Worker deaths never vote -- the pool retries them internally
  /// and only delivers verdicts, quarantine verdicts, or storm failures.
  void evaluate_isolated(const std::vector<Trial*>& live) {
    const std::uint32_t max_attempts = 1 + options_.max_retries;
    struct Vote {
      std::uint32_t passes = 0;
      std::uint32_t fails = 0;
      bool settled = false;  // quarantined/storm: the result stands as-is
    };
    std::vector<Vote> votes(live.size());
    std::vector<std::size_t> open(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) open[i] = i;

    for (std::uint32_t attempt = 0;
         attempt < max_attempts && !open.empty(); ++attempt) {
      std::vector<runner::TrialJob> jobs;
      jobs.reserve(open.size());
      for (std::size_t i : open) {
        jobs.push_back(runner::TrialJob{live[i]->key, &live[i]->cfg});
      }
      const std::vector<runner::TrialOutcome> outs = pool_->run_batch(jobs);
      std::vector<std::size_t> next;
      for (std::size_t j = 0; j < open.size(); ++j) {
        const std::size_t i = open[j];
        Trial* t = live[i];
        Vote& v = votes[i];
        t->result = outs[j].result;
        t->eval_ns += outs[j].wall_ns;
        note_attempt(t);
        if (outs[j].quarantined ||
            t->result.failure_class == verify::FailureClass::kInternalError) {
          // Breaker verdict or crash storm: final, outside the vote.
          v.settled = true;
          continue;
        }
        if (t->result.passed) {
          ++v.passes;
        } else {
          ++v.fails;
        }
        if (v.passes <= max_attempts / 2 && v.fails <= max_attempts / 2) {
          next.push_back(i);
        }
      }
      open = std::move(next);
    }

    for (std::size_t i = 0; i < live.size(); ++i) {
      Trial* t = live[i];
      const Vote& v = votes[i];
      if (v.settled) {
        t->attempts = std::max<std::uint32_t>(1, v.passes + v.fails + 1);
        t->mixed_votes = false;
        continue;
      }
      t->attempts = std::max<std::uint32_t>(1, v.passes + v.fails);
      t->mixed_votes = v.passes > 0 && v.fails > 0;
      apply_majority_verdict(t, v.passes, v.fails);
    }
  }

  /// Distributed counterpart of evaluate_isolated: same whole-batch vote
  /// rounds, but trials run on the remote fleet. A trial the fleet cannot
  /// serve at all (every endpoint lost) falls back to a full local
  /// evaluation so the search still completes.
  void evaluate_remote(const std::vector<Trial*>& live) {
    const std::uint32_t max_attempts = 1 + options_.max_retries;
    struct Vote {
      std::uint32_t passes = 0;
      std::uint32_t fails = 0;
      bool settled = false;  // quarantined/internal: the result stands
      bool local = false;    // evaluate_live settled everything itself
    };
    std::vector<Vote> votes(live.size());
    std::vector<std::size_t> open(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) open[i] = i;

    for (std::uint32_t attempt = 0;
         attempt < max_attempts && !open.empty(); ++attempt) {
      std::vector<runner::TrialJob> jobs;
      jobs.reserve(open.size());
      for (std::size_t i : open) {
        jobs.push_back(runner::TrialJob{live[i]->key, &live[i]->cfg});
      }
      const std::vector<runner::TrialOutcome> outs = sched_->run_batch(jobs);
      std::vector<std::size_t> next;
      for (std::size_t j = 0; j < open.size(); ++j) {
        const std::size_t i = open[j];
        Trial* t = live[i];
        Vote& v = votes[i];
        if (!outs[j].served) {
          // Whole fleet gone mid-search: evaluate this trial locally
          // (evaluate_live runs its own vote loop and settles the trial).
          ++metrics_.remote_unserved;
          evaluate_live(t);
          v.settled = true;
          v.local = true;
          continue;
        }
        t->result = outs[j].result;
        t->eval_ns += outs[j].wall_ns;
        note_attempt(t);
        if (outs[j].quarantined ||
            t->result.failure_class == verify::FailureClass::kInternalError) {
          v.settled = true;
          continue;
        }
        if (t->result.passed) {
          ++v.passes;
        } else {
          ++v.fails;
        }
        if (v.passes <= max_attempts / 2 && v.fails <= max_attempts / 2) {
          next.push_back(i);
        }
      }
      open = std::move(next);
    }

    for (std::size_t i = 0; i < live.size(); ++i) {
      Trial* t = live[i];
      const Vote& v = votes[i];
      if (v.local) continue;
      if (v.settled) {
        t->attempts = std::max<std::uint32_t>(1, v.passes + v.fails + 1);
        t->mixed_votes = false;
        continue;
      }
      t->attempts = std::max<std::uint32_t>(1, v.passes + v.fails);
      t->mixed_votes = v.passes > 0 && v.fails > 0;
      apply_majority_verdict(t, v.passes, v.fails);
    }
  }

  Trial make_trial(Unit u) {
    Trial t;
    t.unit = std::move(u);
    t.cfg = config_for(t.unit);
    fill_from_cache(&t);
    return t;
  }

  void fill_from_cache(Trial* t) {
    t->key = hex_digest(t->cfg.stable_hash());
    if (const CachedTrial* hit = cache_.lookup(t->key)) {
      t->cached = true;
      t->result.passed = hit->passed;
      t->result.failure_class = hit->failure_class;
      t->result.failure = hit->failure;
    }
  }

  /// Patch + run + verify; safe to call from pool threads (private state
  /// per evaluation, writes only to *t). With max_retries > 0, evaluates
  /// until one verdict holds a strict majority of the allowed attempts --
  /// two agreeing attempts settle the common (deterministic) case early,
  /// mixed verdicts burn more attempts and flag the trial for quarantine.
  void evaluate_live(Trial* t) {
    verify::EvalOptions eopts;
    eopts.max_instructions = options_.max_instructions_per_run;
    // Pass/fail is all a trial reports; per-instruction counts come only
    // from profile_original(), so the VM can take its non-profiling loop.
    eopts.profile = false;
    eopts.engine = engine_;
    eopts.deadline_ns = options_.deadline_ms * 1000000ull;
    eopts.builder = builder_.get();

    const std::uint32_t max_attempts = 1 + options_.max_retries;
    std::uint32_t passes = 0;
    std::uint32_t fails = 0;
    Timer timer;
    for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
      fault::TrialFaults faults;
      if (options_.fault_injector != nullptr) {
        faults = options_.fault_injector->for_trial(t->key, attempt);
        eopts.faults = &faults;
      }
      t->result =
          verify::evaluate_config(original_, ix_, t->cfg, verifier_, eopts);
      note_attempt(t);
      if (t->result.passed) {
        ++passes;
      } else {
        ++fails;
      }
      if (passes > max_attempts / 2 || fails > max_attempts / 2) break;
    }
    t->eval_ns = timer.elapsed_ns();
    t->attempts = passes + fails;
    t->mixed_votes = passes > 0 && fails > 0;
    apply_majority_verdict(t, passes, fails);
  }

  /// Cache-aware evaluation of a composed configuration (final union and
  /// refinement steps), sharing journal/metrics with frontier trials.
  verify::EvalResult run_config_trial(const PrecisionConfig& cfg,
                                      const std::string& name) {
    Trial t;
    t.cfg = cfg;
    fill_from_cache(&t);
    if (!t.cached) {
      if (sched_ != nullptr) {
        evaluate_remote({&t});
      } else if (pool_ != nullptr) {
        evaluate_isolated({&t});
      } else {
        evaluate_live(&t);
      }
    }
    commit_trial(&t, name, config::replacement_stats(ix_, cfg).replaced_static,
                 "composition");
    return std::move(t.result);
  }

  /// Counts, journals, caches and traces a finished trial. Serial-section
  /// only: journal appends and cache inserts are not synchronized.
  void commit_trial(Trial* t, const std::string& name, std::size_t candidates,
                    const char* level) {
    ++tested_;
    if (!t->result.passed) {
      ++metrics_.failures_by_class[verify::failure_class_name(
          t->result.failure_class)];
    }
    if (t->cached) {
      ++metrics_.trials_cached;
    } else {
      ++metrics_.trials_live;
      metrics_.retries += t->attempts - 1;
      if (t->mixed_votes) {
        ++metrics_.quarantined;
        quarantine_.push_back(t->key);
      }
      const double secs = 1e-9 * static_cast<double>(t->eval_ns);
      metrics_.eval_seconds += secs;
      metrics_.eval_seconds_per_level[level] += secs;
      metrics_.patch_seconds += 1e-9 * static_cast<double>(t->patch_ns);
      metrics_.predecode_seconds +=
          1e-9 * static_cast<double>(t->predecode_ns);
      metrics_.run_seconds += 1e-9 * static_cast<double>(t->run_ns);
      metrics_.verify_seconds += 1e-9 * static_cast<double>(t->verify_ns);
      metrics_.patch_saved_seconds +=
          1e-9 * static_cast<double>(t->patch_saved_ns);
      metrics_.predecode_saved_seconds +=
          1e-9 * static_cast<double>(t->predecode_saved_ns);
      metrics_.image_cache_hits += t->image_hits;
      metrics_.image_cache_misses += t->image_misses;
      metrics_.funcs_reused += t->funcs_reused;
      metrics_.funcs_patched += t->funcs_patched;
      // With journal_timings off, the nondeterministic per-trial timing
      // fields are zeroed so journal bytes depend only on the verdict
      // stream -- the property the distributed byte-identity checks diff.
      const bool times = options_.journal_timings;
      CachedTrial entry{t->result.passed, t->result.failure_class,
                        t->result.failure, times ? t->eval_ns : 0,
                        times ? t->patch_saved_ns + t->predecode_saved_ns : 0,
                        times && t->image_hits > 0};
      if (journal_.is_open()) {
        // Commit locally, then replicate the exact sealed bytes to every
        // live shard: any N-1 subset of the fleet can reconstruct the
        // journal a dead scheduler leaves behind (--adopt).
        stream_line(journal_.append_sealed(
            encode_trial_line(t->key, name, candidates, entry)));
      }
      cache_.insert(t->key, std::move(entry));
    }
    if (sched_ != nullptr) {
      // Make the verdict fleet knowledge (no-op unless shard_cache): the
      // endpoint that served it already cached it; the others -- and
      // verdicts from local fallback or journal replay -- learn it here.
      sched_->broadcast_insert(
          t->key, t->result.passed,
          static_cast<std::uint8_t>(t->result.failure_class),
          t->result.failure);
    }
    if (options_.keep_log) {
      TestRecord rec;
      rec.unit = name;
      rec.key = t->key;
      rec.candidates = candidates;
      rec.passed = t->result.passed;
      rec.cached = t->cached;
      rec.eval_ns = t->eval_ns;
      rec.failure = t->result.failure;
      trace_.push_back(std::move(rec));
    }
    maybe_log_progress();
  }

  void maybe_log_progress() {
    if (!options_.progress_log) return;
    const std::size_t every = std::max<std::size_t>(1,
                                                    options_.progress_every);
    if (tested_ % every != 0) return;
    const double wall = wall_timer_.elapsed_seconds();
    const double rate =
        wall > 0.0 ? static_cast<double>(tested_) / wall : 0.0;
    const double hit =
        100.0 * static_cast<double>(metrics_.trials_cached) /
        static_cast<double>(tested_);
    // ETA over the *currently enqueued* frontier at the live evaluation
    // rate the pool sustains -- a lower bound, since failing units still
    // enqueue children.
    double eta = 0.0;
    if (metrics_.trials_live > 0) {
      const double per_live =
          metrics_.eval_seconds / static_cast<double>(metrics_.trials_live);
      eta = static_cast<double>(queue_.size()) * per_live /
            static_cast<double>(std::max<std::size_t>(1,
                                                      options_.num_threads));
    }
    log::infof("search: %zu trials (%zu cached, %.1f%% hit), %.1f trials/s, "
               "%zu queued, eta >= %.1fs",
               tested_, metrics_.trials_cached, hit, rate, queue_.size(),
               eta);
  }

  void process_result(const Unit& u, const verify::EvalResult& r) {
    if (r.passed) {
      PrecisionConfig cfg = config_for(u);
      final_config_.merge_union(cfg);
      passing_.push_back(PassingUnit{std::move(cfg), u.weight});
      return;
    }
    for (Unit& child : children(u)) push_unit(std::move(child));
  }

  std::vector<Unit> children(const Unit& u) {
    std::vector<Unit> out;
    const auto level_allows = [&](StopLevel need) {
      return static_cast<int>(options_.stop_level) >= static_cast<int>(need);
    };

    switch (u.kind) {
      case Unit::Kind::kModule: {
        if (!level_allows(StopLevel::kFunction)) break;
        for (std::size_t f : ix_.modules()[u.id].funcs) {
          Unit c;
          c.kind = Unit::Kind::kFunction;
          c.id = f;
          out.push_back(std::move(c));
        }
        break;
      }
      case Unit::Kind::kFunction: {
        if (!level_allows(StopLevel::kBlock)) break;
        const auto& blocks = ix_.funcs()[u.id].blocks;
        descend_blocks(blocks, &out);
        break;
      }
      case Unit::Kind::kFuncPart: {
        descend_blocks(u.blocks, &out);
        break;
      }
      case Unit::Kind::kBlock: {
        if (!level_allows(StopLevel::kInstruction)) break;
        descend_instrs(ix_.blocks()[u.id].candidates, &out);
        break;
      }
      case Unit::Kind::kBlockPart: {
        descend_instrs(u.instrs, &out);
        break;
      }
      case Unit::Kind::kInstr:
        break;  // cannot be subdivided
    }
    return out;
  }

  /// Binary split of a block list, or one unit per block.
  void descend_blocks(const std::vector<std::size_t>& blocks,
                      std::vector<Unit>* out) {
    // Only blocks with candidates participate.
    std::vector<std::size_t> useful;
    for (std::size_t b : blocks) {
      if (!ix_.blocks()[b].candidates.empty()) useful.push_back(b);
    }
    if (useful.empty()) return;
    if (useful.size() == 1) {
      Unit c;
      c.kind = Unit::Kind::kBlock;
      c.id = useful[0];
      out->push_back(std::move(c));
      return;
    }
    if (options_.binary_split && useful.size() >= options_.min_split_size) {
      const std::size_t half = useful.size() / 2;
      Unit lo, hi;
      lo.kind = hi.kind = Unit::Kind::kFuncPart;
      lo.blocks.assign(useful.begin(), useful.begin() +
                                           static_cast<std::ptrdiff_t>(half));
      hi.blocks.assign(useful.begin() + static_cast<std::ptrdiff_t>(half),
                       useful.end());
      out->push_back(std::move(lo));
      out->push_back(std::move(hi));
      return;
    }
    for (std::size_t b : useful) {
      Unit c;
      c.kind = Unit::Kind::kBlock;
      c.id = b;
      out->push_back(std::move(c));
    }
  }

  /// Binary split of a candidate-instruction list, or one unit each.
  void descend_instrs(const std::vector<std::size_t>& instrs,
                      std::vector<Unit>* out) {
    if (instrs.empty()) return;
    if (instrs.size() == 1) {
      Unit c;
      c.kind = Unit::Kind::kInstr;
      c.id = instrs[0];
      out->push_back(std::move(c));
      return;
    }
    if (options_.binary_split && instrs.size() >= options_.min_split_size) {
      const std::size_t half = instrs.size() / 2;
      Unit lo, hi;
      lo.kind = hi.kind = Unit::Kind::kBlockPart;
      lo.instrs.assign(instrs.begin(), instrs.begin() +
                                           static_cast<std::ptrdiff_t>(half));
      hi.instrs.assign(instrs.begin() + static_cast<std::ptrdiff_t>(half),
                       instrs.end());
      out->push_back(std::move(lo));
      out->push_back(std::move(hi));
      return;
    }
    for (std::size_t i : instrs) {
      Unit c;
      c.kind = Unit::Kind::kInstr;
      c.id = i;
      out->push_back(std::move(c));
    }
  }

  const program::Image& original_;
  StructureIndex& ix_;
  const verify::Verifier& verifier_;
  const SearchOptions& options_;

  struct PassingUnit {
    PrecisionConfig cfg;
    std::uint64_t weight;
  };

  std::deque<Unit> queue_;
  std::uint64_t next_seq_ = 0;
  std::size_t tested_ = 0;
  PrecisionConfig final_config_;
  std::vector<PassingUnit> passing_;
  std::vector<TestRecord> trace_;
  std::vector<std::string> quarantine_;

  TrialCache cache_;
  Journal journal_;
  std::string search_fp_;
  /// --adopt state: the local journal was rebuilt from the fleet's shards;
  /// sealed appends continue the adopted sequence stream (no new meta).
  bool adopted_ = false;
  std::uint64_t adopted_next_seq_ = 1;
  /// Host-resolved execution engine (see resolve_engine()).
  vm::Engine engine_ = vm::Engine::kMicroOp;
  SearchMetrics metrics_;
  Timer wall_timer_;
  /// Shared patch+predecode front end (image_cache option). Declared
  /// before pool_ so the pool (whose workers hold a pointer to it through
  /// WorkerContext) is destroyed first.
  std::unique_ptr<verify::TrialBuilder> builder_;
  std::unique_ptr<runner::WorkerPool> pool_;  // isolate mode only
  std::size_t pool_workers_ = 1;
  std::unique_ptr<Scheduler> sched_;  // distributed mode only
};

}  // namespace

SearchResult run_search(const program::Image& original,
                        config::StructureIndex* index,
                        const verify::Verifier& verifier,
                        const SearchOptions& options) {
  FPMIX_CHECK(index != nullptr);
  Searcher s(original, index, verifier, options);
  return s.run();
}

}  // namespace fpmix::search
