file(REMOVE_RECURSE
  "libfpmix_instrument.a"
)
