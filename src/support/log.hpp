// Minimal leveled logger. Single global sink, thread-safe, printf-style.
#pragma once

#include <cstdarg>

namespace fpmix::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the minimum level that is emitted. Default: kWarn (tools are quiet
/// unless something is wrong; benches and examples raise it to kInfo).
void set_level(Level level);
Level level();

void vlogf(Level level, const char* fmt, std::va_list args);

#if defined(__GNUC__)
#define FPMIX_PRINTF(a, b) __attribute__((format(printf, a, b)))
#else
#define FPMIX_PRINTF(a, b)
#endif

void debugf(const char* fmt, ...) FPMIX_PRINTF(1, 2);
void infof(const char* fmt, ...) FPMIX_PRINTF(1, 2);
void warnf(const char* fmt, ...) FPMIX_PRINTF(1, 2);
void errorf(const char* fmt, ...) FPMIX_PRINTF(1, 2);

#undef FPMIX_PRINTF

}  // namespace fpmix::log
