#include "net/protocol.hpp"

#include <cstring>

#include "support/journal.hpp"

namespace fpmix::net {

using runner::FrameStatus;
using runner::WireReader;

namespace {

/// Doubles cross the wire as IEEE-754 bit patterns: exact, endian-stable,
/// and NaN-safe (a rate table is plain data, not arithmetic).
std::uint64_t double_bits(double v) {
  std::uint64_t b = 0;
  static_assert(sizeof(b) == sizeof(v));
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double bits_double(std::uint64_t b) {
  double v = 0;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

}  // namespace

std::uint8_t peek_msg_type(std::string_view payload) {
  return payload.empty() ? 0 : static_cast<std::uint8_t>(payload[0]);
}

// ---- Hello -----------------------------------------------------------------

std::string encode_hello(const HelloMsg& m) {
  std::string p;
  runner::put_u8(&p, kMsgHello);
  runner::put_u32(&p, m.version);
  runner::put_string(&p, m.bench);
  runner::put_u8(&p, m.cls);
  runner::put_u8(&p, m.engine);
  runner::put_u64(&p, m.max_instructions);
  runner::put_u64(&p, m.deadline_ms);
  runner::put_u32(&p, m.max_crashes);
  runner::put_u64(&p, m.rlimit_mb);
  runner::put_u8(&p, m.shard_cache);
  runner::put_string(&p, m.search_fp);
  runner::put_u8(&p, m.has_fault);
  runner::put_u64(&p, m.fault_seed);
  const fault::Injector::Rates& r = m.fault_rates;
  const double rates[12] = {r.abort,          r.bitflip,       r.sentinel,
                            r.stall,          r.flaky,         r.segv,
                            r.kill,           r.oom,           r.hang,
                            r.hang_ignore_term, r.trunc_result,
                            r.corrupt_result};
  for (double v : rates) runner::put_u64(&p, double_bits(v));
  return p;
}

bool decode_hello(std::string_view payload, HelloMsg* out) {
  WireReader r(payload);
  if (r.u8() != kMsgHello) return false;
  out->version = r.u32();
  out->bench = r.str();
  out->cls = r.u8();
  out->engine = r.u8();
  out->max_instructions = r.u64();
  out->deadline_ms = r.u64();
  out->max_crashes = r.u32();
  out->rlimit_mb = r.u64();
  out->shard_cache = r.u8();
  out->search_fp = r.str();
  out->has_fault = r.u8();
  out->fault_seed = r.u64();
  double rates[12];
  for (double& v : rates) v = bits_double(r.u64());
  fault::Injector::Rates& fr = out->fault_rates;
  fr.abort = rates[0];
  fr.bitflip = rates[1];
  fr.sentinel = rates[2];
  fr.stall = rates[3];
  fr.flaky = rates[4];
  fr.segv = rates[5];
  fr.kill = rates[6];
  fr.oom = rates[7];
  fr.hang = rates[8];
  fr.hang_ignore_term = rates[9];
  fr.trunc_result = rates[10];
  fr.corrupt_result = rates[11];
  return r.done();
}

// ---- HelloAck --------------------------------------------------------------

std::string encode_hello_ack(const HelloAckMsg& m) {
  std::string p;
  runner::put_u8(&p, kMsgHelloAck);
  runner::put_u8(&p, m.ok);
  runner::put_string(&p, m.error);
  runner::put_string(&p, m.verifier_fp);
  runner::put_u32(&p, m.workers);
  runner::put_u8(&p, m.engine);
  runner::put_u64(&p, m.shard_records);
  runner::put_u8(&p, m.state_degraded);
  runner::put_u64(&p, m.shards_reloaded);
  runner::put_u64(&p, m.disk_faults);
  return p;
}

bool decode_hello_ack(std::string_view payload, HelloAckMsg* out) {
  WireReader r(payload);
  if (r.u8() != kMsgHelloAck) return false;
  out->ok = r.u8();
  out->error = r.str();
  out->verifier_fp = r.str();
  out->workers = r.u32();
  out->engine = r.u8();
  out->shard_records = r.u64();
  out->state_degraded = r.u8();
  out->shards_reloaded = r.u64();
  out->disk_faults = r.u64();
  return r.done();
}

// ---- Trial -----------------------------------------------------------------

std::string encode_trial(const TrialMsg& m) {
  std::string p;
  runner::put_u8(&p, kMsgTrial);
  runner::put_u64(&p, m.ticket);
  runner::put_string(&p, m.key);
  runner::put_string(&p, m.config_key);
  return p;
}

bool decode_trial(std::string_view payload, TrialMsg* out) {
  WireReader r(payload);
  if (r.u8() != kMsgTrial) return false;
  out->ticket = r.u64();
  out->key = r.str();
  out->config_key = r.str();
  return r.done();
}

// ---- Result ----------------------------------------------------------------

std::string encode_result_msg(const ResultMsg& m) {
  std::string p;
  runner::put_u8(&p, kMsgResult);
  runner::put_u64(&p, m.ticket);
  runner::put_u8(&p, m.flags);
  runner::put_u32(&p, m.worker_deaths);
  runner::put_u64(&p, m.wall_ns);
  runner::put_string(&p, m.wire_result);
  return p;
}

bool decode_result_msg(std::string_view payload, ResultMsg* out) {
  WireReader r(payload);
  if (r.u8() != kMsgResult) return false;
  out->ticket = r.u64();
  out->flags = r.u8();
  out->worker_deaths = r.u32();
  out->wall_ns = r.u64();
  out->wire_result = r.str();
  return r.done();
}

// ---- Cache insert ----------------------------------------------------------

std::string encode_cache_insert(const CacheInsertMsg& m) {
  std::string p;
  runner::put_u8(&p, kMsgCacheInsert);
  runner::put_string(&p, m.key);
  runner::put_u8(&p, m.passed);
  runner::put_u8(&p, m.failure_class);
  runner::put_string(&p, m.failure);
  return p;
}

bool decode_cache_insert(std::string_view payload, CacheInsertMsg* out) {
  WireReader r(payload);
  if (r.u8() != kMsgCacheInsert) return false;
  out->key = r.str();
  out->passed = r.u8();
  out->failure_class = r.u8();
  out->failure = r.str();
  return r.done();
}

// ---- Replicated journal streaming ------------------------------------------

std::string encode_journal_append(const JournalAppendMsg& m) {
  std::string p;
  runner::put_u8(&p, kMsgJournalAppend);
  runner::put_string(&p, m.line);
  return p;
}

bool decode_journal_append(std::string_view payload, JournalAppendMsg* out) {
  WireReader r(payload);
  if (r.u8() != kMsgJournalAppend) return false;
  out->line = r.str();
  return r.done();
}

std::string encode_journal_fetch() {
  std::string p;
  runner::put_u8(&p, kMsgJournalFetch);
  return p;
}

bool decode_journal_fetch(std::string_view payload) {
  WireReader r(payload);
  if (r.u8() != kMsgJournalFetch) return false;
  return r.done();
}

std::string encode_journal_tail(const JournalTailMsg& m) {
  std::string p;
  runner::put_u8(&p, kMsgJournalTail);
  runner::put_u64(&p, m.total);
  runner::put_u8(&p, m.done);
  runner::put_u32(&p, static_cast<std::uint32_t>(m.lines.size()));
  for (const std::string& l : m.lines) runner::put_string(&p, l);
  return p;
}

bool decode_journal_tail(std::string_view payload, JournalTailMsg* out) {
  WireReader r(payload);
  if (r.u8() != kMsgJournalTail) return false;
  out->total = r.u64();
  out->done = r.u8();
  const std::uint32_t n = r.u32();
  // Bound before allocating: a line costs >= 4 payload bytes (its length
  // prefix), so a count the remaining payload cannot possibly hold is
  // framing damage, not a big chunk.
  if (n > payload.size() / 4 + 1) return false;
  out->lines.clear();
  out->lines.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out->lines.push_back(r.str());
  return r.done();
}

// ---- Anti-entropy gossip ---------------------------------------------------

std::string encode_shard_digest() {
  std::string p;
  runner::put_u8(&p, kMsgShardDigest);
  return p;
}

bool decode_shard_digest(std::string_view payload) {
  WireReader r(payload);
  if (r.u8() != kMsgShardDigest) return false;
  return r.done();
}

std::string encode_shard_digest_ack(const ShardDigestMsg& m) {
  std::string p;
  runner::put_u8(&p, kMsgShardDigestAck);
  runner::put_u64(&p, m.records);
  runner::put_u64(&p, m.max_seq);
  runner::put_u32(&p, m.seq_crc);
  return p;
}

bool decode_shard_digest_ack(std::string_view payload, ShardDigestMsg* out) {
  WireReader r(payload);
  if (r.u8() != kMsgShardDigestAck) return false;
  out->records = r.u64();
  out->max_seq = r.u64();
  out->seq_crc = r.u32();
  return r.done();
}

std::uint32_t seq_set_crc(const std::map<std::uint64_t, std::string>& by_seq,
                          std::uint64_t up_to_seq, std::uint64_t* records) {
  // Each sequence number contributes its 8 little-endian bytes, in
  // ascending order, so the CRC identifies the *set* of retained seqs
  // independent of record contents (the seals already guard those).
  std::string bytes;
  std::uint64_t n = 0;
  for (const auto& [seq, line] : by_seq) {
    if (seq > up_to_seq) break;
    std::uint64_t v = seq;
    for (int i = 0; i < 8; ++i) {
      bytes += static_cast<char>(v & 0xFF);
      v >>= 8;
    }
    ++n;
  }
  if (records != nullptr) *records = n;
  return crc32(bytes);
}

// ---- Heartbeat -------------------------------------------------------------

std::string encode_ping(const PingMsg& m) {
  std::string p;
  runner::put_u8(&p, kMsgPing);
  runner::put_u64(&p, m.nonce);
  runner::put_u64(&p, m.t_send_ns);
  return p;
}

bool decode_ping(std::string_view payload, PingMsg* out) {
  WireReader r(payload);
  if (r.u8() != kMsgPing) return false;
  out->nonce = r.u64();
  out->t_send_ns = r.u64();
  return r.done();
}

std::string encode_pong(const PongMsg& m) {
  std::string p;
  runner::put_u8(&p, kMsgPong);
  runner::put_u64(&p, m.nonce);
  runner::put_u64(&p, m.t_send_ns);
  return p;
}

bool decode_pong(std::string_view payload, PongMsg* out) {
  WireReader r(payload);
  if (r.u8() != kMsgPong) return false;
  out->nonce = r.u64();
  out->t_send_ns = r.u64();
  return r.done();
}

// ---- Error -----------------------------------------------------------------

std::string encode_error_msg(std::string_view message) {
  std::string p;
  runner::put_u8(&p, kMsgError);
  runner::put_string(&p, message);
  return p;
}

bool decode_error_msg(std::string_view payload, std::string* message) {
  WireReader r(payload);
  if (r.u8() != kMsgError) return false;
  *message = r.str();
  return r.done();
}

// ---- FrameBuffer -----------------------------------------------------------

FrameStatus FrameBuffer::next(std::string* payload) {
  if (corrupt_) return FrameStatus::kCorrupt;
  std::size_t consumed = 0;
  const FrameStatus st = runner::decode_frame(buf_, payload, &consumed);
  if (st == FrameStatus::kOk) {
    buf_.erase(0, consumed);
  } else if (st == FrameStatus::kCorrupt) {
    corrupt_ = true;
  }
  return st;
}

}  // namespace fpmix::net
