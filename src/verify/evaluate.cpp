#include "verify/evaluate.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"

namespace fpmix::verify {

EvalResult evaluate_config(const program::Image& original,
                           const config::StructureIndex& index,
                           const config::PrecisionConfig& cfg,
                           const Verifier& verifier,
                           const EvalOptions& options) {
  EvalResult result;
  Timer timer;
  program::Image patched =
      instrument::instrument_image(original, index, cfg, &result.stats);
  result.patch_ns = timer.elapsed_ns();

  timer.reset();
  const auto exec = vm::ExecutableImage::build(std::move(patched));
  result.predecode_ns = timer.elapsed_ns();

  vm::Machine::Options mopts;
  mopts.max_instructions = options.max_instructions;
  mopts.profile = options.profile;
  mopts.engine = options.engine;
  vm::Machine machine(exec, mopts);
  timer.reset();
  const vm::RunResult run = machine.run();
  result.run_ns = timer.elapsed_ns();
  result.run_status = run.status;
  result.instructions_retired = run.instructions_retired;
  result.outputs = machine.output_f64();

  if (!run.ok()) {
    result.passed = false;
    result.failure = run.trap_message.empty() ? "run failed"
                                              : run.trap_message;
    return result;
  }
  timer.reset();
  result.passed = verifier.verify(result.outputs);
  result.verify_ns = timer.elapsed_ns();
  if (!result.passed) result.failure = "verification failed";
  return result;
}

std::vector<double> reference_outputs(const program::Image& original,
                                      std::uint64_t max_instructions) {
  vm::Machine::Options mopts;
  mopts.max_instructions = max_instructions;
  mopts.profile = false;  // only the outputs are consumed
  vm::Machine machine(original, mopts);
  const vm::RunResult run = machine.run();
  if (!run.ok()) {
    throw Error(strformat("reference run failed: %s",
                          run.trap_message.c_str()));
  }
  return machine.output_f64();
}

}  // namespace fpmix::verify
