#include "instrument/snippet.hpp"

#include "arch/intrinsics.hpp"
#include "arch/tag.hpp"
#include "config/structure.hpp"
#include "instrument/chain_builder.hpp"
#include "support/error.hpp"

namespace fpmix::instrument {

using arch::Instr;
using arch::Opcode;
using arch::Operand;
using config::Precision;
namespace in = arch::intrinsics;

SnippetChain ChainBuilder::finish() {
  FPMIX_CHECK(!blocks_.back().instrs.empty());
  blocks_.back().fallthrough = SnippetChain::kChainExit;
  SnippetChain chain;
  chain.blocks = std::move(blocks_);
  return chain;
}

namespace {

// Scratch register conventions (saved/restored by every snippet that uses
// them): r0/r1 for bit tests, xmm15 for hoisted memory operands, xmm14 for
// lane-wise conversions of packed values.
constexpr std::uint8_t kScratchA = 0;   // "rax" of Figure 6
constexpr std::uint8_t kScratchB = 1;   // "rbx" of Figure 6
constexpr std::uint8_t kMemTemp = 15;   // hoisted memory operand
constexpr std::uint8_t kLaneTemp = 14;  // packed lane conversion

constexpr std::int64_t kTagWord =
    static_cast<std::int64_t>(arch::kReplacedTag);
constexpr std::int64_t kTagHigh =
    static_cast<std::int64_t>(arch::kReplacedTagHigh);
constexpr std::int64_t kLowMask = 0xFFFFFFFFll;

/// Boxes the single-precision result in xmm `x` lane 0: low 32 bits are
/// kept, the sentinel is written to the high 32.
void retag(ChainBuilder& b, std::uint8_t x) {
  b.emit(Opcode::kMovqRX, Operand::gpr(kScratchA), Operand::xmm(x));
  b.emit(Opcode::kAnd, Operand::gpr(kScratchA), Operand::make_imm(kLowMask));
  b.emit(Opcode::kOr, Operand::gpr(kScratchA), Operand::make_imm(kTagHigh));
  b.emit(Opcode::kMovqXR, Operand::xmm(x), Operand::gpr(kScratchA));
}

/// Figure 6 input handling, single-precision flavour: if xmm `x` does not
/// carry the sentinel, downcast it in place and set the flag. `state` is
/// the dataflow fact for this register.
void downcast_check(ChainBuilder& b, std::uint8_t x,
                    const SnippetOptions& opts,
                    TagState state = TagState::kUnknown) {
  if (state == TagState::kTagged) return;  // already boxed: nothing to do
  if (state == TagState::kPlain) {
    // Known-plain double: narrow unconditionally (sound elision).
    b.emit(Opcode::kCvtsd2ss, Operand::xmm(x), Operand::xmm(x));
    retag(b, x);
    return;
  }
  if (!opts.check_tags) {
    // Ablation: unconditional narrowing. Correct only when the input is
    // guaranteed untagged.
    b.emit(Opcode::kCvtsd2ss, Operand::xmm(x), Operand::xmm(x));
    retag(b, x);
    return;
  }
  b.emit(Opcode::kMovqRX, Operand::gpr(kScratchA), Operand::xmm(x));
  b.emit(Opcode::kMov, Operand::gpr(kScratchB), Operand::gpr(kScratchA));
  b.emit(Opcode::kShr, Operand::gpr(kScratchB), Operand::make_imm(32));
  b.emit(Opcode::kCmp, Operand::gpr(kScratchB), Operand::make_imm(kTagWord));
  const ChainBuilder::FwdBranch skip = b.branch_fwd(Opcode::kJe);
  b.emit(Opcode::kCvtsd2ss, Operand::xmm(x), Operand::xmm(x));
  b.emit(Opcode::kMovqRX, Operand::gpr(kScratchA), Operand::xmm(x));
  b.emit(Opcode::kOr, Operand::gpr(kScratchA), Operand::make_imm(kTagHigh));
  b.emit(Opcode::kMovqXR, Operand::xmm(x), Operand::gpr(kScratchA));
  b.land(skip);
}

/// Double-precision flavour: if xmm `x` carries the sentinel, widen the
/// boxed float back to a plain double in place.
void upcast_check(ChainBuilder& b, std::uint8_t x,
                  const SnippetOptions& opts,
                  TagState state = TagState::kUnknown) {
  (void)opts;  // check_tags never elides the upcast test (correctness)
  if (state == TagState::kPlain) return;  // known plain: nothing to do
  if (state == TagState::kTagged) {
    b.emit(Opcode::kCvtss2sd, Operand::xmm(x), Operand::xmm(x));
    return;
  }
  b.emit(Opcode::kMovqRX, Operand::gpr(kScratchA), Operand::xmm(x));
  b.emit(Opcode::kShr, Operand::gpr(kScratchA), Operand::make_imm(32));
  b.emit(Opcode::kCmp, Operand::gpr(kScratchA), Operand::make_imm(kTagWord));
  const ChainBuilder::FwdBranch skip = b.branch_fwd(Opcode::kJne);
  b.emit(Opcode::kCvtss2sd, Operand::xmm(x), Operand::xmm(x));
  b.land(skip);
}

/// Lane-wise check/convert of a packed register through a stack spill.
void packed_check(ChainBuilder& b, std::uint8_t x, bool single,
                  const SnippetOptions& opts) {
  b.emit(Opcode::kPushX, Operand::xmm(x));
  for (int lane = 0; lane < 2; ++lane) {
    const auto slot = Operand::mem_bd(arch::kSpReg, 8 * lane);
    ChainBuilder::FwdBranch skip{};
    bool have_skip = false;
    if (opts.check_tags || !single) {
      b.emit(Opcode::kLoad, Operand::gpr(kScratchA), slot);
      b.emit(Opcode::kShr, Operand::gpr(kScratchA), Operand::make_imm(32));
      b.emit(Opcode::kCmp, Operand::gpr(kScratchA),
             Operand::make_imm(kTagWord));
      skip = b.branch_fwd(single ? Opcode::kJe : Opcode::kJne);
      have_skip = true;
    }
    b.emit(Opcode::kMovsdXM, Operand::xmm(kLaneTemp), slot);
    if (single) {
      b.emit(Opcode::kCvtsd2ss, Operand::xmm(kLaneTemp),
             Operand::xmm(kLaneTemp));
      b.emit(Opcode::kMovqRX, Operand::gpr(kScratchA),
             Operand::xmm(kLaneTemp));
      b.emit(Opcode::kOr, Operand::gpr(kScratchA),
             Operand::make_imm(kTagHigh));
      b.emit(Opcode::kStore, slot, Operand::gpr(kScratchA));
    } else {
      b.emit(Opcode::kCvtss2sd, Operand::xmm(kLaneTemp),
             Operand::xmm(kLaneTemp));
      b.emit(Opcode::kMovsdMX, slot, Operand::xmm(kLaneTemp));
    }
    if (have_skip) b.land(skip);
  }
  b.emit(Opcode::kPopX, Operand::xmm(x));
}

/// Boxes both lanes of a packed result.
void packed_retag(ChainBuilder& b, std::uint8_t x) {
  b.emit(Opcode::kPushX, Operand::xmm(x));
  for (int lane = 0; lane < 2; ++lane) {
    const auto slot = Operand::mem_bd(arch::kSpReg, 8 * lane);
    b.emit(Opcode::kLoad, Operand::gpr(kScratchA), slot);
    b.emit(Opcode::kAnd, Operand::gpr(kScratchA), Operand::make_imm(kLowMask));
    b.emit(Opcode::kOr, Operand::gpr(kScratchA), Operand::make_imm(kTagHigh));
    b.emit(Opcode::kStore, slot, Operand::gpr(kScratchA));
  }
  b.emit(Opcode::kPopX, Operand::xmm(x));
}

std::uint64_t origin_of(const Instr& ins) {
  return ins.origin != arch::kNoAddr ? ins.origin : ins.addr;
}

bool reads_f64(const arch::OpcodeInfo& info) {
  return info.reads_dst_f64 || info.reads_src_f64;
}

/// Builds the snippet for an FP intrinsic call.
SnippetChain build_intrin_snippet(const Instr& ins, Precision p,
                                  const SnippetOptions& opts) {
  const auto id = static_cast<in::Id>(ins.src.imm);
  const in::IntrinInfo& info = in::intrin_info(id);
  ChainBuilder b(origin_of(ins));
  b.emit(Opcode::kPush, Operand::gpr(kScratchA));
  b.emit(Opcode::kPush, Operand::gpr(kScratchB));
  const bool single = p == Precision::kSingle;
  FPMIX_CHECK(!single || in::intrin_has_f32_twin(id));
  for (std::uint8_t a = 0; a < info.num_f64_args; ++a) {
    if (single) {
      downcast_check(b, a, opts);  // args in xmm0, xmm1
    } else {
      upcast_check(b, a, opts);
    }
  }
  const in::Id call_id = single ? info.f32_twin : id;
  b.emit(Opcode::kIntrin, Operand::none(),
         Operand::make_imm(static_cast<std::int64_t>(call_id)));
  if (single && info.has_f64_result) retag(b, 0);
  b.emit(Opcode::kPop, Operand::gpr(kScratchB));
  b.emit(Opcode::kPop, Operand::gpr(kScratchA));
  return b.finish();
}

}  // namespace

bool needs_snippet(const arch::Instr& ins, Precision p) {
  if (p == Precision::kIgnore) return false;
  if (ins.op == Opcode::kIntrin) {
    const auto id = static_cast<in::Id>(ins.src.imm);
    if (id >= in::Id::kNumIntrinsics || !in::intrin_touches_fp(id)) {
      return false;
    }
    const in::IntrinInfo& info = in::intrin_info(id);
    if (info.num_f64_args == 0) return false;  // nothing to check or narrow
    return true;
  }
  const arch::OpcodeInfo& info = arch::opcode_info(ins.op);
  const bool single =
      p == Precision::kSingle && arch::is_replacement_candidate(ins.op);
  if (single) return true;
  // Double-mapped: only instructions that might consume a tagged slot need
  // wrapping (cvtsi2sd writes a fresh double and reads nothing).
  return reads_f64(info);
}

SnippetChain build_snippet(const arch::Instr& ins, Precision p,
                           const SnippetOptions& options) {
  FPMIX_CHECK(p != Precision::kIgnore);
  if (ins.op == Opcode::kIntrin) {
    return build_intrin_snippet(ins, p, options);
  }

  const arch::OpcodeInfo& info = arch::opcode_info(ins.op);
  const bool single =
      p == Precision::kSingle && arch::is_replacement_candidate(ins.op);
  FPMIX_CHECK(p != Precision::kSingle || single);
  FPMIX_CHECK(single || reads_f64(info));

  ChainBuilder b(origin_of(ins));
  const bool packed = info.fp_lanes == 2;
  const bool mem_src = ins.src.is_mem();

  // Scratch-register conflicts. Dyninst resolves these with register
  // liveness analysis; our code generator simply never allocates r0/r1 or
  // xmm14/xmm15 to program values, and the patcher enforces it here.
  if (ins.dst.is_gpr() &&
      (ins.dst.reg == kScratchA || ins.dst.reg == kScratchB)) {
    throw ProgramError(
        "instrumented FP instruction writes a snippet scratch GPR (r0/r1)");
  }
  for (const Operand* op : {&ins.dst, &ins.src}) {
    if (op->is_xmm() && (op->reg == kMemTemp || op->reg == kLaneTemp) &&
        (mem_src || packed)) {
      throw ProgramError(
          "instrumented FP instruction uses a snippet scratch XMM "
          "(xmm14/xmm15)");
    }
  }

  // Prologue: save scratch state. xmm15 is only clobbered when a memory
  // operand is hoisted; xmm14 only by packed lane conversions.
  b.emit(Opcode::kPush, Operand::gpr(kScratchA));
  b.emit(Opcode::kPush, Operand::gpr(kScratchB));
  if (mem_src) b.emit(Opcode::kPushX, Operand::xmm(kMemTemp));
  if (packed) b.emit(Opcode::kPushX, Operand::xmm(kLaneTemp));

  // Hoist a memory source into xmm15 ("copies any memory operands into a
  // temporary register, and modifies the replaced instruction to use only
  // register operands").
  Operand src = ins.src;
  if (mem_src) {
    b.emit(packed ? Opcode::kMovapdXM : Opcode::kMovsdXM,
           Operand::xmm(kMemTemp), ins.src);
    src = Operand::xmm(kMemTemp);
  }

  // Input checks. Dataflow states apply only to register operands (a
  // hoisted memory operand's state is always unknown).
  const TagState src_state =
      mem_src ? TagState::kUnknown : options.src_state;
  if (packed) {
    if (info.reads_dst_f64) packed_check(b, ins.dst.reg, single, options);
    if (info.reads_src_f64) packed_check(b, src.reg, single, options);
  } else {
    if (info.reads_dst_f64) {
      if (single) downcast_check(b, ins.dst.reg, options, options.dst_state);
      else upcast_check(b, ins.dst.reg, options, options.dst_state);
    }
    if (info.reads_src_f64 && src.is_xmm()) {
      // Same-register operands were just converted by the dst check.
      const TagState eff =
          (ins.dst.is_xmm() && info.reads_dst_f64 &&
           src.reg == ins.dst.reg)
              ? (single ? TagState::kTagged : TagState::kPlain)
              : src_state;
      if (single) downcast_check(b, src.reg, options, eff);
      else upcast_check(b, src.reg, options, eff);
    }
  }

  // The operation itself, possibly rewritten to its single twin.
  const Opcode op = single ? info.single_twin : ins.op;
  b.emit(op, ins.dst, src);

  // Box single results.
  if (single && info.writes_dst_f64) {
    if (packed) {
      packed_retag(b, ins.dst.reg);
    } else {
      retag(b, ins.dst.reg);
    }
  }

  // Epilogue (reverse order).
  if (packed) b.emit(Opcode::kPopX, Operand::xmm(kLaneTemp));
  if (mem_src) b.emit(Opcode::kPopX, Operand::xmm(kMemTemp));
  b.emit(Opcode::kPop, Operand::gpr(kScratchB));
  b.emit(Opcode::kPop, Operand::gpr(kScratchA));
  return b.finish();
}

}  // namespace fpmix::instrument
