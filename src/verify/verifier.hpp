// Verification routines (Section 2: "given a representative data set and a
// verification routine, this system builds multiple mixed-precision
// configurations ... and evaluates them").
//
// A verifier inspects the outputs a candidate binary emitted through the
// output_f64 channel and decides pass/fail. Crashed or hung runs never reach
// the verifier -- the evaluation driver fails them directly, which is how
// the paper's tag-crash design integrates with the search.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace fpmix::verify {

class Verifier {
 public:
  virtual ~Verifier() = default;

  /// Returns true when the outputs are acceptable.
  virtual bool verify(std::span<const double> outputs) const = 0;

  /// Human-readable description for logs and reports.
  virtual std::string describe() const = 0;

  /// Stable identity of this verifier instance: two verifiers with equal
  /// fingerprints accept exactly the same outputs, so cached trial verdicts
  /// (the search's journal) transfer between them. The built-in verifiers
  /// fold every parameter *and a digest of the reference data* into the
  /// fingerprint; the default falls back to describe(), which is safe for
  /// custom verifiers whose description names all their parameters.
  virtual std::string fingerprint() const;
};

/// Stable digest of a double vector (hashes the raw IEEE-754 bytes), used
/// by verifier fingerprints so different reference runs never share cache
/// entries.
std::string digest_doubles(std::span<const double> values);

/// Element-wise comparison against a reference run:
/// |out - ref| <= abs_tol + rel_tol * |ref| for every element, and the
/// counts must match.
class RelativeErrorVerifier : public Verifier {
 public:
  RelativeErrorVerifier(std::vector<double> reference, double rel_tol,
                        double abs_tol = 0.0);

  /// Per-output tolerances (NAS style: tight on the figure of merit, loose
  /// on auxiliary reports). Missing entries fall back to the scalar
  /// tolerances given at construction.
  void set_output_tolerance(std::size_t index, double rel_tol,
                            double abs_tol = 0.0);

  bool verify(std::span<const double> outputs) const override;
  std::string describe() const override;
  std::string fingerprint() const override;

 private:
  struct Tol {
    double rel, abs;
  };
  std::vector<double> reference_;
  double rel_tol_;
  double abs_tol_;
  std::vector<Tol> per_output_;  // index-aligned; rel < 0 means "default"
};

/// Bit-for-bit comparison against a reference run (Section 3.1).
class BitExactVerifier : public Verifier {
 public:
  explicit BitExactVerifier(std::vector<double> reference);
  bool verify(std::span<const double> outputs) const override;
  std::string describe() const override;
  std::string fingerprint() const override;

 private:
  std::vector<double> reference_;
};

/// The SuperLU-style driver check: the program itself reports an error
/// metric at output index `index`; pass when it is finite and does not
/// exceed `threshold` (Section 3.3's "compared the reported error against a
/// predefined threshold error bound").
class ThresholdVerifier : public Verifier {
 public:
  ThresholdVerifier(std::size_t index, double threshold,
                    std::size_t expected_outputs);
  bool verify(std::span<const double> outputs) const override;
  std::string describe() const override;
  std::string fingerprint() const override;

 private:
  std::size_t index_;
  double threshold_;
  std::size_t expected_outputs_;
};

}  // namespace fpmix::verify
