file(REMOVE_RECURSE
  "CMakeFiles/fpmix_asm.dir/assembler.cpp.o"
  "CMakeFiles/fpmix_asm.dir/assembler.cpp.o.d"
  "libfpmix_asm.a"
  "libfpmix_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpmix_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
