#include "search/trial_cache.hpp"

#include "support/hash.hpp"
#include "support/journal.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace fpmix::search {

void TrialCache::insert(const std::string& key, CachedTrial trial) {
  trials_.try_emplace(key, std::move(trial));
}

const CachedTrial* TrialCache::lookup(const std::string& key) const {
  const auto it = trials_.find(key);
  return it == trials_.end() ? nullptr : &it->second;
}

std::string search_fingerprint(const std::string& verifier_fingerprint,
                               std::uint64_t max_instructions_per_run) {
  std::uint64_t h = fnv1a64(verifier_fingerprint);
  h = fnv1a64_mix(h, max_instructions_per_run);
  return hex_digest(h);
}

std::string encode_meta_line(const std::string& search_fp) {
  return strformat("{\"type\":\"meta\",\"version\":1,\"search_fp\":\"%s\"}",
                   json_escape(search_fp).c_str());
}

std::string encode_trial_line(const std::string& key, const std::string& unit,
                              std::size_t candidates, const CachedTrial& t) {
  return strformat(
      "{\"type\":\"trial\",\"key\":\"%s\",\"unit\":\"%s\",\"cand\":%zu,"
      "\"passed\":%s,\"failure\":\"%s\",\"eval_ns\":%llu}",
      json_escape(key).c_str(), json_escape(unit).c_str(), candidates,
      t.passed ? "true" : "false", json_escape(t.failure).c_str(),
      static_cast<unsigned long long>(t.eval_ns));
}

std::size_t load_journal(const std::string& path,
                         const std::string& search_fp, TrialCache* cache) {
  std::size_t loaded = 0;
  std::size_t skipped = 0;
  bool fp_matches = false;  // until a meta record says otherwise
  for (const std::string& line : Journal::read_lines(path)) {
    if (trim(line).empty()) continue;
    JsonRecord rec;
    if (!parse_flat_json(line, &rec)) {
      ++skipped;
      continue;
    }
    const auto type = rec.find("type");
    if (type == rec.end()) {
      ++skipped;
      continue;
    }
    if (type->second == "meta") {
      const auto fp = rec.find("search_fp");
      fp_matches = fp != rec.end() && fp->second == search_fp;
      continue;
    }
    if (type->second != "trial") continue;  // future record types: ignore
    if (!fp_matches) continue;  // recorded under a different search identity
    const auto key = rec.find("key");
    const auto passed = rec.find("passed");
    if (key == rec.end() || passed == rec.end() ||
        (passed->second != "true" && passed->second != "false")) {
      ++skipped;
      continue;
    }
    CachedTrial t;
    t.passed = passed->second == "true";
    if (const auto f = rec.find("failure"); f != rec.end()) {
      t.failure = f->second;
    }
    if (const auto ns = rec.find("eval_ns"); ns != rec.end()) {
      parse_u64(ns->second, &t.eval_ns);
    }
    cache->insert(key->second, std::move(t));
    ++loaded;
  }
  if (skipped > 0) {
    log::warnf("trial journal %s: skipped %zu malformed record(s)",
               path.c_str(), skipped);
  }
  return loaded;
}

}  // namespace fpmix::search
