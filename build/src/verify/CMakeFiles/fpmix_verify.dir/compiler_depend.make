# Empty compiler generated dependencies file for fpmix_verify.
# This may be replaced when dependencies are built.
