#include "support/rng.hpp"

#include <cmath>

namespace fpmix {
namespace {

constexpr double kR23 = 0x1.0p-23;
constexpr double kT23 = 0x1.0p+23;
constexpr double kR46 = 0x1.0p-46;
constexpr double kT46 = 0x1.0p+46;

}  // namespace

NasLcg::NasLcg(double seed, double a) : x_(seed), a_(a) {}

double NasLcg::next() {
  // Break a and x into two 23-bit halves: a = 2^23 * a1 + a2.
  const double t1a = kR23 * a_;
  const double a1 = std::floor(t1a);
  const double a2 = a_ - kT23 * a1;

  const double t1x = kR23 * x_;
  const double x1 = std::floor(t1x);
  const double x2 = x_ - kT23 * x1;

  // t = a1*x2 + a2*x1 (mod 2^23) scaled, then z*2^23 + a2*x2 (mod 2^46).
  const double t1 = a1 * x2 + a2 * x1;
  const double t2 = std::floor(kR23 * t1);
  const double z = t1 - kT23 * t2;
  const double t3 = kT23 * z + a2 * x2;
  const double t4 = std::floor(kR46 * t3);
  x_ = t3 - kT46 * t4;
  return kR46 * x_;
}

}  // namespace fpmix
