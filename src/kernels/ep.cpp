// EP: the "embarrassingly parallel" NAS benchmark analogue.
//
// Generates pseudo-random pairs with the NAS 46-bit linear congruential
// generator (implemented *in the program* with double-precision floor
// arithmetic, exactly as NPB's randlc does), maps accepted pairs through the
// Marsaglia polar method, and tallies Gaussian deviates into annulus
// counts. The LCG is the paper's canonical example of a region that cannot
// be narrowed: its 46-bit modular arithmetic needs more significand than
// single precision has, so any configuration that narrows it corrupts the
// whole stream and fails verification -- while the accumulation arithmetic
// narrows fine.
#include "kernels/workload.hpp"

#include "lang/builder.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace fpmix::kernels {

using lang::Builder;
using lang::Expr;

namespace {

std::size_t ep_pairs(char cls) {
  switch (cls) {
    case 'S': return 1 << 10;
    case 'W': return 1 << 12;
    case 'A': return 1 << 14;
    case 'C': return 1 << 16;
    default: throw Error(strformat("ep: unknown class %c", cls));
  }
}

}  // namespace

Workload make_ep(char cls, int ranks) {
  const std::size_t pairs = ep_pairs(cls);
  FPMIX_CHECK(ranks >= 1);
  FPMIX_CHECK(pairs % static_cast<std::size_t>(ranks) == 0);

  Builder b;

  // Globals shared between the RNG module and the main module.
  auto seed = b.var_f64("seed");
  auto rr = b.var_f64("rr");

  // Per-rank starting seeds, precomputed host-side with the same recurrence
  // (NPB jumps the stream with log-stepping; baking the jumped seeds
  // preserves the exact stream each rank consumes).
  std::vector<double> rank_seeds(static_cast<std::size_t>(ranks));
  {
    NasLcg lcg;
    const std::size_t per_rank = 2 * (pairs / static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      rank_seeds[static_cast<std::size_t>(r)] = lcg.seed();
      for (std::size_t k = 0; k < per_rank; ++k) lcg.next();
    }
  }
  auto seeds = b.const_array_f64("rank_seeds", rank_seeds);

  // --- module ep_rand: the NAS randlc recurrence ---------------------------
  b.begin_func("randlc", "ep_rand");
  {
    const double kA = NasLcg::kDefaultA;
    const double kR23 = 0x1.0p-23, kT23 = 0x1.0p+23;
    const double kR46 = 0x1.0p-46, kT46 = 0x1.0p+46;
    auto a1 = b.var_f64("rl_a1");
    auto a2 = b.var_f64("rl_a2");
    auto x1 = b.var_f64("rl_x1");
    auto x2 = b.var_f64("rl_x2");
    auto t1 = b.var_f64("rl_t1");
    auto t2 = b.var_f64("rl_t2");
    auto z = b.var_f64("rl_z");
    auto t3 = b.var_f64("rl_t3");
    auto t4 = b.var_f64("rl_t4");
    b.set(a1, floor_(b.cf(kR23 * kA)));
    b.set(a2, b.cf(kA) - b.cf(kT23) * Expr(a1));
    b.set(t1, b.cf(kR23) * Expr(seed));
    b.set(x1, floor_(t1));
    b.set(x2, Expr(seed) - b.cf(kT23) * Expr(x1));
    b.set(t1, Expr(a1) * Expr(x2) + Expr(a2) * Expr(x1));
    b.set(t2, floor_(b.cf(kR23) * Expr(t1)));
    b.set(z, Expr(t1) - b.cf(kT23) * Expr(t2));
    b.set(t3, b.cf(kT23) * Expr(z) + Expr(a2) * Expr(x2));
    b.set(t4, floor_(b.cf(kR46) * Expr(t3)));
    b.set(seed, Expr(t3) - b.cf(kT46) * Expr(t4));
    b.set(rr, b.cf(kR46) * Expr(seed));
  }
  b.end_func();

  // --- module ep_main -------------------------------------------------------
  constexpr std::size_t kNq = 10;
  auto sx = b.var_f64("sx");
  auto sy = b.var_f64("sy");
  auto q = b.array_f64("q", kNq);
  auto gc = b.var_f64("gc");  // accepted-pair count

  b.begin_func("main", "ep_main");
  {
    auto i = b.var_i64("i");
    auto k = b.var_i64("k");
    auto r1 = b.var_f64("r1");
    auto r2 = b.var_f64("r2");
    auto x1 = b.var_f64("x1");
    auto x2 = b.var_f64("x2");
    auto t = b.var_f64("t");
    auto f = b.var_f64("f");
    auto y1 = b.var_f64("y1");
    auto y2 = b.var_f64("y2");
    auto l = b.var_i64("l");
    auto npairs = b.var_i64("npairs");

    if (ranks > 1) {
      b.set(seed, seeds[b.mpi_rank()]);
      b.set(npairs, b.ci(static_cast<std::int64_t>(pairs)) / b.mpi_size());
    } else {
      b.set(seed, b.cf(NasLcg::kEpSeed));
      b.set(npairs, b.ci(static_cast<std::int64_t>(pairs)));
    }
    b.set(sx, b.cf(0.0));
    b.set(sy, b.cf(0.0));
    b.set(gc, b.cf(0.0));
    b.for_(k, b.ci(0), b.ci(static_cast<std::int64_t>(kNq)),
           [&] { b.store(q, Expr(k), b.cf(0.0)); });

    b.for_(i, b.ci(0), Expr(npairs), [&] {
      b.call("randlc");
      b.set(r1, rr);
      b.call("randlc");
      b.set(r2, rr);
      b.set(x1, b.cf(2.0) * Expr(r1) - b.cf(1.0));
      b.set(x2, b.cf(2.0) * Expr(r2) - b.cf(1.0));
      b.set(t, Expr(x1) * Expr(x1) + Expr(x2) * Expr(x2));
      b.if_(Expr(t) <= b.cf(1.0), [&] {
        b.set(f, sqrt_(b.cf(-2.0) * log_(t) / Expr(t)));
        b.set(y1, Expr(x1) * Expr(f));
        b.set(y2, Expr(x2) * Expr(f));
        b.set(sx, Expr(sx) + Expr(y1));
        b.set(sy, Expr(sy) + Expr(y2));
        b.set(gc, Expr(gc) + b.cf(1.0));
        b.set(l, to_i64(max_(fabs_(y1), fabs_(y2))));
        b.if_(Expr(l) > b.ci(static_cast<std::int64_t>(kNq - 1)),
              [&] { b.set(l, b.ci(static_cast<std::int64_t>(kNq - 1))); });
        b.store(q, Expr(l), q[Expr(l)] + b.cf(1.0));
      });
    });

    if (ranks > 1) {
      b.set(sx, b.allreduce_sum(sx));
      b.set(sy, b.allreduce_sum(sy));
      b.set(gc, b.allreduce_sum(gc));
      b.allreduce_vec(q, b.ci(static_cast<std::int64_t>(kNq)));
    }

    b.output(sx);
    b.output(sy);
    b.output(gc);
    b.for_(k, b.ci(0), b.ci(static_cast<std::int64_t>(kNq)),
           [&] { b.output(q[Expr(k)]); });
  }
  b.end_func();

  Workload w;
  w.name = strformat("ep.%c%s", cls, ranks > 1 ? ".mpi" : "");
  w.model = b.take_model();
  // sx/sy are random-walk sums of O(sqrt(n)) magnitude: widen the absolute
  // slack so single-precision accumulation passes while a corrupted RNG
  // stream (order-of-magnitude different sums) fails.
  w.rel_tol = 1e-2;
  w.abs_tol = 0.0;
  w.output_tols = {{0, 1e-2, 0.5}, {1, 1e-2, 0.5}};
  return w;
}

}  // namespace fpmix::kernels
