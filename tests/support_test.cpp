// Tests for the support layer: string utilities, RNGs, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace fpmix {
namespace {

// ---------------------------------------------------------------------------
// Strings.

TEST(Strings, Strformat) {
  EXPECT_EQ(strformat("x=%d y=%s", 42, "ok"), "x=42 y=ok");
  EXPECT_EQ(strformat("%.3f", 1.23456), "1.235");
  EXPECT_EQ(strformat("empty"), "empty");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\r\nx\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, SplitFields) {
  const auto f = split_fields("  a\tbc   d ");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "bc");
  EXPECT_EQ(f[2], "d");
  EXPECT_TRUE(split_fields("").empty());
  EXPECT_TRUE(split_fields(" \t ").empty());
}

TEST(Strings, SplitLines) {
  const auto l = split_lines("a\n\nb\nc");
  ASSERT_EQ(l.size(), 4u);
  EXPECT_EQ(l[0], "a");
  EXPECT_EQ(l[1], "");
  EXPECT_EQ(l[3], "c");
  EXPECT_TRUE(split_lines("").empty());
}

TEST(Strings, ParseNumbers) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("12345", &v));
  EXPECT_EQ(v, 12345u);
  EXPECT_FALSE(parse_u64("", &v));
  EXPECT_FALSE(parse_u64("12x", &v));
  EXPECT_TRUE(parse_hex_u64("0x400a1F", &v));
  EXPECT_EQ(v, 0x400a1Fu);
  EXPECT_TRUE(parse_hex_u64("ff", &v));
  EXPECT_EQ(v, 0xFFu);
  EXPECT_FALSE(parse_hex_u64("0x", &v));
  EXPECT_FALSE(parse_hex_u64("0xZZ", &v));
}

// ---------------------------------------------------------------------------
// RNGs.

TEST(Rng, SplitMixIsDeterministicAndSpread) {
  SplitMix64 a(7), b(7), c(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    seen.insert(va);
  }
  EXPECT_EQ(seen.size(), 1000u);       // no collisions in practice
  EXPECT_NE(c.next_u64(), *seen.begin());
  for (int i = 0; i < 1000; ++i) {
    const double d = a.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NasLcgMatchesKnownStream) {
  // randlc with the EP seed: the stream must be reproducible and uniform,
  // and the state must stay within 46 bits (the property that breaks under
  // single precision).
  NasLcg lcg;
  double mean = 0;
  for (int i = 0; i < 4096; ++i) {
    const double r = lcg.next();
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 1.0);
    EXPECT_LT(lcg.seed(), 0x1.0p46);
    EXPECT_EQ(lcg.seed(), std::floor(lcg.seed()));  // integral state
    mean += r;
  }
  mean /= 4096;
  EXPECT_NEAR(mean, 0.5, 0.02);

  // Determinism across instances.
  NasLcg l1, l2;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(l1.next(), l2.next());
}

// ---------------------------------------------------------------------------
// Thread pool.

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 20 * (round + 1));
  }
}

TEST(ThreadPool, DestructionDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
  }
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace fpmix
