// Thin POSIX TCP layer for the distributed search service.
//
// Everything here is deliberately small: move-only fd wrappers, a
// non-blocking listener, a timeout-bounded connect, and the two I/O shapes
// the protocol needs -- "drain whatever is readable right now" (feeding the
// incremental frame decoder) and "write this whole buffer, polling through
// partial writes". No frameworks, no threads: the daemon and the scheduler
// each multiplex their sockets from one poll(2) loop, exactly like the
// WorkerPool multiplexes its worker pipes.
//
// Like the runner, the whole layer is runtime-gated: supported() is false
// on platforms without BSD sockets, and callers degrade to the in-process
// path there.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace fpmix::fault {
class NetChaos;
}  // namespace fpmix::fault

namespace fpmix::net {

/// True when this platform has the socket layer (POSIX).
bool supported();

/// Installs (or clears, with nullptr) a process-wide transport chaos
/// source: every Socket::send_all consults it and may reset the
/// connection, stall, or hold/duplicate/reorder whole frames. The chaos
/// test harness only; production never installs one. The pointer must
/// outlive its installation. Not thread-safe against concurrent senders --
/// install before the fleet traffic starts, clear after it drains.
void set_socket_chaos(const fault::NetChaos* chaos);

/// A "host:port" network address.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string str() const;
};

/// Parses "host:port" (host may be empty for 127.0.0.1). Returns false on
/// a missing/invalid port.
bool parse_endpoint(std::string_view s, Endpoint* out);

enum class IoStatus : std::uint8_t {
  kOk,          // progress was made
  kWouldBlock,  // nothing available right now
  kEof,         // orderly shutdown from the peer
  kError,       // socket error; the connection is dead
};

/// Move-only connected-socket wrapper. The fd is non-blocking.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Appends every byte currently readable to *buf (non-blocking drain).
  /// kOk when any bytes arrived; kEof only when the peer closed with no
  /// bytes pending.
  IoStatus read_available(std::string* buf);

  /// Writes the whole buffer, polling for writability through partial
  /// writes. `timeout_ms` bounds each stall (-1 = wait indefinitely).
  /// False on error or timeout -- the connection should be dropped.
  /// When a chaos source is installed (set_socket_chaos) the call may
  /// instead reset the connection, stall, or hold the frame to flush
  /// before/after the next send on this socket.
  bool send_all(std::string_view data, int timeout_ms = -1);

 private:
  bool send_plain(std::string_view data, int timeout_ms);

  int fd_ = -1;
  // Chaos state: per-connection id + op counter feeding NetChaos::for_op,
  // and at most one held frame awaiting its flush slot.
  std::uint64_t chaos_id_ = 0;
  std::uint64_t chaos_op_ = 0;
  std::string held_;
  bool held_after_next_ = false;  // true: reorder (flush after next frame)
};

/// Non-blocking listening socket. Port 0 binds a kernel-assigned port,
/// readable from port() after listen_on -- how tests and the CI smoke job
/// avoid port races.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;

  /// Binds and listens on host:port. False (with *error) on failure.
  bool listen_on(const std::string& host, std::uint16_t port,
                 std::string* error);
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// The bound port (kernel-assigned when listen_on got port 0).
  std::uint16_t port() const { return port_; }
  void close();

  /// Accepts one pending connection (non-blocking); an invalid Socket when
  /// none is waiting.
  Socket accept_connection();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to `ep` with a wall-clock bound on the TCP handshake. Returns
/// an invalid Socket (with *error) on failure or timeout.
Socket connect_to(const Endpoint& ep, int timeout_ms, std::string* error);

}  // namespace fpmix::net
