// Deterministic random number generators.
//
// Two generators are provided:
//  - SplitMix64: general-purpose seeding / test data.
//  - NasLcg: the 48-bit linear congruential generator used by the NAS
//    Parallel Benchmarks (x_{k+1} = a * x_k mod 2^46, a = 5^13). Our EP
//    kernel analogue reproduces its structure, including the property that
//    the generator itself is implemented in double-precision arithmetic and
//    is therefore precision-sensitive -- a key feature the search must
//    discover (the RNG region cannot be narrowed to single precision).
#pragma once

#include <cstdint>

namespace fpmix {

/// SplitMix64; passes BigCrush, one multiplication + shifts per draw.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

 private:
  std::uint64_t state_;
};

/// The NAS "randlc" generator: 46-bit LCG computed with double arithmetic,
/// exactly as the NPB reference implementation does (split into two 23-bit
/// halves so every intermediate fits in a 52-bit significand).
class NasLcg {
 public:
  /// NPB default multiplier a = 5^13 and EP seed.
  static constexpr double kDefaultA = 1220703125.0;  // 5^13
  static constexpr double kEpSeed = 271828183.0;

  explicit NasLcg(double seed = kEpSeed, double a = kDefaultA);

  /// Advances the stream and returns a uniform double in (0, 1).
  double next();

  double seed() const { return x_; }

 private:
  double x_;
  double a_;
};

}  // namespace fpmix
