// Self-healing pool of sandboxed trial workers.
//
// The WorkerPool is the supervisor half of the out-of-process runner: a
// single driver thread multiplexes N forked Workers with poll(2), feeding
// each a trial request and collecting framed results. Staying
// single-threaded on the driver side sidesteps every multithreaded-fork
// hazard (locks held across fork, half-copied allocator state) -- the pool
// IS the parallelism in isolate mode.
//
// Failure policy, in one paragraph: a worker death, an over-rlimit resource
// verdict, or a corrupt/truncated result frame is a *fault event*, not a
// trial verdict. The pool respawns the worker (exponential backoff) and
// re-executes the trial with a fresh fault-injector attempt index. A config
// that kills workers max_crashes_per_config times in a row trips its
// circuit breaker: it is reported as a failing (kCrash) outcome, marked
// quarantined, and never executed again. A supervisor-timeout kill
// (TERM, then KILL after a grace period) is different: it yields a voting
// kTimeout verdict, mirroring what the in-process deadline path reports.
// If workers keep dying regardless of config (crash_storm_threshold
// consecutive deaths with no result delivered), the pool declares a crash
// storm and fails the remaining batch instead of fork-bombing the machine.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "runner/trial_runner.hpp"

namespace fpmix::runner {

struct PoolOptions {
  /// Number of concurrently running workers.
  int workers = 1;
  /// Per-config circuit breaker: this many consecutive fault events
  /// (worker deaths, resource verdicts, protocol errors) quarantines the
  /// config as failing.
  std::uint32_t max_crashes_per_config = 3;
  /// Pool-wide breaker: this many consecutive worker deaths without a
  /// single delivered result aborts the batch (the environment, not any
  /// one config, is broken).
  std::uint32_t crash_storm_threshold = 16;
  /// Wall-clock cap per trial execution; 0 disables supervisor timeouts
  /// (the worker's own VM deadline is then the only clock).
  std::uint64_t trial_timeout_ms = 0;
  /// Grace between SIGTERM and SIGKILL for a timed-out worker.
  std::uint64_t term_grace_ms = 250;
  /// Rlimits each worker applies to itself.
  RlimitSpec limits;
};

/// Per-worker-slot census (slot = one seat in the pool; the worker process
/// occupying it may be respawned many times).
struct SlotStats {
  std::uint64_t requests = 0;     // trial requests successfully sent
  std::uint64_t respawns = 0;     // worker processes respawned into the slot
  std::uint64_t crashes = 0;      // non-supervisor deaths observed
  std::uint64_t timeouts = 0;     // supervisor deadline kills
  std::uint64_t quarantines = 0;  // per-config breakers tripped on this slot
};

struct PoolStats {
  std::uint64_t workers_spawned = 0;
  std::uint64_t workers_respawned = 0;
  /// Worker deaths not initiated by the supervisor (crashes, rlimit kills).
  std::uint64_t worker_crashes = 0;
  /// Workers the supervisor killed for exceeding the trial timeout.
  std::uint64_t timeouts_killed = 0;
  /// Corrupt or truncated result frames (CRC caught them).
  std::uint64_t protocol_errors = 0;
  /// Resource verdicts (rlimit OOM / SIGXCPU) absorbed as retries.
  std::uint64_t resource_retries = 0;
  std::uint64_t quarantined_configs = 0;
  /// Trial executions dispatched to workers (retries included).
  std::uint64_t isolated_trials = 0;
  bool crash_storm = false;
  /// Death census by signal name ("SIGSEGV" -> 17), plus "exit:<N>" for
  /// nonzero exits.
  std::map<std::string, std::uint64_t> crashes_by_signal;
  /// Delta-encoded config shipping (see wire.hpp kReqDelta): requests sent
  /// in each form and their config-payload bytes.
  std::uint64_t delta_requests = 0;
  std::uint64_t full_requests = 0;
  std::uint64_t delta_bytes = 0;
  std::uint64_t full_bytes = 0;
  /// One entry per pool slot.
  std::vector<SlotStats> slots;
};

/// One trial to execute: the journal key identifying it and the config.
struct TrialJob {
  std::string key;
  const config::PrecisionConfig* config = nullptr;
};

struct TrialOutcome {
  verify::EvalResult result;
  /// Wall time from first dispatch to final delivery (retries included).
  std::uint64_t wall_ns = 0;
  /// Fault events absorbed to produce this outcome.
  std::uint32_t worker_deaths = 0;
  /// True when the circuit breaker tripped: `result` is a synthetic kCrash
  /// failure and the config will never run again.
  bool quarantined = false;
};

/// Supervisor for a fleet of sandboxed Workers. Not thread-safe: one
/// driver thread owns it (isolate mode's parallelism lives in the workers).
class WorkerPool {
 public:
  WorkerPool(const WorkerContext& ctx, const PoolOptions& opts);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawns the initial workers. False when not a single worker could be
  /// forked -- the caller degrades to the in-process path.
  bool start();

  /// Executes every job (keys must be distinct within a batch) and returns
  /// outcomes in job order. Handles crash retries, respawns, timeouts and
  /// quarantine internally; after a crash storm the remaining jobs come
  /// back as kInternalError failures.
  std::vector<TrialOutcome> run_batch(const std::vector<TrialJob>& jobs);

  const PoolStats& stats() const { return stats_; }
  bool crash_storm() const { return stats_.crash_storm; }
  bool is_quarantined(const std::string& key) const {
    return quarantined_.count(key) != 0;
  }
  const std::set<std::string>& quarantined_keys() const { return quarantined_; }

 private:
  struct Slot;

  bool spawn_slot(Slot* slot, bool respawn);
  /// Registers a fault event for `key`; returns true when the breaker
  /// tripped (the config is now quarantined).
  bool record_fault_event(const std::string& key);

  WorkerContext ctx_;
  PoolOptions opts_;
  PoolStats stats_;
  std::vector<std::unique_ptr<Slot>> slots_;
  /// Per-config consecutive fault events (reset when a verdict lands).
  std::map<std::string, std::uint32_t> fault_streak_;
  /// Per-config execution counter: every dispatch (retries included)
  /// consumes one index, so the fault injector draws fresh per execution.
  std::map<std::string, std::uint32_t> exec_counter_;
  std::set<std::string> quarantined_;
  /// Pool-wide consecutive deaths with no delivered result (storm detector
  /// and backoff driver).
  std::uint32_t consecutive_deaths_ = 0;
  bool started_ = false;
};

}  // namespace fpmix::runner
