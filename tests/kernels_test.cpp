// Tests for the benchmark workloads: every kernel must run to completion,
// produce verifiable outputs, survive all-double instrumentation
// bit-for-bit, and exhibit its designed precision characteristics. Also
// covers the Section 3.1 bit-exactness property on real kernels.
#include <gtest/gtest.h>

#include "config/config.hpp"
#include "instrument/patch.hpp"
#include "kernels/workload.hpp"
#include "program/layout.hpp"
#include "program/program.hpp"
#include "verify/evaluate.hpp"
#include "vm/machine.hpp"

namespace fpmix::kernels {
namespace {

struct Prepared {
  Workload w;
  program::Image image;
  config::StructureIndex index;
};

Prepared prepare(Workload w) {
  Prepared p{std::move(w), {}, {}};
  p.image = build_image(p.w);
  p.index = config::StructureIndex::build(program::lift(p.image));
  return p;
}

config::PrecisionConfig all_single(const config::StructureIndex& ix) {
  config::PrecisionConfig cfg;
  for (std::size_t m = 0; m < ix.modules().size(); ++m) {
    cfg.set_module(m, config::Precision::kSingle);
  }
  return cfg;
}

// ---------------------------------------------------------------------------
// Parameterized over every serial workload.

class WorkloadSweep : public ::testing::TestWithParam<int> {
 protected:
  static const std::vector<Workload>& all() {
    static const std::vector<Workload>* w =
        new std::vector<Workload>(all_serial_workloads());
    return *w;
  }
};

TEST_P(WorkloadSweep, OriginalRunsAndSelfVerifies) {
  Prepared p = prepare(all()[static_cast<std::size_t>(GetParam())]);
  vm::Machine m(p.image);
  const vm::RunResult r = m.run();
  ASSERT_TRUE(r.ok()) << p.w.name << ": " << r.trap_message;
  EXPECT_FALSE(m.output_f64().empty()) << p.w.name;
  auto verifier = make_verifier(p.w, p.image);
  EXPECT_TRUE(verifier->verify(m.output_f64()))
      << p.w.name << " fails its own verification";
}

TEST_P(WorkloadSweep, AllDoubleInstrumentationIsBitIdentical) {
  Prepared p = prepare(all()[static_cast<std::size_t>(GetParam())]);
  vm::Machine m(p.image);
  ASSERT_TRUE(m.run().ok());

  const program::Image patched =
      instrument::instrument_image(p.image, p.index, {});
  vm::Machine mi(patched);
  const vm::RunResult r = mi.run();
  ASSERT_TRUE(r.ok()) << p.w.name << ": " << r.trap_message;
  ASSERT_EQ(mi.output_f64().size(), m.output_f64().size()) << p.w.name;
  for (std::size_t i = 0; i < m.output_f64().size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(mi.output_f64()[i]),
              std::bit_cast<std::uint64_t>(m.output_f64()[i]))
        << p.w.name << " output " << i;
  }
  // Instrumentation costs instructions (the Figure 8/9 overhead).
  EXPECT_GT(mi.instructions_retired(), m.instructions_retired());
}

TEST_P(WorkloadSweep, InstrumentedAllSingleMatchesManualConversion) {
  // Section 3.1: "The final results were identical, bit-for-bit."
  Prepared p = prepare(all()[static_cast<std::size_t>(GetParam())]);
  const program::Image manual = build_image(p.w, lang::Mode::kSingle);
  vm::Machine mm(manual);
  const vm::RunResult rm = mm.run();
  ASSERT_TRUE(rm.ok()) << p.w.name << ": " << rm.trap_message;

  const program::Image patched =
      instrument::instrument_image(p.image, p.index, all_single(p.index));
  vm::Machine mi(patched);
  const vm::RunResult ri = mi.run();
  ASSERT_TRUE(ri.ok()) << p.w.name << ": " << ri.trap_message;

  ASSERT_EQ(mi.output_f64().size(), mm.output_f64().size()) << p.w.name;
  for (std::size_t i = 0; i < mm.output_f64().size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(mi.output_f64()[i]),
              std::bit_cast<std::uint64_t>(mm.output_f64()[i]))
        << p.w.name << " output " << i;
  }
}

TEST_P(WorkloadSweep, HasRealisticStructure) {
  Prepared p = prepare(all()[static_cast<std::size_t>(GetParam())]);
  EXPECT_GE(p.index.modules().size(), 2u) << p.w.name;
  EXPECT_GE(p.index.funcs().size(), 2u) << p.w.name;
  EXPECT_GE(p.index.candidates().size(), 10u) << p.w.name;
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadSweep, ::testing::Range(0, 16));

// ---------------------------------------------------------------------------
// Designed precision characteristics.

TEST(EpKernel, RngIsPrecisionSensitiveButTalliesAreNot) {
  Prepared p = prepare(make_ep('S'));
  auto verifier = make_verifier(p.w, p.image);

  // Whole ep_rand module single: the 46-bit stream collapses.
  config::PrecisionConfig rng_single;
  rng_single.set_module(p.index.module_named("ep_rand"),
                        config::Precision::kSingle);
  const verify::EvalResult r1 =
      verify::evaluate_config(p.image, p.index, rng_single, *verifier);
  EXPECT_FALSE(r1.passed);

  // Whole ep_main module single: accumulation arithmetic tolerates it.
  config::PrecisionConfig main_single;
  main_single.set_module(p.index.module_named("ep_main"),
                         config::Precision::kSingle);
  const verify::EvalResult r2 =
      verify::evaluate_config(p.image, p.index, main_single, *verifier);
  EXPECT_TRUE(r2.passed) << r2.failure;
}

TEST(AmgKernel, EntirelyReplaceableWithMoreCycles) {
  Prepared p = prepare(make_amg());
  auto verifier = make_verifier(p.w, p.image);

  vm::Machine m(p.image);
  ASSERT_TRUE(m.run().ok());
  const std::int64_t cycles_double = m.output_i64().at(0);

  const program::Image patched =
      instrument::instrument_image(p.image, p.index, all_single(p.index));
  vm::Machine ms(patched);
  ASSERT_TRUE(ms.run().ok());
  EXPECT_TRUE(verifier->verify(ms.output_f64()));
  // The adaptive loop absorbs the precision loss by iterating more (or at
  // least as much).
  EXPECT_GE(ms.output_i64().at(0), cycles_double);
}

TEST(SuperLuKernel, ReportedErrorTracksPrecision) {
  Prepared p = prepare(make_superlu(1.0e-3));

  vm::Machine m(p.image);
  ASSERT_TRUE(m.run().ok());
  const double err_double = m.output_f64().at(0);
  EXPECT_LT(err_double, 1e-10);

  const program::Image patched =
      instrument::instrument_image(p.image, p.index, all_single(p.index));
  vm::Machine ms(patched);
  ASSERT_TRUE(ms.run().ok());
  const double err_single = ms.output_f64().at(0);
  // Paper: 2.16e-12 (double) vs 5.86e-04 (single).
  EXPECT_GT(err_single, 1e-5);
  EXPECT_LT(err_single, 1e-2);
}

TEST(MpiWorkloads, RunOnMultipleRanks) {
  for (int ranks : {2, 4}) {
    for (auto make : {make_ep, make_cg, make_ft, make_mg}) {
      Workload w = make('S', ranks);
      const program::Image img = build_image(w);
      vm::MiniMpi mpi(ranks);
      std::vector<std::unique_ptr<vm::Machine>> machines;
      for (int r = 0; r < ranks; ++r) {
        vm::Machine::Options o;
        o.mpi = &mpi;
        o.rank = r;
        machines.push_back(std::make_unique<vm::Machine>(img, o));
      }
      std::vector<std::thread> threads;
      std::vector<vm::RunResult> results(static_cast<std::size_t>(ranks));
      for (int r = 0; r < ranks; ++r) {
        threads.emplace_back([&, r] {
          results[static_cast<std::size_t>(r)] =
              machines[static_cast<std::size_t>(r)]->run();
        });
      }
      for (auto& t : threads) t.join();
      for (int r = 0; r < ranks; ++r) {
        EXPECT_TRUE(results[static_cast<std::size_t>(r)].ok())
            << w.name << " rank " << r << ": "
            << results[static_cast<std::size_t>(r)].trap_message;
      }
      // All ranks agree on the reduced outputs.
      for (int r = 1; r < ranks; ++r) {
        EXPECT_EQ(machines[0]->output_f64(),
                  machines[static_cast<std::size_t>(r)]->output_f64())
            << w.name;
      }
    }
  }
}

TEST(MpiEp, MatchesSerialResults) {
  // EP's rank decomposition partitions the identical RNG stream, so the
  // reduced tallies must match the serial run exactly (the sums only to
  // rounding, since addition order changes).
  Workload serial = make_ep('S');
  const program::Image simg = build_image(serial);
  vm::Machine sm(simg);
  ASSERT_TRUE(sm.run().ok());

  const int ranks = 4;
  Workload par = make_ep('S', ranks);
  const program::Image pimg = build_image(par);
  vm::MiniMpi mpi(ranks);
  std::vector<std::unique_ptr<vm::Machine>> machines;
  std::vector<std::thread> threads;
  for (int r = 0; r < ranks; ++r) {
    vm::Machine::Options o;
    o.mpi = &mpi;
    o.rank = r;
    machines.push_back(std::make_unique<vm::Machine>(pimg, o));
  }
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      ASSERT_TRUE(machines[static_cast<std::size_t>(r)]->run().ok());
    });
  }
  for (auto& t : threads) t.join();

  const auto& pout = machines[0]->output_f64();
  const auto& sout = sm.output_f64();
  ASSERT_EQ(pout.size(), sout.size());
  // Output 2 is the accepted count; 3.. are annulus tallies: exact.
  for (std::size_t i = 2; i < sout.size(); ++i) {
    EXPECT_EQ(pout[i], sout[i]) << i;
  }
  // Sums agree to reduction-order rounding.
  EXPECT_NEAR(pout[0], sout[0], 1e-9);
  EXPECT_NEAR(pout[1], sout[1], 1e-9);
}

}  // namespace
}  // namespace fpmix::kernels
