#include "program/image.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::program {

std::uint64_t Image::origin_of(std::uint64_t addr) const {
  auto it = std::lower_bound(
      origins.begin(), origins.end(), addr,
      [](const OriginEntry& e, std::uint64_t a) { return e.addr < a; });
  if (it != origins.end() && it->addr == addr) return it->origin;
  return addr;
}

const Symbol* Image::find_function_at(std::uint64_t addr) const {
  for (const Symbol& s : symbols) {
    if (addr >= s.addr && addr < s.addr + s.size) return &s;
  }
  return nullptr;
}

const Symbol* Image::find_function(std::string_view name) const {
  for (const Symbol& s : symbols) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::span<const std::uint8_t> Image::function_bytes(const Symbol& sym) const {
  FPMIX_CHECK(sym.addr >= code_base);
  FPMIX_CHECK(sym.addr + sym.size <= code_end());
  return std::span<const std::uint8_t>(code).subspan(sym.addr - code_base,
                                                     sym.size);
}

void Image::validate() const {
  if (symbols.empty()) throw ProgramError("image has no symbols");
  std::uint64_t prev_end = code_base;
  for (const Symbol& s : symbols) {
    if (s.addr != prev_end) {
      throw ProgramError(strformat(
          "symbol %s at 0x%llx does not abut previous symbol end 0x%llx",
          s.name.c_str(), static_cast<unsigned long long>(s.addr),
          static_cast<unsigned long long>(prev_end)));
    }
    prev_end = s.addr + s.size;
  }
  if (prev_end != code_end()) {
    throw ProgramError("symbols do not cover the code segment");
  }
  if (find_function_at(entry) == nullptr) {
    throw ProgramError("entry point is not inside any function");
  }
  if (data_base < code_end()) {
    throw ProgramError("data segment overlaps code segment");
  }
  if (bss_base != 0 && data_base + data.size() > bss_base) {
    throw ProgramError("data segment overlaps bss segment");
  }
  if (effective_bss_base() + bss_size > memory_size) {
    throw ProgramError("data/bss segments do not fit in VM memory");
  }
}

}  // namespace fpmix::program
