// SP: scalar pentadiagonal solver analogue.
//
// Solves batches of independent pentadiagonal systems by two-pass Gaussian
// elimination (forward elimination of both subdiagonals, then back
// substitution through both superdiagonals), the scalar core of NAS SP's
// x/y/z line solves. Band data is baked and diagonally dominant.
#include "kernels/workload.hpp"

#include "lang/builder.hpp"
#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace fpmix::kernels {

using lang::Builder;
using lang::Expr;

namespace {

struct SpParams {
  std::size_t systems;
  std::size_t n;  // unknowns per system
};

SpParams sp_params(char cls) {
  switch (cls) {
    case 'S': return {6, 40};
    case 'W': return {10, 80};
    case 'A': return {16, 160};
    case 'C': return {24, 320};
    default: throw Error(strformat("sp: unknown class %c", cls));
  }
}

}  // namespace

Workload make_sp(char cls) {
  const SpParams p = sp_params(cls);
  const auto sys = static_cast<std::int64_t>(p.systems);
  const auto n = static_cast<std::int64_t>(p.n);
  const std::size_t total = p.systems * p.n;

  // Bands: a (sub-2), bq (sub-1), c (diag), dq (sup-1), e (sup-2), rhs.
  std::vector<double> ba(total), bb(total), bc(total), bd(total), be(total),
      brhs(total);
  {
    SplitMix64 rng(0x5D + static_cast<std::uint64_t>(cls));
    for (std::size_t t = 0; t < total; ++t) {
      ba[t] = rng.next_double(-0.2, 0.2);
      bb[t] = rng.next_double(-0.5, 0.5);
      bd[t] = rng.next_double(-0.5, 0.5);
      be[t] = rng.next_double(-0.2, 0.2);
      bc[t] = std::fabs(ba[t]) + std::fabs(bb[t]) + std::fabs(bd[t]) +
              std::fabs(be[t]) + 0.12 + rng.next_double(0.0, 0.2);
      brhs[t] = rng.next_double(-1.0, 1.0);
    }
  }

  Builder b;
  auto A2 = b.const_array_f64("band_a", ba);
  auto A1 = b.const_array_f64("band_b", bb);
  auto D0 = b.const_array_f64("band_c", bc);
  auto U1 = b.const_array_f64("band_d", bd);
  auto U2 = b.const_array_f64("band_e", be);
  auto RHS = b.const_array_f64("band_rhs", brhs);

  // Working copies of one line (all five bands plus rhs).
  auto wb2 = b.array_f64("wb2", p.n);
  auto wb1 = b.array_f64("wb1", p.n);
  auto wc = b.array_f64("wc", p.n);
  auto wdg = b.array_f64("wdg", p.n);
  auto we = b.array_f64("we", p.n);
  auto wr = b.array_f64("wr", p.n);
  auto xs = b.array_f64("xs", p.n);

  auto line = b.var_i64("line");

  // --- module sp_solve ----------------------------------------------------------
  b.begin_func("load_line", "sp_solve");
  {
    auto k = b.var_i64("ld_k");
    b.for_(k, b.ci(0), b.ci(n), [&] {
      auto off = Expr(line) * b.ci(n) + Expr(k);
      b.store(wb2, Expr(k), A2[off]);
      b.store(wb1, Expr(k), A1[off]);
      b.store(wc, Expr(k), D0[off]);
      b.store(wdg, Expr(k), U1[off]);
      b.store(we, Expr(k), U2[off]);
      b.store(wr, Expr(k), RHS[off]);
    });
  }
  b.end_func();

  b.begin_func("eliminate", "sp_solve");
  {
    auto k = b.var_i64("el_k");
    auto fac = b.var_f64("el_fac");
    // Eliminate sub-1 of row k+1 and sub-2 of row k+2 against row k.
    b.for_(k, b.ci(0), b.ci(n) - b.ci(1), [&] {
      b.set(fac, wb1[Expr(k) + b.ci(1)] / wc[Expr(k)]);
      b.store(wc, Expr(k) + b.ci(1),
              wc[Expr(k) + b.ci(1)] - Expr(fac) * wdg[Expr(k)]);
      b.store(wdg, Expr(k) + b.ci(1),
              wdg[Expr(k) + b.ci(1)] - Expr(fac) * we[Expr(k)]);
      b.store(wr, Expr(k) + b.ci(1),
              wr[Expr(k) + b.ci(1)] - Expr(fac) * wr[Expr(k)]);
      b.if_(Expr(k) + b.ci(2) < b.ci(n), [&] {
        b.set(fac, wb2[Expr(k) + b.ci(2)] / wc[Expr(k)]);
        b.store(wb1, Expr(k) + b.ci(2),
                wb1[Expr(k) + b.ci(2)] - Expr(fac) * wdg[Expr(k)]);
        b.store(wc, Expr(k) + b.ci(2),
                wc[Expr(k) + b.ci(2)] - Expr(fac) * we[Expr(k)]);
        b.store(wr, Expr(k) + b.ci(2),
                wr[Expr(k) + b.ci(2)] - Expr(fac) * wr[Expr(k)]);
      });
    });
  }
  b.end_func();

  b.begin_func("backsub", "sp_solve");
  {
    auto k = b.var_i64("bs_k");
    b.store(xs, b.ci(n) - b.ci(1),
            wr[b.ci(n) - b.ci(1)] / wc[b.ci(n) - b.ci(1)]);
    b.store(xs, b.ci(n) - b.ci(2),
            (wr[b.ci(n) - b.ci(2)] -
             wdg[b.ci(n) - b.ci(2)] * xs[b.ci(n) - b.ci(1)]) /
                wc[b.ci(n) - b.ci(2)]);
    b.for_(k, b.ci(n) - b.ci(3), b.ci(-1), [&] {
      b.store(xs, Expr(k),
              (wr[Expr(k)] - wdg[Expr(k)] * xs[Expr(k) + b.ci(1)] -
               we[Expr(k)] * xs[Expr(k) + b.ci(2)]) /
                  wc[Expr(k)]);
    }, /*step=*/-1);
  }
  b.end_func();

  // --- module sp_main --------------------------------------------------------------
  b.begin_func("main", "sp_main");
  {
    auto k = b.var_i64("mn_k");
    auto csum = b.var_f64("mn_csum");
    auto lsum = b.var_f64("mn_lsum");
    b.set(csum, b.cf(0.0));
    b.for_(line, b.ci(0), b.ci(sys), [&] {
      b.call("load_line");
      b.call("eliminate");
      b.call("backsub");
      b.set(lsum, b.cf(0.0));
      b.for_(k, b.ci(0), b.ci(n),
             [&] { b.set(lsum, Expr(lsum) + xs[Expr(k)] * xs[Expr(k)]); });
      b.set(csum, Expr(csum) + sqrt_(lsum));
      b.output(lsum);  // per-line report (loose)
    });
    b.output(csum);  // figure of merit (tight)
  }
  b.end_func();

  Workload w;
  w.name = strformat("sp.%c", cls);
  w.model = b.take_model();
  w.rel_tol = 5e-9;
  for (std::size_t k = 0; k < p.systems; ++k) {
    w.output_tols.push_back({k, 1e-3, 1e-9});
  }
  return w;
}

}  // namespace fpmix::kernels
