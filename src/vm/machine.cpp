#include "vm/machine.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "arch/disasm.hpp"
#include "arch/encode.hpp"
#include "arch/intrinsics.hpp"
#include "arch/tag.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::vm {

using arch::Instr;
using arch::Opcode;
using arch::Operand;
using arch::OperandKind;

namespace in = arch::intrinsics;

namespace {

double f64_of(std::uint64_t bits) { return std::bit_cast<double>(bits); }
std::uint64_t bits_of(double v) { return std::bit_cast<std::uint64_t>(v); }
float f32_of(std::uint32_t bits) { return std::bit_cast<float>(bits); }
std::uint32_t bits_of(float v) { return std::bit_cast<std::uint32_t>(v); }

/// Replaces the low 32 bits of `slot`, preserving the high 32.
std::uint64_t with_low32(std::uint64_t slot, std::uint32_t low) {
  return (slot & 0xFFFFFFFF00000000ull) | low;
}

}  // namespace

Machine::Machine(const program::Image& image, Options options)
    : image_(image), options_(options) {
  image_.validate();
  code_ = arch::decode_all(image_.code, image_.code_base);
  if (code_.empty()) throw VmError("image has no code");
  index_of_addr_.reserve(code_.size() * 2);
  for (std::size_t i = 0; i < code_.size(); ++i) {
    index_of_addr_[code_[i].addr] = static_cast<std::uint32_t>(i);
  }
  // Resolve branch/call targets to instruction indices once.
  for (Instr& ins : code_) {
    const auto& info = arch::opcode_info(ins.op);
    if (info.is_branch || info.is_call) {
      const auto target = static_cast<std::uint64_t>(ins.src.imm);
      auto it = index_of_addr_.find(target);
      if (it == index_of_addr_.end()) {
        throw VmError(strformat(
            "control transfer at 0x%llx targets 0x%llx, which is not an "
            "instruction boundary",
            static_cast<unsigned long long>(ins.addr),
            static_cast<unsigned long long>(target)));
      }
      ins.src.imm = it->second;
    }
  }
  memory_.assign(image_.memory_size, 0);
  if (!image_.data.empty()) {
    FPMIX_CHECK(image_.data_base + image_.data.size() <= memory_.size());
    std::memcpy(memory_.data() + image_.data_base, image_.data.data(),
                image_.data.size());
  }
  if (options_.profile) counts_.assign(code_.size(), 0);
  if (options_.mpi != nullptr) {
    FPMIX_CHECK(options_.rank >= 0 && options_.rank < options_.mpi->size());
  }
}

void Machine::trap(std::string message) const { throw Trap{std::move(message)}; }

std::uint64_t Machine::effective_address(const arch::MemRef& m) const {
  std::uint64_t a = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(m.disp));
  if (m.base != arch::kNoReg) a += gpr_[m.base];
  if (m.index != arch::kNoReg) a += gpr_[m.index] * m.scale;
  return a;
}

std::uint64_t Machine::load(std::uint64_t addr, unsigned bytes) const {
  if (addr + bytes > memory_.size() || addr + bytes < addr) {
    trap(strformat("memory read of %u bytes at 0x%llx out of bounds", bytes,
                   static_cast<unsigned long long>(addr)));
  }
  std::uint64_t v = 0;
  std::memcpy(&v, memory_.data() + addr, bytes);
  return v;
}

void Machine::store(std::uint64_t addr, std::uint64_t value, unsigned bytes) {
  if (addr + bytes > memory_.size() || addr + bytes < addr) {
    trap(strformat("memory write of %u bytes at 0x%llx out of bounds", bytes,
                   static_cast<unsigned long long>(addr)));
  }
  std::memcpy(memory_.data() + addr, &value, bytes);
}

std::uint64_t Machine::int_value(const Operand& op) const {
  switch (op.kind) {
    case OperandKind::kGpr: return gpr_[op.reg];
    case OperandKind::kImm: return static_cast<std::uint64_t>(op.imm);
    default:
      trap("integer operand is neither register nor immediate");
  }
}

void Machine::check_not_tagged(const Instr& ins, std::uint64_t bits) const {
  if (options_.tag_trap && arch::is_tagged(bits)) {
    trap(strformat(
        "replaced-double sentinel consumed by '%s' at 0x%llx (origin 0x%llx):"
        " a narrowed value escaped the instrumentation",
        arch::instr_to_string(ins).c_str(),
        static_cast<unsigned long long>(ins.addr),
        static_cast<unsigned long long>(image_.origin_of(ins.addr))));
  }
}

std::uint64_t Machine::read_f64_bits(const Instr& ins, const Operand& op,
                                     unsigned lane) const {
  std::uint64_t bits;
  if (op.is_xmm()) {
    bits = (lane == 0) ? xmm_[op.reg].lo : xmm_[op.reg].hi;
  } else if (op.is_mem()) {
    bits = load(effective_address(op.mem) + 8ull * lane, 8);
  } else {
    trap("f64 operand is neither xmm nor memory");
  }
  check_not_tagged(ins, bits);
  return bits;
}

void Machine::push64(std::uint64_t v) {
  gpr_[arch::kSpReg] -= 8;
  store(gpr_[arch::kSpReg], v, 8);
}

std::uint64_t Machine::pop64() {
  const std::uint64_t v = load(gpr_[arch::kSpReg], 8);
  gpr_[arch::kSpReg] += 8;
  return v;
}

RunResult Machine::run() {
  FPMIX_CHECK(!ran_);
  ran_ = true;

  // Initial state: stack at the top of memory with a null return address; a
  // `ret` from the entry function stops the machine like `halt` does.
  gpr_[arch::kSpReg] = memory_.size();
  push64(0);
  auto entry_it = index_of_addr_.find(image_.entry);
  FPMIX_CHECK(entry_it != index_of_addr_.end());
  pc_ = entry_it->second;

  RunResult result;
  try {
    while (!stopped_) {
      if (retired_ >= options_.max_instructions) {
        result.status = RunResult::Status::kOutOfBudget;
        result.trap_message = "instruction budget exhausted";
        result.instructions_retired = retired_;
        return result;
      }
      const Instr& ins = code_[pc_];
      if (options_.profile) ++counts_[pc_];
      ++retired_;
      step(ins);
    }
    result.status = RunResult::Status::kHalted;
  } catch (const Trap& t) {
    result.status = RunResult::Status::kTrapped;
    result.trap_message = t.message;
  }
  result.instructions_retired = retired_;
  return result;
}

void Machine::step(const Instr& ins) {
  // Most instructions fall through; control flow overrides `next`.
  std::size_t next = pc_ + 1;

  const auto take_branch_if = [&](bool cond) {
    if (cond) next = static_cast<std::size_t>(ins.src.imm);
  };

  // Scalar f64 binary: dst.lane0 = f(dst.lane0, src.lane0/mem).
  const auto binsd = [&](auto f) {
    const double a = f64_of(read_f64_bits(ins, ins.dst, 0));
    const double b = f64_of(read_f64_bits(ins, ins.src, 0));
    xmm_[ins.dst.reg].lo = bits_of(double(f(a, b)));
  };
  // Scalar f32 binary on low 32 bits.
  const auto binss = [&](auto f) {
    const float a = f32_of(static_cast<std::uint32_t>(xmm_[ins.dst.reg].lo));
    std::uint32_t src_bits;
    if (ins.src.is_xmm()) {
      src_bits = static_cast<std::uint32_t>(xmm_[ins.src.reg].lo);
    } else {
      src_bits =
          static_cast<std::uint32_t>(load(effective_address(ins.src.mem), 4));
    }
    const float b = f32_of(src_bits);
    xmm_[ins.dst.reg].lo =
        with_low32(xmm_[ins.dst.reg].lo, bits_of(float(f(a, b))));
  };
  // Packed f64: both lanes.
  const auto binpd = [&](auto f) {
    const double a0 = f64_of(read_f64_bits(ins, ins.dst, 0));
    const double a1 = f64_of(read_f64_bits(ins, ins.dst, 1));
    const double b0 = f64_of(read_f64_bits(ins, ins.src, 0));
    const double b1 = f64_of(read_f64_bits(ins, ins.src, 1));
    xmm_[ins.dst.reg].lo = bits_of(double(f(a0, b0)));
    xmm_[ins.dst.reg].hi = bits_of(double(f(a1, b1)));
  };
  // Packed f32: four lanes (two per 64-bit half).
  const auto binps = [&](auto f) {
    std::uint64_t slo, shi;
    if (ins.src.is_xmm()) {
      slo = xmm_[ins.src.reg].lo;
      shi = xmm_[ins.src.reg].hi;
    } else {
      const std::uint64_t ea = effective_address(ins.src.mem);
      slo = load(ea, 8);
      shi = load(ea + 8, 8);
    }
    const auto apply_half = [&](std::uint64_t d, std::uint64_t s) {
      const float d0 = f32_of(static_cast<std::uint32_t>(d));
      const float d1 = f32_of(static_cast<std::uint32_t>(d >> 32));
      const float s0 = f32_of(static_cast<std::uint32_t>(s));
      const float s1 = f32_of(static_cast<std::uint32_t>(s >> 32));
      const std::uint64_t r0 = bits_of(float(f(d0, s0)));
      const std::uint64_t r1 = bits_of(float(f(d1, s1)));
      return r0 | (r1 << 32);
    };
    xmm_[ins.dst.reg].lo = apply_half(xmm_[ins.dst.reg].lo, slo);
    xmm_[ins.dst.reg].hi = apply_half(xmm_[ins.dst.reg].hi, shi);
  };
  // Bitwise 128-bit.
  const auto bitop = [&](auto f) {
    std::uint64_t slo, shi;
    if (ins.src.is_xmm()) {
      slo = xmm_[ins.src.reg].lo;
      shi = xmm_[ins.src.reg].hi;
    } else {
      const std::uint64_t ea = effective_address(ins.src.mem);
      slo = load(ea, 8);
      shi = load(ea + 8, 8);
    }
    xmm_[ins.dst.reg].lo = f(xmm_[ins.dst.reg].lo, slo);
    xmm_[ins.dst.reg].hi = f(xmm_[ins.dst.reg].hi, shi);
  };
  // Integer binary on gpr dst.
  const auto binint = [&](auto f) {
    gpr_[ins.dst.reg] = f(gpr_[ins.dst.reg], int_value(ins.src));
  };

  switch (ins.op) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      stopped_ = true;
      break;

    case Opcode::kJmp: take_branch_if(true); break;
    case Opcode::kJe: take_branch_if(flags_.eq); break;
    case Opcode::kJne: take_branch_if(!flags_.eq); break;
    case Opcode::kJl: take_branch_if(flags_.lt); break;
    case Opcode::kJle: take_branch_if(flags_.lt || flags_.eq); break;
    case Opcode::kJg: take_branch_if(!flags_.lt && !flags_.eq); break;
    case Opcode::kJge: take_branch_if(!flags_.lt); break;
    case Opcode::kJb: take_branch_if(flags_.ltu); break;
    case Opcode::kJbe: take_branch_if(flags_.ltu || flags_.eq); break;
    case Opcode::kJa: take_branch_if(!flags_.ltu && !flags_.eq); break;
    case Opcode::kJae: take_branch_if(!flags_.ltu); break;

    case Opcode::kCall: {
      const Instr& self = ins;
      push64(self.addr + self.size);
      next = static_cast<std::size_t>(ins.src.imm);
      break;
    }
    case Opcode::kRet: {
      const std::uint64_t ra = pop64();
      if (ra == 0) {
        stopped_ = true;
        break;
      }
      auto it = index_of_addr_.find(ra);
      if (it == index_of_addr_.end()) {
        trap(strformat("ret to 0x%llx, not an instruction boundary",
                       static_cast<unsigned long long>(ra)));
      }
      next = it->second;
      break;
    }

    case Opcode::kMov:
      gpr_[ins.dst.reg] = int_value(ins.src);
      break;
    case Opcode::kLoad:
      gpr_[ins.dst.reg] = load(effective_address(ins.src.mem), 8);
      break;
    case Opcode::kStore:
      store(effective_address(ins.dst.mem), gpr_[ins.src.reg], 8);
      break;
    case Opcode::kLea:
      gpr_[ins.dst.reg] = effective_address(ins.src.mem);
      break;

    case Opcode::kAdd: binint([](std::uint64_t a, std::uint64_t b) { return a + b; }); break;
    case Opcode::kSub: binint([](std::uint64_t a, std::uint64_t b) { return a - b; }); break;
    case Opcode::kImul: binint([](std::uint64_t a, std::uint64_t b) { return a * b; }); break;
    case Opcode::kIdiv: {
      const auto a = static_cast<std::int64_t>(gpr_[ins.dst.reg]);
      const auto b = static_cast<std::int64_t>(int_value(ins.src));
      if (b == 0) trap("integer division by zero");
      if (a == INT64_MIN && b == -1) trap("integer division overflow");
      gpr_[ins.dst.reg] = static_cast<std::uint64_t>(a / b);
      break;
    }
    case Opcode::kIrem: {
      const auto a = static_cast<std::int64_t>(gpr_[ins.dst.reg]);
      const auto b = static_cast<std::int64_t>(int_value(ins.src));
      if (b == 0) trap("integer remainder by zero");
      if (a == INT64_MIN && b == -1) trap("integer remainder overflow");
      gpr_[ins.dst.reg] = static_cast<std::uint64_t>(a % b);
      break;
    }
    case Opcode::kAnd: binint([](std::uint64_t a, std::uint64_t b) { return a & b; }); break;
    case Opcode::kOr: binint([](std::uint64_t a, std::uint64_t b) { return a | b; }); break;
    case Opcode::kXor: binint([](std::uint64_t a, std::uint64_t b) { return a ^ b; }); break;
    case Opcode::kShl: binint([](std::uint64_t a, std::uint64_t b) { return a << (b & 63); }); break;
    case Opcode::kShr: binint([](std::uint64_t a, std::uint64_t b) { return a >> (b & 63); }); break;
    case Opcode::kSar:
      binint([](std::uint64_t a, std::uint64_t b) {
        return static_cast<std::uint64_t>(static_cast<std::int64_t>(a) >>
                                          (b & 63));
      });
      break;
    case Opcode::kCmp: {
      const std::uint64_t a = gpr_[ins.dst.reg];
      const std::uint64_t b = int_value(ins.src);
      flags_.eq = a == b;
      flags_.lt = static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
      flags_.ltu = a < b;
      break;
    }
    case Opcode::kTest: {
      const std::uint64_t v = gpr_[ins.dst.reg] & int_value(ins.src);
      flags_.eq = v == 0;
      flags_.lt = static_cast<std::int64_t>(v) < 0;
      flags_.ltu = false;
      break;
    }
    case Opcode::kPush: push64(gpr_[ins.dst.reg]); break;
    case Opcode::kPop: gpr_[ins.dst.reg] = pop64(); break;

    case Opcode::kMovqXR:
      // Deviation from x86: preserves the upper lane, so scalar snippet
      // write-backs cannot clobber live packed data (DESIGN.md section 6).
      xmm_[ins.dst.reg].lo = gpr_[ins.src.reg];
      break;
    case Opcode::kMovqRX:
      gpr_[ins.dst.reg] = xmm_[ins.src.reg].lo;
      break;
    case Opcode::kMovsdXX:
      xmm_[ins.dst.reg].lo = xmm_[ins.src.reg].lo;
      break;
    case Opcode::kMovsdXM:
      xmm_[ins.dst.reg].lo = load(effective_address(ins.src.mem), 8);
      xmm_[ins.dst.reg].hi = 0;
      break;
    case Opcode::kMovsdMX:
      store(effective_address(ins.dst.mem), xmm_[ins.src.reg].lo, 8);
      break;
    case Opcode::kMovssXM:
      xmm_[ins.dst.reg].lo = load(effective_address(ins.src.mem), 4);
      xmm_[ins.dst.reg].hi = 0;
      break;
    case Opcode::kMovssMX:
      store(effective_address(ins.dst.mem), xmm_[ins.src.reg].lo & 0xFFFFFFFFu,
            4);
      break;
    case Opcode::kMovapdXX:
      xmm_[ins.dst.reg] = xmm_[ins.src.reg];
      break;
    case Opcode::kMovapdXM: {
      const std::uint64_t ea = effective_address(ins.src.mem);
      xmm_[ins.dst.reg].lo = load(ea, 8);
      xmm_[ins.dst.reg].hi = load(ea + 8, 8);
      break;
    }
    case Opcode::kMovapdMX: {
      const std::uint64_t ea = effective_address(ins.dst.mem);
      store(ea, xmm_[ins.src.reg].lo, 8);
      store(ea + 8, xmm_[ins.src.reg].hi, 8);
      break;
    }
    case Opcode::kPushX:
      gpr_[arch::kSpReg] -= 16;
      store(gpr_[arch::kSpReg], xmm_[ins.dst.reg].lo, 8);
      store(gpr_[arch::kSpReg] + 8, xmm_[ins.dst.reg].hi, 8);
      break;
    case Opcode::kPopX:
      xmm_[ins.dst.reg].lo = load(gpr_[arch::kSpReg], 8);
      xmm_[ins.dst.reg].hi = load(gpr_[arch::kSpReg] + 8, 8);
      gpr_[arch::kSpReg] += 16;
      break;

    case Opcode::kAddsd: binsd([](double a, double b) { return a + b; }); break;
    case Opcode::kSubsd: binsd([](double a, double b) { return a - b; }); break;
    case Opcode::kMulsd: binsd([](double a, double b) { return a * b; }); break;
    case Opcode::kDivsd: binsd([](double a, double b) { return a / b; }); break;
    case Opcode::kSqrtsd: {
      const double b = f64_of(read_f64_bits(ins, ins.src, 0));
      xmm_[ins.dst.reg].lo = bits_of(std::sqrt(b));
      break;
    }
    case Opcode::kMinsd: binsd([](double a, double b) { return b < a ? b : a; }); break;
    case Opcode::kMaxsd: binsd([](double a, double b) { return a < b ? b : a; }); break;
    case Opcode::kUcomisd: {
      const double a = f64_of(read_f64_bits(ins, ins.dst, 0));
      const double b = f64_of(read_f64_bits(ins, ins.src, 0));
      flags_.eq = a == b;
      flags_.lt = flags_.ltu = a < b;
      break;
    }
    case Opcode::kCvtsd2ss: {
      const double b = f64_of(read_f64_bits(ins, ins.src, 0));
      xmm_[ins.dst.reg].lo = bits_of(static_cast<float>(b));
      break;
    }
    case Opcode::kCvtss2sd: {
      std::uint32_t src_bits;
      if (ins.src.is_xmm()) {
        src_bits = static_cast<std::uint32_t>(xmm_[ins.src.reg].lo);
      } else {
        src_bits = static_cast<std::uint32_t>(
            load(effective_address(ins.src.mem), 4));
      }
      xmm_[ins.dst.reg].lo = bits_of(static_cast<double>(f32_of(src_bits)));
      break;
    }
    case Opcode::kCvtsi2sd:
      xmm_[ins.dst.reg].lo = bits_of(
          static_cast<double>(static_cast<std::int64_t>(gpr_[ins.src.reg])));
      break;
    case Opcode::kCvttsd2si: {
      const double v = f64_of(read_f64_bits(ins, ins.src, 0));
      if (!(v > -9.2e18 && v < 9.2e18)) {
        trap("cvttsd2si operand out of int64 range");
      }
      gpr_[ins.dst.reg] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(v));
      break;
    }

    case Opcode::kAddss: binss([](float a, float b) { return a + b; }); break;
    case Opcode::kSubss: binss([](float a, float b) { return a - b; }); break;
    case Opcode::kMulss: binss([](float a, float b) { return a * b; }); break;
    case Opcode::kDivss: binss([](float a, float b) { return a / b; }); break;
    case Opcode::kSqrtss: {
      std::uint32_t src_bits;
      if (ins.src.is_xmm()) {
        src_bits = static_cast<std::uint32_t>(xmm_[ins.src.reg].lo);
      } else {
        src_bits = static_cast<std::uint32_t>(
            load(effective_address(ins.src.mem), 4));
      }
      xmm_[ins.dst.reg].lo = with_low32(
          xmm_[ins.dst.reg].lo, bits_of(std::sqrt(f32_of(src_bits))));
      break;
    }
    case Opcode::kMinss: binss([](float a, float b) { return b < a ? b : a; }); break;
    case Opcode::kMaxss: binss([](float a, float b) { return a < b ? b : a; }); break;
    case Opcode::kUcomiss: {
      const float a = f32_of(static_cast<std::uint32_t>(xmm_[ins.dst.reg].lo));
      std::uint32_t src_bits;
      if (ins.src.is_xmm()) {
        src_bits = static_cast<std::uint32_t>(xmm_[ins.src.reg].lo);
      } else {
        src_bits = static_cast<std::uint32_t>(
            load(effective_address(ins.src.mem), 4));
      }
      const float b = f32_of(src_bits);
      flags_.eq = a == b;
      flags_.lt = flags_.ltu = a < b;
      break;
    }
    case Opcode::kCvtsi2ss:
      xmm_[ins.dst.reg].lo = with_low32(
          xmm_[ins.dst.reg].lo,
          bits_of(static_cast<float>(
              static_cast<std::int64_t>(gpr_[ins.src.reg]))));
      break;
    case Opcode::kCvttss2si: {
      const float v = f32_of(static_cast<std::uint32_t>(xmm_[ins.src.reg].lo));
      if (!(v > -9.2e18f && v < 9.2e18f)) {
        trap("cvttss2si operand out of int64 range");
      }
      gpr_[ins.dst.reg] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(v));
      break;
    }

    case Opcode::kAddpd: binpd([](double a, double b) { return a + b; }); break;
    case Opcode::kSubpd: binpd([](double a, double b) { return a - b; }); break;
    case Opcode::kMulpd: binpd([](double a, double b) { return a * b; }); break;
    case Opcode::kDivpd: binpd([](double a, double b) { return a / b; }); break;
    case Opcode::kSqrtpd: {
      const double b0 = f64_of(read_f64_bits(ins, ins.src, 0));
      const double b1 = f64_of(read_f64_bits(ins, ins.src, 1));
      xmm_[ins.dst.reg].lo = bits_of(std::sqrt(b0));
      xmm_[ins.dst.reg].hi = bits_of(std::sqrt(b1));
      break;
    }
    case Opcode::kAddps: binps([](float a, float b) { return a + b; }); break;
    case Opcode::kSubps: binps([](float a, float b) { return a - b; }); break;
    case Opcode::kMulps: binps([](float a, float b) { return a * b; }); break;
    case Opcode::kDivps: binps([](float a, float b) { return a / b; }); break;
    case Opcode::kSqrtps: {
      std::uint64_t slo, shi;
      if (ins.src.is_xmm()) {
        slo = xmm_[ins.src.reg].lo;
        shi = xmm_[ins.src.reg].hi;
      } else {
        const std::uint64_t ea = effective_address(ins.src.mem);
        slo = load(ea, 8);
        shi = load(ea + 8, 8);
      }
      const auto sqrt_half = [](std::uint64_t s) {
        const std::uint64_t r0 =
            bits_of(std::sqrt(f32_of(static_cast<std::uint32_t>(s))));
        const std::uint64_t r1 =
            bits_of(std::sqrt(f32_of(static_cast<std::uint32_t>(s >> 32))));
        return r0 | (r1 << 32);
      };
      xmm_[ins.dst.reg].lo = sqrt_half(slo);
      xmm_[ins.dst.reg].hi = sqrt_half(shi);
      break;
    }

    case Opcode::kAndpd: bitop([](std::uint64_t a, std::uint64_t b) { return a & b; }); break;
    case Opcode::kOrpd: bitop([](std::uint64_t a, std::uint64_t b) { return a | b; }); break;
    case Opcode::kXorpd: bitop([](std::uint64_t a, std::uint64_t b) { return a ^ b; }); break;

    case Opcode::kIntrin:
      exec_intrinsic(ins);
      break;

    default:
      trap(strformat("unimplemented opcode %s", arch::opcode_name(ins.op)));
  }

  pc_ = next;
}

void Machine::exec_intrinsic(const Instr& ins) {
  const auto id = static_cast<in::Id>(ins.src.imm);
  if (id >= in::Id::kNumIntrinsics) trap("invalid intrinsic id");

  // f64 math helpers --------------------------------------------------------
  const auto arg_f64 = [&](int i) {
    const std::uint64_t bits = xmm_[i].lo;
    check_not_tagged(ins, bits);
    return f64_of(bits);
  };
  const auto ret_f64 = [&](double v) { xmm_[0].lo = bits_of(v); };
  // f32 twins: argument and result in the low 32 bits. Each computes the
  // double-precision function on the widened argument, rounded once -- so an
  // all-single instrumented run matches a manual single conversion
  // bit-for-bit (Section 3.1).
  const auto arg_f32 = [&](int i) {
    return static_cast<double>(
        f32_of(static_cast<std::uint32_t>(xmm_[i].lo)));
  };
  const auto ret_f32 = [&](double v) {
    xmm_[0].lo = with_low32(xmm_[0].lo, bits_of(static_cast<float>(v)));
  };

  switch (id) {
    case in::Id::kSin: ret_f64(std::sin(arg_f64(0))); break;
    case in::Id::kCos: ret_f64(std::cos(arg_f64(0))); break;
    case in::Id::kTan: ret_f64(std::tan(arg_f64(0))); break;
    case in::Id::kExp: ret_f64(std::exp(arg_f64(0))); break;
    case in::Id::kLog: ret_f64(std::log(arg_f64(0))); break;
    case in::Id::kPow: ret_f64(std::pow(arg_f64(0), arg_f64(1))); break;
    case in::Id::kFloor: ret_f64(std::floor(arg_f64(0))); break;
    case in::Id::kCeil: ret_f64(std::ceil(arg_f64(0))); break;
    case in::Id::kFabs: ret_f64(std::fabs(arg_f64(0))); break;

    case in::Id::kSinF32: ret_f32(std::sin(arg_f32(0))); break;
    case in::Id::kCosF32: ret_f32(std::cos(arg_f32(0))); break;
    case in::Id::kTanF32: ret_f32(std::tan(arg_f32(0))); break;
    case in::Id::kExpF32: ret_f32(std::exp(arg_f32(0))); break;
    case in::Id::kLogF32: ret_f32(std::log(arg_f32(0))); break;
    case in::Id::kPowF32: ret_f32(std::pow(arg_f32(0), arg_f32(1))); break;
    case in::Id::kFloorF32: ret_f32(std::floor(arg_f32(0))); break;
    case in::Id::kCeilF32: ret_f32(std::ceil(arg_f32(0))); break;
    case in::Id::kFabsF32: ret_f32(std::fabs(arg_f32(0))); break;

    case in::Id::kOutputF64: {
      const std::uint64_t bits = xmm_[0].lo;
      check_not_tagged(ins, bits);
      output_f64_.push_back(f64_of(bits));
      break;
    }
    case in::Id::kOutputI64:
      output_i64_.push_back(static_cast<std::int64_t>(gpr_[1]));
      break;

    case in::Id::kPrintF64: {
      const std::uint64_t bits = xmm_[0].lo;
      check_not_tagged(ins, bits);
      std::printf("%.17g\n", f64_of(bits));
      break;
    }
    case in::Id::kPrintI64:
      std::printf("%lld\n", static_cast<long long>(gpr_[1]));
      break;
    case in::Id::kPrintStr: {
      const std::uint64_t addr = gpr_[1];
      const std::uint64_t len = gpr_[2];
      if (addr + len > memory_.size()) trap("print_str out of bounds");
      std::fwrite(memory_.data() + addr, 1, len, stdout);
      break;
    }

    case in::Id::kMpiRank:
      gpr_[0] = static_cast<std::uint64_t>(options_.rank);
      break;
    case in::Id::kMpiSize:
      gpr_[0] = static_cast<std::uint64_t>(
          options_.mpi != nullptr ? options_.mpi->size() : 1);
      break;
    case in::Id::kMpiBarrier:
      if (options_.mpi != nullptr) options_.mpi->barrier();
      break;
    case in::Id::kMpiAllreduceSum: {
      const std::uint64_t bits = xmm_[0].lo;
      check_not_tagged(ins, bits);
      double v = f64_of(bits);
      if (options_.mpi != nullptr) v = options_.mpi->allreduce_sum(v);
      xmm_[0].lo = bits_of(v);
      break;
    }
    case in::Id::kMpiAllreduceMax: {
      const std::uint64_t bits = xmm_[0].lo;
      check_not_tagged(ins, bits);
      double v = f64_of(bits);
      if (options_.mpi != nullptr) v = options_.mpi->allreduce_max(v);
      xmm_[0].lo = bits_of(v);
      break;
    }
    case in::Id::kMpiAllreduceVec: {
      const std::uint64_t addr = gpr_[1];
      const std::uint64_t count = gpr_[2];
      if (addr % 8 != 0) trap("mpi_allreduce_vec: unaligned buffer");
      if (addr + count * 8 > memory_.size()) {
        trap("mpi_allreduce_vec out of bounds");
      }
      auto* data = reinterpret_cast<double*>(memory_.data() + addr);
      if (options_.tag_trap) {
        for (std::uint64_t i = 0; i < count; ++i) {
          check_not_tagged(ins, std::bit_cast<std::uint64_t>(data[i]));
        }
      }
      if (options_.mpi != nullptr) {
        options_.mpi->allreduce_vec(std::span<double>(data, count));
      }
      break;
    }

    default:
      trap(strformat("unimplemented intrinsic %s", in::intrin_name(id)));
  }
}

std::vector<std::uint8_t> Machine::read_memory(std::uint64_t addr,
                                               std::size_t size) const {
  if (addr + size > memory_.size() || addr + size < addr) {
    throw VmError("read_memory out of bounds");
  }
  return std::vector<std::uint8_t>(memory_.begin() +
                                       static_cast<std::ptrdiff_t>(addr),
                                   memory_.begin() +
                                       static_cast<std::ptrdiff_t>(addr +
                                                                   size));
}

std::uint64_t Machine::read_memory_u64(std::uint64_t addr) const {
  if (addr + 8 > memory_.size()) throw VmError("read_memory out of bounds");
  std::uint64_t v = 0;
  std::memcpy(&v, memory_.data() + addr, 8);
  return v;
}

std::map<std::uint64_t, std::uint64_t> Machine::profile_by_address() const {
  std::map<std::uint64_t, std::uint64_t> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) out[code_[i].addr] = counts_[i];
  }
  return out;
}

std::map<std::uint64_t, std::uint64_t> Machine::profile_by_origin() const {
  std::map<std::uint64_t, std::uint64_t> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) out[image_.origin_of(code_[i].addr)] += counts_[i];
  }
  return out;
}

}  // namespace fpmix::vm
