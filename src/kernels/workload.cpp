#include "kernels/workload.hpp"

#include "lang/compile.hpp"
#include "program/layout.hpp"
#include "verify/evaluate.hpp"

namespace fpmix::kernels {

program::Image build_image(const Workload& w, lang::Mode mode) {
  return program::relayout(lang::compile(w.model, mode));
}

std::unique_ptr<verify::Verifier> make_verifier(
    const Workload& w, const program::Image& original) {
  if (w.threshold_mode) {
    return std::make_unique<verify::ThresholdVerifier>(
        w.error_output_index, w.threshold, w.expected_outputs);
  }
  std::vector<double> ref =
      verify::reference_outputs(original, w.max_instructions);
  auto v = std::make_unique<verify::RelativeErrorVerifier>(
      std::move(ref), w.rel_tol, w.abs_tol);
  for (const Workload::OutputTol& t : w.output_tols) {
    v->set_output_tolerance(t.index, t.rel, t.abs);
  }
  return v;
}

std::vector<Workload> all_serial_workloads() {
  std::vector<Workload> out;
  for (char cls : {'W', 'A'}) {
    out.push_back(make_ep(cls));
    out.push_back(make_cg(cls));
    out.push_back(make_ft(cls));
    out.push_back(make_mg(cls));
    out.push_back(make_bt(cls));
    out.push_back(make_lu(cls));
    out.push_back(make_sp(cls));
  }
  out.push_back(make_amg());
  out.push_back(make_superlu(1.0e-3));
  return out;
}

}  // namespace fpmix::kernels
