// Figure 12 reproduction: mixed-precision iterative refinement.
//
// Paper (Figure 12 + Section 4.3): factorize in single precision (the
// O(n^3) work), refine with double-precision residuals (O(n^2) per step);
// the result reaches double accuracy while most time is spent in single.
// "Even on non-streaming processors, they obtained a performance
// improvement between 50% and 80%."
#include <benchmark/benchmark.h>

#include <cstdio>

#include "linalg/dense.hpp"
#include "linalg/refine.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace {

fpmix::linalg::Dense<double> make_system(std::size_t n, std::uint64_t seed) {
  fpmix::SplitMix64 rng(seed);
  fpmix::linalg::Dense<double> a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0;
    for (std::size_t j = 0; j < n; ++j) {
      a.at(i, j) = rng.next_double(-1, 1);
      row += std::fabs(a.at(i, j));
    }
    a.at(i, i) += row + 1.0;
  }
  return a;
}

void BM_DenseSolveDouble(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = make_system(n, 0xF16);
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fpmix::linalg::dense_solve(a, b));
  }
}

void BM_MixedRefinement(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = make_system(n, 0xF16);
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fpmix::linalg::refine_solve(a, b, 1e-13, 20));
  }
}

BENCHMARK(BM_DenseSolveDouble)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MixedRefinement)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace fpmix;
  std::printf("Figure 12: mixed-precision iterative refinement vs all-double "
              "direct solve\n");
  std::printf("(paper/citations: same accuracy as double, 1.5-1.8X on "
              "conventional CPUs)\n\n");

  std::printf("%6s %12s %12s %9s %12s %12s %6s\n", "n", "double (s)",
              "mixed (s)", "speedup", "resid dbl", "resid mixed", "iters");
  for (std::size_t n : {256u, 512u, 1024u}) {
    const auto a = make_system(n, 0xF16);
    std::vector<double> b(n, 1.0);

    Timer t1;
    const std::vector<double> xd = linalg::dense_solve(a, b);
    const double td = t1.elapsed_seconds();
    const double rd = linalg::scaled_residual(a, xd, b);

    Timer t2;
    const linalg::RefineResult rr = linalg::refine_solve(a, b, 1e-13, 20);
    const double tm = t2.elapsed_seconds();

    std::printf("%6zu %12.4f %12.4f %8.2fX %12.2e %12.2e %6zu\n", n, td, tm,
                td / tm, rd, rr.final_residual, rr.iterations);
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
