// Deterministic, seeded fault injection for robustness testing.
//
// The search harness must survive hundreds of trapping, diverging and
// non-terminating trial configurations without losing the run -- a crashed
// trial is ordinary data (the 0x7FF4DEAD sentinel is *designed* to make
// untreated escapes fail loudly). This module manufactures those failures
// on demand so tests can drive seeded fault campaigns through full searches
// and assert the harness absorbs every one of them:
//
//  - VM faults, fired at an exact retired-instruction count inside
//    vm::Machine's supervision loop: flip a bit in an FP slot (silent data
//    corruption), force a replaced-double sentinel escape, abort the trial,
//    or stall it until the wall-clock deadline trips;
//  - verifier flakiness, flipping the verdict of a single evaluation
//    attempt (exercises the search's retry / majority-vote / quarantine
//    policy);
//  - journal sabotage, corrupting / truncating / duplicating lines of an
//    existing journal file (exercises CRC + sequence-number recovery);
//  - *hard* faults, which destroy the evaluating process itself: raise
//    SIGSEGV/SIGKILL in-trial, allocation storms into the rlimit, hangs
//    that force the TERM->KILL escalation, and truncated/corrupted result
//    frames. Only the out-of-process runner (src/runner) survives these;
//    the in-process evaluation path ignores them by design, since firing
//    one there would take down the driver the campaign is meant to harden.
//
// Everything is a pure function of (seed, trial key, attempt): the same
// campaign replays identically across processes and thread schedules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace fpmix::fault {

/// Machine-level fault kinds, applied by vm::Machine mid-run.
enum class VmFault : std::uint8_t {
  kNone = 0,
  kBitFlip,   // flip one bit of an FP slot (xmm lane or data memory): SDC
  kSentinel,  // write a 0x7FF4DEAD-tagged slot: forced sentinel escape
  kAbort,     // trap immediately: models a crashed trial
  kStall,     // stop retiring instructions: models a hang (needs a deadline)
};

/// One planned machine fault: `kind` fires once the retired-instruction
/// count reaches `at_retired`; `seed` picks the target register/bit.
struct VmFaultSpec {
  VmFault kind = VmFault::kNone;
  std::uint64_t at_retired = 0;
  std::uint64_t seed = 0;
};

/// Process-destroying fault kinds, applied by the sandboxed trial worker
/// (src/runner) around one evaluation. The in-process path ignores them.
enum class HardFault : std::uint8_t {
  kNone = 0,
  kSegv,           // raise SIGSEGV mid-trial: a wild write in a patched image
  kKill,           // raise SIGKILL: models the kernel OOM-killer / operator
  kOomStorm,       // allocate until the rlimit refuses (kResource) or a cap,
                   // then SIGKILL: memory blowup either way
  kHang,           // stop responding; the supervisor's SIGTERM reaps it
  kHangIgnoreTerm, // as kHang but SIGTERM is ignored: forces KILL escalation
  kTruncResult,    // deliver a truncated result frame, then die
  kCorruptResult,  // deliver a CRC-corrupt result frame, then die
};

/// Fault decisions for one evaluation attempt of one trial.
struct TrialFaults {
  VmFaultSpec vm;
  bool flip_verdict = false;  // verifier flakiness for this attempt
  HardFault hard = HardFault::kNone;  // worker-process fault (runner only)
  std::uint64_t hard_seed = 0;        // picks the storm size / damage byte
};

/// Campaign-level deterministic fault source. for_trial derives every
/// decision from (campaign seed, trial key, attempt index), so a campaign
/// is reproducible and per-trial decisions are independent of evaluation
/// order and thread count. Thread-safe (const, no state).
class Injector {
 public:
  /// Independent per-attempt probabilities of each fault kind. The VM
  /// faults are mutually exclusive (first match on a single draw); flaky
  /// verdict flips are drawn separately.
  struct Rates {
    double abort = 0.0;
    double bitflip = 0.0;
    double sentinel = 0.0;
    double stall = 0.0;  // only meaningful when a trial deadline is set
    double flaky = 0.0;
    // Hard (process-destroying) faults; drawn separately from the VM kinds
    // and mutually exclusive with each other. Only fire under the isolated
    // runner -- the in-process path cannot survive them.
    double segv = 0.0;
    double kill = 0.0;
    double oom = 0.0;
    double hang = 0.0;            // needs a supervisor trial timeout
    double hang_ignore_term = 0.0;
    double trunc_result = 0.0;
    double corrupt_result = 0.0;
  };

  Injector(std::uint64_t seed, const Rates& rates)
      : seed_(seed), rates_(rates) {}

  /// Fault decisions for attempt `attempt` of the trial identified by
  /// `trial_key` (the config digest the search journals).
  TrialFaults for_trial(std::string_view trial_key,
                        std::uint32_t attempt) const;

  /// Tag folded into the search fingerprint so journals written under a
  /// fault campaign never contaminate fault-free runs.
  std::string fingerprint_tag() const;

  std::uint64_t seed() const { return seed_; }
  /// The campaign's rate table (the network scheduler ships it to remote
  /// runners in the session handshake, so both sides draw identically).
  const Rates& rates() const { return rates_; }

 private:
  std::uint64_t seed_;
  Rates rates_;
};

// ---- Network chaos ---------------------------------------------------------

/// Transport-level fault kinds, injected at the net::Socket send path (the
/// frame boundary: every send_all call carries exactly one protocol frame).
/// All of them are *detected* failures by construction -- a reset kills the
/// session, a duplicated frame is a stale ticket, a reordered frame is an
/// out-of-order (but individually CRC-intact) message -- so a chaos campaign
/// can prove the fleet heals around them without ever producing a wrong
/// verdict.
enum class NetFault : std::uint8_t {
  kNone = 0,
  kConnReset,      // close the socket mid-stream: peer sees EOF/reset
  kStall,          // sleep before sending: a stalled link / partition window
  kDelayFrame,     // hold this frame; it flushes before the next send
  kDupFrame,       // send this frame twice: duplicate delivery
  kReorderFrames,  // hold this frame; it flushes *after* the next send
};

/// Deterministic, seeded source of transport faults. Like Injector, every
/// decision is a pure function -- here of (campaign seed, connection id,
/// per-connection op index) -- so a campaign replays identically for a given
/// connection history. Install process-wide with net::set_socket_chaos; the
/// runner daemons are forked before installation and stay chaos-free, so
/// faults land exactly on the scheduler's half of every session.
class NetChaos {
 public:
  /// Independent probability of each fault kind per send op (mutually
  /// exclusive, first match on a single draw).
  struct Rates {
    double reset = 0.0;
    double stall = 0.0;
    double delay = 0.0;
    double dup = 0.0;
    double reorder = 0.0;
    /// Sleep applied by kStall, in milliseconds.
    std::uint64_t stall_ms = 20;
  };

  NetChaos(std::uint64_t seed, const Rates& rates)
      : seed_(seed), rates_(rates) {}

  /// The fault to apply to send op `op_index` of connection `conn_id`.
  /// Hold kinds (delay/reorder) are suppressed on a connection's first op:
  /// a held hello frame would never flush (nothing follows it until the
  /// handshake completes), turning a chaos draw into a silent hang instead
  /// of a detectable fault.
  NetFault for_op(std::uint64_t conn_id, std::uint64_t op_index) const;

  std::uint64_t stall_ms() const { return rates_.stall_ms; }
  std::uint64_t seed() const { return seed_; }
  const Rates& rates() const { return rates_; }

 private:
  std::uint64_t seed_;
  Rates rates_;
};

// ---- Disk chaos ------------------------------------------------------------

/// Storage-level fault kinds, injected at the daemon shard store's file
/// operations (src/net/shard_store). Each models a real failure the durable
/// state layer must absorb: torn writes are what crash-consistency healing
/// exists for, fsync failures silently weaken durability, ENOSPC must
/// degrade the daemon to in-memory shards rather than kill the session, and
/// an unreadable file on reload must cost only that shard.
enum class DiskFault : std::uint8_t {
  kNone = 0,
  kShortWrite,   // persist only a prefix of the record, no newline: torn tail
  kTornRecord,   // persist the whole record but lose the newline: torn tail
  kFsyncFail,    // the append lands in the page cache but fsync is "lost"
  kEnospc,       // the write fails outright: device full / quota exceeded
  kUnreadable,   // the shard file cannot be opened on reload (EIO signature)
};

/// Deterministic, seeded source of disk faults. Every decision is a pure
/// function of (campaign seed, shard file key, per-file op index) -- the
/// reload is op 0, appends count up from 1 -- so a campaign replays
/// identically for a given shard history regardless of session interleaving.
class DiskChaos {
 public:
  /// Independent probability of each fault kind per file op (mutually
  /// exclusive, first match on a single draw). kUnreadable is only
  /// consulted at reload (op 0); the write kinds only at append ops.
  struct Rates {
    double short_write = 0.0;
    double torn_record = 0.0;
    double fsync_fail = 0.0;
    double enospc = 0.0;
    double unreadable = 0.0;
  };

  DiskChaos(std::uint64_t seed, const Rates& rates)
      : seed_(seed), rates_(rates) {}

  /// The fault to apply to op `op_index` of the shard file `file_key`.
  DiskFault for_op(std::string_view file_key, std::uint64_t op_index) const;

  std::uint64_t seed() const { return seed_; }
  const Rates& rates() const { return rates_; }

 private:
  std::uint64_t seed_;
  Rates rates_;
};

/// Journal sabotage kinds (applied to a file between runs).
enum class JournalFault : std::uint8_t {
  kTruncateTail,     // cut the final line mid-write (crash signature)
  kCorruptInterior,  // flip one byte of a random interior line
  kDuplicateLine,    // replay a random line immediately after itself
  kGarbageLine,      // splice a non-JSON line at a random position
};

/// Deterministically damages the journal at `path`. Returns false when the
/// file is missing or too short to damage in the requested way.
bool sabotage_journal(const std::string& path, JournalFault kind,
                      std::uint64_t seed);

}  // namespace fpmix::fault
