// Code generation: ProgramModel -> structured Program (via the assembler).
//
// Storage model is Fortran-style: every scalar and array lives in static
// storage (data segment when baked, bss otherwise); functions communicate
// through globals, so there are no stack frames and no recursion. Expression
// evaluation uses a simple register pool (xmm2..xmm13 / r2..r13); r0/r1 and
// xmm14/xmm15 are never allocated because the instrumentation snippets use
// them as scratch (see instrument/snippet.cpp).
#pragma once

#include "lang/ast.hpp"
#include "program/program.hpp"

namespace fpmix::lang {

/// Compiles the model. Mode::kSingle produces the manually-converted
/// single-precision twin: f32 storage, f32 arithmetic, f32 intrinsic
/// variants, with outputs widened to f64 for comparison.
program::Program compile(const ProgramModel& model, Mode mode);

}  // namespace fpmix::lang
