// The human-readable precision-configuration exchange format (Figure 3).
//
// Example:
//
//     # fpmix precision configuration
//       MODULE nas_cg
//         FUNC01: conj_grad
//           BBLK01: 0x400120
//     s       INSN01: 0x400131 "addsd xmm1, xmm0"
//     d       INSN02: 0x40013d "mulsd xmm2, xmm1"
//     s   FUNC02: split
//           BBLK02: 0x4002f0
//             INSN03: 0x4002f8 "subsd xmm1, xmm0"
//
// The first column carries the precision flag ('d', 's', 'i'); a blank first
// column means "no flag here". A flag on an aggregate (module/function/
// block) overrides any flags on its children, exactly as in the paper.
// Only replacement candidates (the set Pd) are listed at instruction level.
#pragma once

#include <string>

#include "config/config.hpp"
#include "config/structure.hpp"

namespace fpmix::config {

/// Serializes a configuration against its structure index.
std::string to_text(const StructureIndex& index, const PrecisionConfig& cfg);

/// Parses a configuration file. Structure lines are validated against the
/// index (unknown functions/addresses raise ConfigError); flags may be
/// omitted anywhere.
PrecisionConfig from_text(const StructureIndex& index, std::string_view text);

}  // namespace fpmix::config
