file(REMOVE_RECURSE
  "CMakeFiles/superlu_threshold.dir/superlu_threshold.cpp.o"
  "CMakeFiles/superlu_threshold.dir/superlu_threshold.cpp.o.d"
  "superlu_threshold"
  "superlu_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superlu_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
