#include "support/thread_pool.hpp"

#include "support/error.hpp"

namespace fpmix {

ThreadPool::ThreadPool(std::size_t num_threads) {
  FPMIX_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FPMIX_CHECK(!stop_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace fpmix
