file(REMOVE_RECURSE
  "CMakeFiles/fpmix_arch.dir/disasm.cpp.o"
  "CMakeFiles/fpmix_arch.dir/disasm.cpp.o.d"
  "CMakeFiles/fpmix_arch.dir/encode.cpp.o"
  "CMakeFiles/fpmix_arch.dir/encode.cpp.o.d"
  "CMakeFiles/fpmix_arch.dir/intrinsics.cpp.o"
  "CMakeFiles/fpmix_arch.dir/intrinsics.cpp.o.d"
  "CMakeFiles/fpmix_arch.dir/opcode.cpp.o"
  "CMakeFiles/fpmix_arch.dir/opcode.cpp.o.d"
  "libfpmix_arch.a"
  "libfpmix_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpmix_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
