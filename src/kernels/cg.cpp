// CG: conjugate-gradient NAS analogue.
//
// Structure mirrors NPB CG: an outer power-method iteration computing the
// dominant-eigenvalue estimate zeta = shift + 1/(x.z), with each outer step
// solving A z = x by a fixed number of CG iterations over a sparse SPD
// matrix. The matrix is baked into the data segment (our stand-in for
// makea); auxiliary statistics (residual norms per outer step) are reported
// with loose tolerances while zeta itself is checked tightly -- so the
// search discovers that the hot sparse kernels feeding zeta are
// precision-sensitive while peripheral computation narrows freely.
#include "kernels/workload.hpp"

#include "lang/builder.hpp"
#include "linalg/csr.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::kernels {

using lang::Builder;
using lang::Expr;

namespace {

struct CgParams {
  std::size_t n;
  std::size_t nnz_per_row;
  std::size_t inner_iters;
  std::size_t outer_iters;
  double shift;
};

CgParams cg_params(char cls) {
  switch (cls) {
    case 'S': return {200, 5, 6, 2, 10.0};
    case 'W': return {424, 6, 8, 3, 12.0};
    case 'A': return {904, 7, 10, 3, 20.0};
    case 'C': return {1800, 8, 12, 4, 60.0};
    default: throw Error(strformat("cg: unknown class %c", cls));
  }
}

}  // namespace

Workload make_cg(char cls, int ranks) {
  const CgParams p = cg_params(cls);
  const auto n = static_cast<std::int64_t>(p.n);
  FPMIX_CHECK(ranks >= 1);
  FPMIX_CHECK(p.n % static_cast<std::size_t>(ranks) == 0);

  const linalg::Csr<double> a =
      linalg::make_random_spd(p.n, p.nnz_per_row, p.shift, 0xC6 + cls);

  Builder b;
  auto rowptr = b.const_array_i64("rowptr", a.rowptr);
  auto col = b.const_array_i64("col", a.col);
  auto val = b.const_array_f64("val", a.val);

  auto x = b.array_f64("x", p.n);
  auto z = b.array_f64("z", p.n);
  auto r = b.array_f64("r", p.n);
  auto pv = b.array_f64("p", p.n);
  auto q = b.array_f64("q", p.n);
  auto rho = b.var_f64("rho");
  auto rnorm = b.var_f64("rnorm");

  // --- module cg_blas: y = A p (the hot kernel) ----------------------------
  b.begin_func("matvec", "cg_blas");
  {
    auto i = b.var_i64("mv_i");
    auto k = b.var_i64("mv_k");
    auto acc = b.var_f64("mv_acc");
    auto lo = b.var_i64("mv_lo");  // per-rank row range
    auto hi = b.var_i64("mv_hi");
    if (ranks > 1) {
      auto rows = b.var_i64("mv_rows");
      b.set(rows, b.ci(n) / b.mpi_size());
      b.set(lo, b.mpi_rank() * Expr(rows));
      b.set(hi, Expr(lo) + Expr(rows));
      // Ranks own disjoint row blocks; the allreduce below assembles q.
      b.for_(i, b.ci(0), b.ci(n), [&] { b.store(q, Expr(i), b.cf(0.0)); });
    } else {
      b.set(lo, b.ci(0));
      b.set(hi, b.ci(n));
    }
    b.for_(i, Expr(lo), Expr(hi), [&] {
      b.set(acc, b.cf(0.0));
      b.for_(k, rowptr[Expr(i)], rowptr[Expr(i) + b.ci(1)], [&] {
        b.set(acc, Expr(acc) + val[Expr(k)] * pv[col[Expr(k)]]);
      });
      b.store(q, Expr(i), acc);
    });
    if (ranks > 1) {
      b.allreduce_vec(q, b.ci(n));
    }
  }
  b.end_func();

  // --- module cg_core: one CG solve of A z = x ------------------------------
  b.begin_func("conj_grad", "cg_core");
  {
    auto i = b.var_i64("cg_i");
    auto it = b.var_i64("cg_it");
    auto alpha = b.var_f64("alpha");
    auto beta = b.var_f64("beta");
    auto rho1 = b.var_f64("rho1");
    auto pq = b.var_f64("pq");

    b.for_(i, b.ci(0), b.ci(n), [&] {
      b.store(z, Expr(i), b.cf(0.0));
      b.store(r, Expr(i), x[Expr(i)]);
      b.store(pv, Expr(i), x[Expr(i)]);
    });
    b.set(rho, b.cf(0.0));
    b.for_(i, b.ci(0), b.ci(n),
           [&] { b.set(rho, Expr(rho) + r[Expr(i)] * r[Expr(i)]); });

    b.for_(it, b.ci(0), b.ci(static_cast<std::int64_t>(p.inner_iters)), [&] {
      b.call("matvec");
      b.set(pq, b.cf(0.0));
      b.for_(i, b.ci(0), b.ci(n),
             [&] { b.set(pq, Expr(pq) + pv[Expr(i)] * q[Expr(i)]); });
      b.set(alpha, Expr(rho) / Expr(pq));
      b.for_(i, b.ci(0), b.ci(n), [&] {
        b.store(z, Expr(i), z[Expr(i)] + Expr(alpha) * pv[Expr(i)]);
        b.store(r, Expr(i), r[Expr(i)] - Expr(alpha) * q[Expr(i)]);
      });
      b.set(rho1, b.cf(0.0));
      b.for_(i, b.ci(0), b.ci(n),
             [&] { b.set(rho1, Expr(rho1) + r[Expr(i)] * r[Expr(i)]); });
      b.set(beta, Expr(rho1) / Expr(rho));
      b.set(rho, rho1);
      b.for_(i, b.ci(0), b.ci(n), [&] {
        b.store(pv, Expr(i), r[Expr(i)] + Expr(beta) * pv[Expr(i)]);
      });
    });
    b.set(rnorm, sqrt_(rho));
  }
  b.end_func();

  // --- module cg_main: power iteration over the CG solver -------------------
  b.begin_func("main", "cg_main");
  {
    auto i = b.var_i64("mn_i");
    auto outer = b.var_i64("mn_outer");
    auto xz = b.var_f64("xz");
    auto znorm = b.var_f64("znorm");
    auto zeta = b.var_f64("zeta");

    b.for_(i, b.ci(0), b.ci(n), [&] { b.store(x, Expr(i), b.cf(1.0)); });

    b.for_(outer, b.ci(0), b.ci(static_cast<std::int64_t>(p.outer_iters)),
           [&] {
             b.call("conj_grad");
             b.set(xz, b.cf(0.0));
             b.set(znorm, b.cf(0.0));
             b.for_(i, b.ci(0), b.ci(n), [&] {
               b.set(xz, Expr(xz) + x[Expr(i)] * z[Expr(i)]);
               b.set(znorm, Expr(znorm) + z[Expr(i)] * z[Expr(i)]);
             });
             b.set(znorm, sqrt_(znorm));
             b.set(zeta, b.cf(p.shift) + b.cf(1.0) / Expr(xz));
             b.for_(i, b.ci(0), b.ci(n),
                    [&] { b.store(x, Expr(i), z[Expr(i)] / Expr(znorm)); });
             // Auxiliary per-step report (loose check).
             b.output(rnorm);
           });
    // Figure of merit (tight check).
    b.output(zeta);
  }
  b.end_func();

  Workload w;
  w.name = strformat("cg.%c%s", cls, ranks > 1 ? ".mpi" : "");
  w.model = b.take_model();
  // Outputs: outer_iters residual norms (loose: they sit at the CG
  // stagnation level), then zeta (tight, NAS-style).
  w.rel_tol = 1e-9;
  w.abs_tol = 0.0;
  for (std::size_t k = 0; k < p.outer_iters; ++k) {
    w.output_tols.push_back({k, 0.5, 1e-4});
  }
  return w;
}

}  // namespace fpmix::kernels
