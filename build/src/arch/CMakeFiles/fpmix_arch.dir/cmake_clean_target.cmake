file(REMOVE_RECURSE
  "libfpmix_arch.a"
)
