// Fixed-size thread pool used by the configuration search.
//
// The paper notes the search "is highly parallelizable, and the system can
// launch many independent tests if cores are available": each candidate
// configuration is patched into its own image and run in its own VM, so
// evaluations share nothing and scale linearly.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fpmix {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw; wrap fallible work yourself.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::queue<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fpmix
