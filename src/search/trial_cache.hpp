// Persistent trial cache for the configuration search.
//
// Every evaluated configuration (a "trial") is identified by the stable
// digest of its PrecisionConfig serialization. Outcomes are held in an
// in-memory cache and appended to a JSONL journal, so that
//   * identical sub-configurations -- common under binary splitting and
//     composition refinement -- are evaluated exactly once, and
//   * a crashed or interrupted search resumes by replaying the journal:
//     the deterministic search re-traverses the same frontier, but every
//     already-journaled trial is served from cache at zero evaluation cost.
//
// Cache entries are only valid for one *search identity*: the verifier
// (its fingerprint covers tolerances and a digest of the reference data)
// plus the evaluation-affecting options. Journals carry that identity in
// meta records, and replay skips trials recorded under a different one.
//
// Journal format (one JSON object per line; see DESIGN.md):
//   {"type":"meta","version":1,"search_fp":"<16-hex>"}
//   {"type":"trial","key":"<16-hex>","unit":"func cg","cand":12,
//    "passed":true,"failure":"","eval_ns":18234987}
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

namespace fpmix::search {

/// Outcome of one evaluated configuration, as persisted in the journal.
/// Pass/fail plus the failure reason is everything the search's decision
/// procedure consumes, so it is everything the cache has to keep.
struct CachedTrial {
  bool passed = false;
  std::string failure;
  std::uint64_t eval_ns = 0;  // live evaluation cost when first computed
};

/// In-memory index of completed trials, keyed on the config digest.
class TrialCache {
 public:
  /// First insert wins (re-evaluating a config is deterministic, so a
  /// duplicate insert never carries new information).
  void insert(const std::string& key, CachedTrial trial);

  /// Returns the cached outcome, or nullptr on a miss.
  const CachedTrial* lookup(const std::string& key) const;

  std::size_t size() const { return trials_.size(); }

 private:
  std::unordered_map<std::string, CachedTrial> trials_;
};

/// Digest identifying a search's evaluation semantics: the verifier
/// fingerprint plus every option that can change a trial's outcome
/// (currently the per-run instruction budget). Options that only steer
/// *which* configs get tested (stop level, splitting, prioritisation,
/// thread count) are deliberately excluded so journals stay valid across
/// them.
std::string search_fingerprint(const std::string& verifier_fingerprint,
                               std::uint64_t max_instructions_per_run);

/// Journal meta record announcing the search identity of subsequent trials.
std::string encode_meta_line(const std::string& search_fp);

/// Journal trial record.
std::string encode_trial_line(const std::string& key, const std::string& unit,
                              std::size_t candidates, const CachedTrial& t);

/// Replays the journal at `path` into `cache`: trial records whose most
/// recent preceding meta record matches `search_fp` are inserted; foreign,
/// malformed, or truncated records are skipped (with a warning for
/// malformed ones). Returns the number of trials loaded. A missing file
/// loads nothing.
std::size_t load_journal(const std::string& path,
                         const std::string& search_fp, TrialCache* cache);

}  // namespace fpmix::search
