# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/program_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/instrument_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
