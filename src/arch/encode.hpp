// Binary encoding of the virtual ISA (the role XED plays in the paper).
//
// Layout of an encoded instruction:
//   byte 0          opcode
//   byte 1          operand form: (dst kind << 4) | src kind
//   dst fields      kGpr/kXmm: 1 reg byte
//                   kImm:      8 bytes little-endian
//                   kMem:      base, index, scale, disp (4 bytes LE signed)
//   src fields      same scheme
//
// Instructions are variable length (2..16 bytes), so -- exactly as with x86
// -- an image cannot be patched by overwriting bytes in place; the
// instrumenter must split basic blocks and relocate code (Section 2.4).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/instr.hpp"

namespace fpmix::arch {

/// Returns the encoded size of `ins` in bytes.
std::uint32_t encoded_size(const Instr& ins);

/// Validates the operand form against the opcode's allowed forms.
/// Throws DecodeError on an illegal combination.
void validate(const Instr& ins);

/// Appends the encoding of `ins` to `out`. Throws DecodeError if invalid.
void encode(const Instr& ins, std::vector<std::uint8_t>* out);

/// Decodes one instruction starting at `bytes[offset]`. On success fills
/// `*out` (with addr = image_base + offset and size set) and returns the
/// number of bytes consumed. Throws DecodeError on malformed input.
std::uint32_t decode(std::span<const std::uint8_t> bytes, std::size_t offset,
                     std::uint64_t image_base, Instr* out);

/// Decodes an entire code region into a flat instruction list.
std::vector<Instr> decode_all(std::span<const std::uint8_t> bytes,
                              std::uint64_t image_base);

}  // namespace fpmix::arch
