#include "net/client.hpp"

#include <chrono>

#include "runner/wire.hpp"
#include "support/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FPMIX_NET_POSIX 1
#include <poll.h>
#else
#define FPMIX_NET_POSIX 0
#endif

namespace fpmix::net {

using runner::FrameStatus;

namespace {

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::unique_ptr<EndpointClient> EndpointClient::connect(
    const Endpoint& ep, const HelloMsg& hello, int connect_timeout_ms,
    int hello_timeout_ms, std::string* error) {
#if !FPMIX_NET_POSIX
  (void)ep;
  (void)hello;
  (void)connect_timeout_ms;
  (void)hello_timeout_ms;
  if (error != nullptr) *error = "sockets unsupported on this platform";
  return nullptr;
#else
  Socket sock = connect_to(ep, connect_timeout_ms, error);
  if (!sock.valid()) return nullptr;
  std::unique_ptr<EndpointClient> c(
      new EndpointClient(std::move(sock), ep));
  if (!c->sock_.send_all(runner::encode_frame(encode_hello(hello)),
                         connect_timeout_ms)) {
    if (error != nullptr) {
      *error = strformat("%s: hello send failed", ep.str().c_str());
    }
    return nullptr;
  }
  // The ack can take a while on a cold server: building the workload and
  // running the reference computation happens inside the handshake.
  const std::uint64_t deadline = now_ms() + static_cast<std::uint64_t>(
                                                hello_timeout_ms > 0
                                                    ? hello_timeout_ms
                                                    : 60000);
  for (;;) {
    std::string payload;
    const FrameStatus st = c->fb_.next(&payload);
    if (st == FrameStatus::kOk) {
      HelloAckMsg ack;
      if (peek_msg_type(payload) != kMsgHelloAck ||
          !decode_hello_ack(payload, &ack)) {
        // A full daemon answers the connect with an error frame instead of
        // an ack (e.g. "session limit reached"); surface its text.
        std::string text;
        if (peek_msg_type(payload) == kMsgError &&
            decode_error_msg(payload, &text)) {
          if (error != nullptr) {
            *error = strformat("%s: rejected: %s", ep.str().c_str(),
                               text.c_str());
          }
          return nullptr;
        }
        if (error != nullptr) {
          *error = strformat("%s: malformed hello ack", ep.str().c_str());
        }
        return nullptr;
      }
      if (ack.ok == 0) {
        if (error != nullptr) {
          *error = strformat("%s: rejected: %s", ep.str().c_str(),
                             ack.error.c_str());
        }
        return nullptr;
      }
      c->workers_ = ack.workers;
      c->engine_ = ack.engine;
      c->verifier_fp_ = ack.verifier_fp;
      c->shard_records_ = ack.shard_records;
      c->state_degraded_ = ack.state_degraded != 0;
      c->shards_reloaded_ = ack.shards_reloaded;
      c->disk_faults_ = ack.disk_faults;
      return c;
    }
    if (st == FrameStatus::kCorrupt) {
      if (error != nullptr) {
        *error = strformat("%s: corrupt handshake frame", ep.str().c_str());
      }
      return nullptr;
    }
    const std::uint64_t now = now_ms();
    if (now >= deadline) {
      if (error != nullptr) {
        *error = strformat("%s: hello ack timeout", ep.str().c_str());
      }
      return nullptr;
    }
    pollfd pfd{c->sock_.fd(), POLLIN, 0};
    ::poll(&pfd, 1, static_cast<int>(deadline - now));
    std::string bytes;
    const IoStatus io = c->sock_.read_available(&bytes);
    if (!bytes.empty()) c->fb_.append(bytes);
    if (io == IoStatus::kEof || io == IoStatus::kError) {
      if (c->fb_.buffered() > 0) continue;  // the ack may already be here
      if (error != nullptr) {
        *error = strformat("%s: connection closed during handshake",
                           ep.str().c_str());
      }
      return nullptr;
    }
  }
#endif
}

bool EndpointClient::submit(const TrialMsg& m) {
  if (dead_) return false;
  if (!sock_.send_all(runner::encode_frame(encode_trial(m)),
                      /*timeout_ms=*/10000)) {
    last_error_ = "trial send failed";
    close();
    return false;
  }
  return true;
}

bool EndpointClient::insert(const CacheInsertMsg& m) {
  if (dead_) return false;
  if (!sock_.send_all(runner::encode_frame(encode_cache_insert(m)),
                      /*timeout_ms=*/10000)) {
    last_error_ = "cache insert send failed";
    close();
    return false;
  }
  return true;
}

bool EndpointClient::journal_append(const JournalAppendMsg& m) {
  if (dead_) return false;
  if (!sock_.send_all(runner::encode_frame(encode_journal_append(m)),
                      /*timeout_ms=*/10000)) {
    last_error_ = "journal append send failed";
    close();
    return false;
  }
  return true;
}

bool EndpointClient::ping(const PingMsg& m) {
  if (dead_) return false;
  if (!sock_.send_all(runner::encode_frame(encode_ping(m)),
                      /*timeout_ms=*/10000)) {
    last_error_ = "ping send failed";
    close();
    return false;
  }
  return true;
}

bool EndpointClient::request_digest() {
  if (dead_) return false;
  if (!sock_.send_all(runner::encode_frame(encode_shard_digest()),
                      /*timeout_ms=*/10000)) {
    last_error_ = "shard digest send failed";
    close();
    return false;
  }
  return true;
}

bool EndpointClient::fetch_journal(std::vector<std::string>* lines,
                                   int timeout_ms, std::string* error) {
#if !FPMIX_NET_POSIX
  (void)lines;
  (void)timeout_ms;
  if (error != nullptr) *error = "sockets unsupported on this platform";
  return false;
#else
  if (dead_) {
    if (error != nullptr) *error = "session dead";
    return false;
  }
  if (!sock_.send_all(runner::encode_frame(encode_journal_fetch()),
                      /*timeout_ms=*/10000)) {
    last_error_ = "journal fetch send failed";
    close();
    if (error != nullptr) *error = last_error_;
    return false;
  }
  const std::uint64_t deadline =
      now_ms() + static_cast<std::uint64_t>(timeout_ms > 0 ? timeout_ms
                                                           : 10000);
  bool peer_closed = false;
  for (;;) {
    std::string payload;
    const FrameStatus st = fb_.next(&payload);
    if (st == FrameStatus::kOk) {
      JournalTailMsg tail;
      if (peek_msg_type(payload) != kMsgJournalTail ||
          !decode_journal_tail(payload, &tail)) {
        // Pongs from an in-flight heartbeat (or a digest ack from a gossip
        // round) may interleave with the tail stream; anything else
        // mid-fetch is a protocol violation.
        PongMsg pong;
        if (peek_msg_type(payload) == kMsgPong &&
            decode_pong(payload, &pong)) {
          pongs_.push_back(pong);
          continue;
        }
        ShardDigestMsg digest;
        if (peek_msg_type(payload) == kMsgShardDigestAck &&
            decode_shard_digest_ack(payload, &digest)) {
          digests_.push_back(digest);
          continue;
        }
        last_error_ = "unexpected frame during journal fetch";
        close();
        if (error != nullptr) *error = last_error_;
        return false;
      }
      for (std::string& l : tail.lines) lines->push_back(std::move(l));
      if (tail.done != 0) return true;
      continue;
    }
    if (st == FrameStatus::kCorrupt) {
      last_error_ = "corrupt frame during journal fetch";
      close();
      if (error != nullptr) *error = last_error_;
      return false;
    }
    // kNeedMore: a closed peer can never complete the partial frame.
    if (peer_closed) {
      last_error_ = "connection closed during journal fetch";
      close();
      if (error != nullptr) *error = last_error_;
      return false;
    }
    const std::uint64_t now = now_ms();
    if (now >= deadline) {
      last_error_ = "journal fetch timeout";
      close();
      if (error != nullptr) *error = last_error_;
      return false;
    }
    pollfd pfd{sock_.fd(), POLLIN, 0};
    ::poll(&pfd, 1, static_cast<int>(deadline - now));
    std::string bytes;
    const IoStatus io = sock_.read_available(&bytes);
    if (!bytes.empty()) fb_.append(bytes);
    if (io == IoStatus::kEof || io == IoStatus::kError) peer_closed = true;
  }
#endif
}

bool EndpointClient::drain(std::vector<ResultMsg>* out) {
  if (dead_) return false;
  std::string bytes;
  const IoStatus io = sock_.read_available(&bytes);
  if (!bytes.empty()) fb_.append(bytes);
  bool session_over = io == IoStatus::kEof || io == IoStatus::kError;
  // Decode everything already reassembled -- a server that answered and
  // then died still gets its verdicts counted.
  for (;;) {
    std::string payload;
    const FrameStatus st = fb_.next(&payload);
    if (st == FrameStatus::kNeedMore) break;
    if (st == FrameStatus::kCorrupt) {
      last_error_ = "corrupt frame";
      session_over = true;
      break;
    }
    const std::uint8_t type = peek_msg_type(payload);
    if (type == kMsgResult) {
      ResultMsg m;
      if (!decode_result_msg(payload, &m)) {
        last_error_ = "malformed result message";
        session_over = true;
        break;
      }
      out->push_back(std::move(m));
      continue;
    }
    if (type == kMsgPong) {
      PongMsg m;
      if (!decode_pong(payload, &m)) {
        last_error_ = "malformed pong message";
        session_over = true;
        break;
      }
      pongs_.push_back(m);
      continue;
    }
    if (type == kMsgShardDigestAck) {
      ShardDigestMsg m;
      if (!decode_shard_digest_ack(payload, &m)) {
        last_error_ = "malformed shard-digest ack";
        session_over = true;
        break;
      }
      digests_.push_back(m);
      continue;
    }
    if (type == kMsgError) {
      std::string text;
      last_error_ = decode_error_msg(payload, &text)
                        ? text
                        : std::string("malformed error message");
      session_over = true;
      break;
    }
    last_error_ = strformat("unexpected message type %u",
                            static_cast<unsigned>(type));
    session_over = true;
    break;
  }
  if (session_over) {
    if (last_error_.empty()) last_error_ = "connection closed";
    close();
    return false;
  }
  return true;
}

}  // namespace fpmix::net
