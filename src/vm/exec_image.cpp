#include "vm/exec_image.hpp"

#include <bit>
#include <utility>

#include "arch/encode.hpp"
#include "arch/opcode.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::vm {

using arch::Instr;
using arch::Opcode;
using arch::Operand;

namespace {

void fill_ea(const arch::MemRef& m, MicroOp* u) {
  u->ea_base = m.base == arch::kNoReg ? kZeroRegSlot : m.base;
  u->ea_index = m.index == arch::kNoReg ? kZeroRegSlot : m.index;
  // Decode guarantees scale is 1/2/4/8; a shift keeps the index term off
  // the multiplier on the engine's address critical path.
  u->ea_shift = static_cast<std::uint8_t>(std::countr_zero(m.scale));
  u->ea_disp = m.disp;
}

/// Picks the XX or XM variant of an FP op from the src operand and fills
/// the shared fields (dst xmm in `a`; src xmm in `b` or the address
/// recipe). Returns kFallback for any form the specialization set does not
/// cover, which the engine executes through the switch oracle.
MicroKind xmm_variant(const Instr& ins, MicroKind xx, MicroKind xm,
                      MicroOp* u) {
  if (!ins.dst.is_xmm()) return MicroKind::kFallback;
  u->a = ins.dst.reg;
  if (ins.src.is_xmm()) {
    u->b = ins.src.reg;
    return xx;
  }
  if (ins.src.is_mem()) {
    fill_ea(ins.src.mem, u);
    return xm;
  }
  return MicroKind::kFallback;
}

/// Same scheme for two-operand integer ops (gpr,gpr / gpr,imm).
MicroKind int_variant(const Instr& ins, MicroKind rr, MicroKind ri,
                      MicroOp* u) {
  if (!ins.dst.is_gpr()) return MicroKind::kFallback;
  u->a = ins.dst.reg;
  if (ins.src.is_gpr()) {
    u->b = ins.src.reg;
    return rr;
  }
  if (ins.src.is_imm()) {
    u->imm = ins.src.imm;
    return ri;
  }
  return MicroKind::kFallback;
}

MicroOp lower(const Instr& ins) {
  MicroOp u;
  const auto set = [&u](MicroKind k) {
    u.kind = static_cast<std::uint16_t>(k);
  };
  switch (ins.op) {
    case Opcode::kNop: set(MicroKind::kNop); break;
    case Opcode::kHalt: set(MicroKind::kHalt); break;

    case Opcode::kJmp: set(MicroKind::kJmp); u.imm = ins.src.imm; break;
    case Opcode::kJe: set(MicroKind::kJe); u.imm = ins.src.imm; break;
    case Opcode::kJne: set(MicroKind::kJne); u.imm = ins.src.imm; break;
    case Opcode::kJl: set(MicroKind::kJl); u.imm = ins.src.imm; break;
    case Opcode::kJle: set(MicroKind::kJle); u.imm = ins.src.imm; break;
    case Opcode::kJg: set(MicroKind::kJg); u.imm = ins.src.imm; break;
    case Opcode::kJge: set(MicroKind::kJge); u.imm = ins.src.imm; break;
    case Opcode::kJb: set(MicroKind::kJb); u.imm = ins.src.imm; break;
    case Opcode::kJbe: set(MicroKind::kJbe); u.imm = ins.src.imm; break;
    case Opcode::kJa: set(MicroKind::kJa); u.imm = ins.src.imm; break;
    case Opcode::kJae: set(MicroKind::kJae); u.imm = ins.src.imm; break;
    case Opcode::kCall:
      set(MicroKind::kCall);
      u.imm = ins.src.imm;
      u.aux = ins.addr + ins.size;  // return address, precomputed
      break;
    case Opcode::kRet: set(MicroKind::kRet); break;

    case Opcode::kMov:
      set(int_variant(ins, MicroKind::kMovRR, MicroKind::kMovRI, &u));
      break;
    case Opcode::kLoad:
      if (ins.dst.is_gpr() && ins.src.is_mem()) {
        set(MicroKind::kLoad);
        u.a = ins.dst.reg;
        fill_ea(ins.src.mem, &u);
      } else {
        set(MicroKind::kFallback);
      }
      break;
    case Opcode::kStore:
      if (ins.dst.is_mem() && ins.src.is_gpr()) {
        set(MicroKind::kStore);
        u.b = ins.src.reg;
        fill_ea(ins.dst.mem, &u);
      } else {
        set(MicroKind::kFallback);
      }
      break;
    case Opcode::kLea:
      if (ins.dst.is_gpr() && ins.src.is_mem()) {
        set(MicroKind::kLea);
        u.a = ins.dst.reg;
        fill_ea(ins.src.mem, &u);
      } else {
        set(MicroKind::kFallback);
      }
      break;

    case Opcode::kAdd:
      set(int_variant(ins, MicroKind::kAddRR, MicroKind::kAddRI, &u));
      break;
    case Opcode::kSub:
      set(int_variant(ins, MicroKind::kSubRR, MicroKind::kSubRI, &u));
      break;
    case Opcode::kImul:
      set(int_variant(ins, MicroKind::kImulRR, MicroKind::kImulRI, &u));
      break;
    case Opcode::kIdiv:
      set(int_variant(ins, MicroKind::kIdivRR, MicroKind::kIdivRI, &u));
      break;
    case Opcode::kIrem:
      set(int_variant(ins, MicroKind::kIremRR, MicroKind::kIremRI, &u));
      break;
    case Opcode::kAnd:
      set(int_variant(ins, MicroKind::kAndRR, MicroKind::kAndRI, &u));
      break;
    case Opcode::kOr:
      set(int_variant(ins, MicroKind::kOrRR, MicroKind::kOrRI, &u));
      break;
    case Opcode::kXor:
      set(int_variant(ins, MicroKind::kXorRR, MicroKind::kXorRI, &u));
      break;
    case Opcode::kShl:
      set(int_variant(ins, MicroKind::kShlRR, MicroKind::kShlRI, &u));
      break;
    case Opcode::kShr:
      set(int_variant(ins, MicroKind::kShrRR, MicroKind::kShrRI, &u));
      break;
    case Opcode::kSar:
      set(int_variant(ins, MicroKind::kSarRR, MicroKind::kSarRI, &u));
      break;
    case Opcode::kCmp:
      set(int_variant(ins, MicroKind::kCmpRR, MicroKind::kCmpRI, &u));
      break;
    case Opcode::kTest:
      set(int_variant(ins, MicroKind::kTestRR, MicroKind::kTestRI, &u));
      break;
    case Opcode::kPush: set(MicroKind::kPush); u.a = ins.dst.reg; break;
    case Opcode::kPop: set(MicroKind::kPop); u.a = ins.dst.reg; break;

    case Opcode::kMovqXR:
      set(MicroKind::kMovqXR);
      u.a = ins.dst.reg;
      u.b = ins.src.reg;
      break;
    case Opcode::kMovqRX:
      set(MicroKind::kMovqRX);
      u.a = ins.dst.reg;
      u.b = ins.src.reg;
      break;
    case Opcode::kMovsdXX:
      set(MicroKind::kMovsdXX);
      u.a = ins.dst.reg;
      u.b = ins.src.reg;
      break;
    case Opcode::kMovsdXM:
      set(MicroKind::kMovsdXM);
      u.a = ins.dst.reg;
      fill_ea(ins.src.mem, &u);
      break;
    case Opcode::kMovsdMX:
      set(MicroKind::kMovsdMX);
      u.b = ins.src.reg;
      fill_ea(ins.dst.mem, &u);
      break;
    case Opcode::kMovssXM:
      set(MicroKind::kMovssXM);
      u.a = ins.dst.reg;
      fill_ea(ins.src.mem, &u);
      break;
    case Opcode::kMovssMX:
      set(MicroKind::kMovssMX);
      u.b = ins.src.reg;
      fill_ea(ins.dst.mem, &u);
      break;
    case Opcode::kMovapdXX:
      set(MicroKind::kMovapdXX);
      u.a = ins.dst.reg;
      u.b = ins.src.reg;
      break;
    case Opcode::kMovapdXM:
      set(MicroKind::kMovapdXM);
      u.a = ins.dst.reg;
      fill_ea(ins.src.mem, &u);
      break;
    case Opcode::kMovapdMX:
      set(MicroKind::kMovapdMX);
      u.b = ins.src.reg;
      fill_ea(ins.dst.mem, &u);
      break;
    case Opcode::kPushX: set(MicroKind::kPushX); u.a = ins.dst.reg; break;
    case Opcode::kPopX: set(MicroKind::kPopX); u.a = ins.dst.reg; break;

    case Opcode::kAddsd:
      set(xmm_variant(ins, MicroKind::kAddsdXX, MicroKind::kAddsdXM, &u));
      break;
    case Opcode::kSubsd:
      set(xmm_variant(ins, MicroKind::kSubsdXX, MicroKind::kSubsdXM, &u));
      break;
    case Opcode::kMulsd:
      set(xmm_variant(ins, MicroKind::kMulsdXX, MicroKind::kMulsdXM, &u));
      break;
    case Opcode::kDivsd:
      set(xmm_variant(ins, MicroKind::kDivsdXX, MicroKind::kDivsdXM, &u));
      break;
    case Opcode::kMinsd:
      set(xmm_variant(ins, MicroKind::kMinsdXX, MicroKind::kMinsdXM, &u));
      break;
    case Opcode::kMaxsd:
      set(xmm_variant(ins, MicroKind::kMaxsdXX, MicroKind::kMaxsdXM, &u));
      break;
    case Opcode::kSqrtsd:
      set(xmm_variant(ins, MicroKind::kSqrtsdXX, MicroKind::kSqrtsdXM, &u));
      break;
    case Opcode::kUcomisd:
      set(xmm_variant(ins, MicroKind::kUcomisdXX, MicroKind::kUcomisdXM,
                      &u));
      break;
    case Opcode::kCvtsd2ss:
      set(xmm_variant(ins, MicroKind::kCvtsd2ssXX, MicroKind::kCvtsd2ssXM,
                      &u));
      break;
    case Opcode::kCvtss2sd:
      set(xmm_variant(ins, MicroKind::kCvtss2sdXX, MicroKind::kCvtss2sdXM,
                      &u));
      break;
    case Opcode::kCvtsi2sd:
      set(MicroKind::kCvtsi2sd);
      u.a = ins.dst.reg;
      u.b = ins.src.reg;
      break;
    case Opcode::kCvttsd2si:
      set(MicroKind::kCvttsd2si);
      u.a = ins.dst.reg;
      u.b = ins.src.reg;
      break;

    case Opcode::kAddss:
      set(xmm_variant(ins, MicroKind::kAddssXX, MicroKind::kAddssXM, &u));
      break;
    case Opcode::kSubss:
      set(xmm_variant(ins, MicroKind::kSubssXX, MicroKind::kSubssXM, &u));
      break;
    case Opcode::kMulss:
      set(xmm_variant(ins, MicroKind::kMulssXX, MicroKind::kMulssXM, &u));
      break;
    case Opcode::kDivss:
      set(xmm_variant(ins, MicroKind::kDivssXX, MicroKind::kDivssXM, &u));
      break;
    case Opcode::kMinss:
      set(xmm_variant(ins, MicroKind::kMinssXX, MicroKind::kMinssXM, &u));
      break;
    case Opcode::kMaxss:
      set(xmm_variant(ins, MicroKind::kMaxssXX, MicroKind::kMaxssXM, &u));
      break;
    case Opcode::kSqrtss:
      set(xmm_variant(ins, MicroKind::kSqrtssXX, MicroKind::kSqrtssXM, &u));
      break;
    case Opcode::kUcomiss:
      set(xmm_variant(ins, MicroKind::kUcomissXX, MicroKind::kUcomissXM,
                      &u));
      break;
    case Opcode::kCvtsi2ss:
      set(MicroKind::kCvtsi2ss);
      u.a = ins.dst.reg;
      u.b = ins.src.reg;
      break;
    case Opcode::kCvttss2si:
      set(MicroKind::kCvttss2si);
      u.a = ins.dst.reg;
      u.b = ins.src.reg;
      break;

    case Opcode::kAddpd:
      set(xmm_variant(ins, MicroKind::kAddpdXX, MicroKind::kAddpdXM, &u));
      break;
    case Opcode::kSubpd:
      set(xmm_variant(ins, MicroKind::kSubpdXX, MicroKind::kSubpdXM, &u));
      break;
    case Opcode::kMulpd:
      set(xmm_variant(ins, MicroKind::kMulpdXX, MicroKind::kMulpdXM, &u));
      break;
    case Opcode::kDivpd:
      set(xmm_variant(ins, MicroKind::kDivpdXX, MicroKind::kDivpdXM, &u));
      break;
    case Opcode::kSqrtpd:
      set(xmm_variant(ins, MicroKind::kSqrtpdXX, MicroKind::kSqrtpdXM, &u));
      break;
    case Opcode::kAddps:
      set(xmm_variant(ins, MicroKind::kAddpsXX, MicroKind::kAddpsXM, &u));
      break;
    case Opcode::kSubps:
      set(xmm_variant(ins, MicroKind::kSubpsXX, MicroKind::kSubpsXM, &u));
      break;
    case Opcode::kMulps:
      set(xmm_variant(ins, MicroKind::kMulpsXX, MicroKind::kMulpsXM, &u));
      break;
    case Opcode::kDivps:
      set(xmm_variant(ins, MicroKind::kDivpsXX, MicroKind::kDivpsXM, &u));
      break;
    case Opcode::kSqrtps:
      set(xmm_variant(ins, MicroKind::kSqrtpsXX, MicroKind::kSqrtpsXM, &u));
      break;

    case Opcode::kAndpd:
      set(xmm_variant(ins, MicroKind::kAndpdXX, MicroKind::kAndpdXM, &u));
      break;
    case Opcode::kOrpd:
      set(xmm_variant(ins, MicroKind::kOrpdXX, MicroKind::kOrpdXM, &u));
      break;
    case Opcode::kXorpd:
      set(xmm_variant(ins, MicroKind::kXorpdXX, MicroKind::kXorpdXM, &u));
      break;

    case Opcode::kIntrin:
      set(MicroKind::kIntrin);
      u.imm = ins.src.imm;
      break;

    default:
      set(MicroKind::kFallback);
      break;
  }
  return u;
}

}  // namespace

std::shared_ptr<const ExecutableImage> ExecutableImage::build(
    program::Image image) {
  // shared_ptr<ExecutableImage> first so members stay mutable during
  // construction; returned as pointer-to-const.
  auto exec = std::shared_ptr<ExecutableImage>(new ExecutableImage);
  exec->image_ = std::move(image);
  exec->image_.validate();
  exec->code_ = arch::decode_all(exec->image_.code, exec->image_.code_base);
  if (exec->code_.empty()) throw VmError("image has no code");
  exec->index_of_addr_.reserve(exec->code_.size() * 2);
  for (std::size_t i = 0; i < exec->code_.size(); ++i) {
    exec->index_of_addr_[exec->code_[i].addr] =
        static_cast<std::uint32_t>(i);
  }
  // Resolve branch/call targets to instruction indices once.
  for (Instr& ins : exec->code_) {
    const auto& info = arch::opcode_info(ins.op);
    if (info.is_branch || info.is_call) {
      const auto target = static_cast<std::uint64_t>(ins.src.imm);
      auto it = exec->index_of_addr_.find(target);
      if (it == exec->index_of_addr_.end()) {
        throw VmError(strformat(
            "control transfer at 0x%llx targets 0x%llx, which is not an "
            "instruction boundary",
            static_cast<unsigned long long>(ins.addr),
            static_cast<unsigned long long>(target)));
      }
      ins.src.imm = it->second;
    }
  }
  const std::size_t entry = exec->index_of(exec->image_.entry);
  if (entry == kNoIndex) {
    throw VmError(strformat(
        "entry point 0x%llx is not an instruction boundary",
        static_cast<unsigned long long>(exec->image_.entry)));
  }
  exec->entry_index_ = entry;

  exec->uops_.reserve(exec->code_.size());
  for (const Instr& ins : exec->code_) exec->uops_.push_back(lower(ins));
  return exec;
}

}  // namespace fpmix::vm
