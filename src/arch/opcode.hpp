// The fpmix virtual instruction set.
//
// The ISA is deliberately modelled on the subset of x86-64 + SSE2 that the
// paper's binary-modification framework manipulates: 16 general-purpose
// 64-bit registers, 16 XMM registers of 128 bits (two 64-bit lanes), scalar
// and packed IEEE-754 arithmetic, flag-setting compares with conditional
// branches, and a stack with push/pop/call/ret. Like x86, most arithmetic is
// two-operand destructive (`addsd a, b` computes `a = a + b`).
//
// Deviations from x86 are intentional simplifications that do not affect the
// mixed-precision mechanics (documented in DESIGN.md): integer divide is a
// plain two-operand op instead of RDX:RAX, and immediates are always 64-bit.
#pragma once

#include <cstdint>

namespace fpmix::arch {

enum class Opcode : std::uint8_t {
  kNop = 0,
  kHalt,

  // -- Control flow. Branch/call targets are absolute addresses in `src`.
  kJmp,
  kJe,
  kJne,
  kJl,
  kJle,
  kJg,
  kJge,
  kJb,
  kJbe,
  kJa,
  kJae,
  kCall,
  kRet,

  // -- Integer (GPR) operations.
  kMov,    // gpr <- gpr|imm
  kLoad,   // gpr <- [mem], 64-bit
  kStore,  // [mem] <- gpr, 64-bit
  kLea,    // gpr <- effective address of mem operand
  kAdd,    // gpr <- gpr + (gpr|imm)
  kSub,
  kImul,
  kIdiv,   // signed quotient (traps on divide-by-zero)
  kIrem,   // signed remainder
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,    // logical right shift
  kSar,    // arithmetic right shift
  kCmp,    // flags <- compare gpr, (gpr|imm)
  kTest,   // flags <- gpr & (gpr|imm)
  kPush,   // push gpr (8 bytes)
  kPop,

  // -- XMM data movement (bit-preserving; never instrumented -- tagged
  //    values flow through moves untouched, exactly as on x86).
  kMovqXR,    // xmm.lane0 <- gpr (64-bit)
  kMovqRX,    // gpr <- xmm.lane0
  kMovsdXX,   // xmm.lane0 <- xmm.lane0 (upper lane of dst preserved)
  kMovsdXM,   // xmm.lane0 <- [mem] 64-bit (upper lane zeroed, as x86 movsd)
  kMovsdMX,   // [mem] <- xmm.lane0
  kMovssXM,   // xmm low 32 bits <- [mem] 32-bit (rest zeroed)
  kMovssMX,   // [mem] 32-bit <- xmm low 32 bits
  kMovapdXX,  // xmm <- xmm, full 128 bits
  kMovapdXM,  // xmm <- [mem] 128-bit
  kMovapdMX,  // [mem] <- xmm 128-bit
  kPushX,     // push xmm, full 128 bits
  kPopX,

  // -- Scalar double-precision arithmetic (lane 0 as f64).
  kAddsd,
  kSubsd,
  kMulsd,
  kDivsd,
  kSqrtsd,  // dst = sqrt(src); dst not read
  kMinsd,
  kMaxsd,
  kUcomisd,   // flags <- compare f64
  kCvtsd2ss,  // low 32 of dst <- (f32)(f64 src lane0); rest of lane0 zeroed
  kCvtss2sd,  // dst lane0 <- (f64)(f32 low 32 of src)
  kCvtsi2sd,  // xmm lane0 <- (f64)(i64 gpr)
  kCvttsd2si, // gpr <- truncate-to-i64(f64 xmm lane0)

  // -- Scalar single-precision arithmetic (low 32 bits as f32).
  kAddss,
  kSubss,
  kMulss,
  kDivss,
  kSqrtss,
  kMinss,
  kMaxss,
  kUcomiss,
  kCvtsi2ss,
  kCvttss2si,

  // -- Packed arithmetic. *pd: two f64 lanes. *ps: four f32 lanes.
  kAddpd,
  kSubpd,
  kMulpd,
  kDivpd,
  kSqrtpd,
  kAddps,
  kSubps,
  kMulps,
  kDivps,
  kSqrtps,

  // -- Bitwise ops on full 128-bit XMM values.
  kAndpd,
  kOrpd,
  kXorpd,

  // -- Intrinsic call: `src` immediate selects an intrinsics::Id. Arguments
  //    and results use the intrinsic ABI (xmm0/xmm1, r0..r3).
  kIntrin,

  kNumOpcodes,
};

/// Category bits describing how each opcode interacts with control flow and
/// with double-precision data. The instrumenter is driven entirely by this
/// table; adding an opcode without classifying it is a compile-time error
/// (the table is indexed by every enumerator).
struct OpcodeInfo {
  const char* name;       // disassembler mnemonic
  bool is_branch;         // jmp or conditional branch (target in src imm)
  bool is_cond_branch;    // has fall-through successor
  bool is_call;
  bool is_ret;
  bool is_halt;
  // Double-precision dataflow (drives Figure 5/6 snippet generation):
  bool reads_dst_f64;     // dst operand is read as f64 (e.g. addsd dst, src)
  bool reads_src_f64;     // src operand is read as f64
  bool writes_dst_f64;    // dst receives an f64 result
  std::uint8_t fp_lanes;  // 0 = not FP, 1 = scalar, 2 = packed (two f64)
  // The single-precision twin used when a configuration maps the
  // instruction to `single` (kNop when the opcode is not a candidate).
  Opcode single_twin;
};

/// Returns the static info record for `op`.
const OpcodeInfo& opcode_info(Opcode op);

/// Mnemonic, e.g. "addsd".
const char* opcode_name(Opcode op);

/// True when the instruction is a member of the candidate set Pd: a
/// double-precision instruction that a precision configuration may map to
/// `single` (Section 2.1 of the paper).
bool is_replacement_candidate(Opcode op);

/// True when the instruction consumes f64 operands and therefore must be
/// wrapped with tag-check/upcast snippets once *any* instruction in the
/// program has been replaced (Section 2.3: "once we replace any instruction
/// ... we must replace all floating-point instructions with our snippets").
bool touches_f64(Opcode op);

/// True for instructions that terminate a basic block (branches, ret, halt).
bool ends_basic_block(Opcode op);

}  // namespace fpmix::arch
