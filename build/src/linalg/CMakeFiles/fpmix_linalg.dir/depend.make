# Empty dependencies file for fpmix_linalg.
# This may be replaced when dependencies are built.
