// Textual counterpart of the paper's GUI configuration editor (Figure 4):
// renders the program-structure tree with precision flags, candidate counts
// and profile weights, so a developer can see where replacements landed.
//
// Usage:  config_explorer <ep|cg|ft|mg|bt|lu|sp|amg|superlu> [S|W|A|C]
//                         [--config FILE] [--search]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "arch/disasm.hpp"
#include "config/textio.hpp"
#include "kernels/workload.hpp"
#include "program/program.hpp"
#include "search/search.hpp"
#include "vm/machine.hpp"

using namespace fpmix;

namespace {

char flag_char(std::optional<config::Precision> p) {
  return p.has_value() ? config::precision_flag(*p) : ' ';
}

char resolved_char(const config::StructureIndex& ix,
                   const config::PrecisionConfig& cfg, std::size_t instr) {
  return config::precision_flag(cfg.resolve(ix, instr));
}

void render(const config::StructureIndex& ix,
            const config::PrecisionConfig& cfg) {
  for (std::size_t mi = 0; mi < ix.modules().size(); ++mi) {
    const auto& m = ix.modules()[mi];
    std::printf("%c MODULE %-24s (%zu candidates)\n",
                flag_char(cfg.module_flag(mi)), m.name.c_str(),
                m.candidates.size());
    for (std::size_t fi : m.funcs) {
      const auto& f = ix.funcs()[fi];
      std::printf("%c   FUNC %-24s (%zu blocks, %zu candidates, "
                  "weight %llu)\n",
                  flag_char(cfg.func_flag(fi)), f.name.c_str(),
                  f.blocks.size(), f.candidates.size(),
                  static_cast<unsigned long long>(
                      ix.candidate_weight_of_func(fi)));
      for (std::size_t bi : f.blocks) {
        const auto& blk = ix.blocks()[bi];
        if (blk.candidates.empty()) continue;
        std::printf("%c     BBLK 0x%-8llx (weight %llu)\n",
                    flag_char(cfg.block_flag(bi)),
                    static_cast<unsigned long long>(blk.head_addr),
                    static_cast<unsigned long long>(
                        ix.candidate_weight_of_block(bi)));
        for (std::size_t ii : blk.candidates) {
          const auto& ins = ix.instrs()[ii];
          std::printf("%c       INSN %s   x%llu\n",
                      resolved_char(ix, cfg, ii),
                      arch::instr_to_config_string(ins.instr).c_str(),
                      static_cast<unsigned long long>(ins.exec_weight));
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string bench = argc > 1 ? argv[1] : "ep";
  char cls = 'S';
  std::string config_path;
  bool do_search = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config" && i + 1 < argc) config_path = argv[++i];
    else if (arg == "--search") do_search = true;
    else if (arg.size() == 1) cls = arg[0];
  }

  kernels::Workload w;
  if (bench == "ep") w = kernels::make_ep(cls);
  else if (bench == "cg") w = kernels::make_cg(cls);
  else if (bench == "ft") w = kernels::make_ft(cls);
  else if (bench == "mg") w = kernels::make_mg(cls);
  else if (bench == "bt") w = kernels::make_bt(cls);
  else if (bench == "lu") w = kernels::make_lu(cls);
  else if (bench == "sp") w = kernels::make_sp(cls);
  else if (bench == "amg") w = kernels::make_amg();
  else if (bench == "superlu") w = kernels::make_superlu(1e-4);
  else {
    std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
    return 2;
  }

  const program::Image img = kernels::build_image(w);
  auto index = config::StructureIndex::build(program::lift(img));

  // Profile so the tree shows execution weights (the GUI's hotness view).
  {
    vm::Machine m(img);
    if (m.run().ok()) index.apply_profile(m.profile_by_address());
  }

  config::PrecisionConfig cfg;
  if (!config_path.empty()) {
    std::ifstream f(config_path);
    std::stringstream ss;
    ss << f.rdbuf();
    cfg = config::from_text(index, ss.str());
    std::printf("loaded configuration from %s\n\n", config_path.c_str());
  } else if (do_search) {
    const auto verifier = kernels::make_verifier(w, img);
    search::SearchOptions opts;
    opts.keep_log = false;
    const search::SearchResult res =
        search::run_search(img, &index, *verifier, opts);
    cfg = res.final_config;
    std::printf("showing the search's final configuration (%.1f%% static "
                "replacement)\n\n",
                res.stats.static_pct);
  }

  render(index, cfg);
  return 0;
}
