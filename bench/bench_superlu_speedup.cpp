// Section 3.3 reproduction: SuperLU-analogue native single vs double.
//
// Paper: "The single-precision manually recompiled version achieves a 1.16X
// speedup over the double-precision version ... The reported error for the
// double-precision version of the solver is 2.16e-12, and the reported
// error for the single-precision version is 5.86e-04."
//
// Measured natively on the banded solver twins over a memplus-scale system
// (~18K rows, as in the paper's data set).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "linalg/banded.hpp"
#include "support/timer.hpp"

namespace {

constexpr std::size_t kN = 18000;  // memplus has 17758 rows
constexpr std::size_t kBw = 48;

const fpmix::linalg::Banded<double>& system_matrix() {
  static const auto* a = new fpmix::linalg::Banded<double>(
      fpmix::linalg::make_memplus_like(kN, kBw, 0x51));
  return *a;
}

template <typename T>
double solve_once(double* err_out) {
  const auto& ad = system_matrix();
  const std::vector<double> ones(kN, 1.0);
  const std::vector<double> bd = ad.matvec(ones);

  auto a = ad.template cast<T>();
  std::vector<T> b(kN);
  for (std::size_t i = 0; i < kN; ++i) b[i] = static_cast<T>(bd[i]);

  fpmix::Timer t;
  fpmix::linalg::banded_lu_factor(&a);
  const std::vector<T> x = fpmix::linalg::banded_lu_solve(a, b);
  const double secs = t.elapsed_seconds();
  if (err_out != nullptr) {
    *err_out = fpmix::linalg::solution_error(x, ones);
  }
  return secs;
}

void BM_SuperLuDouble(benchmark::State& state) {
  for (auto _ : state) {
    double err;
    benchmark::DoNotOptimize(solve_once<double>(&err));
  }
}
void BM_SuperLuSingle(benchmark::State& state) {
  for (auto _ : state) {
    double err;
    benchmark::DoNotOptimize(solve_once<float>(&err));
  }
}

BENCHMARK(BM_SuperLuDouble)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SuperLuSingle)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("Section 3.3: SuperLU-analogue native solve, double vs "
              "single\n");
  std::printf("(paper: 1.16X speedup; errors 2.16e-12 vs 5.86e-04)\n\n");

  double err_d = 0, err_f = 0;
  // Warm the matrix cache, then take the best of 3 for the summary.
  double td = 1e30, ts = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    td = std::min(td, solve_once<double>(&err_d));
    ts = std::min(ts, solve_once<float>(&err_f));
  }
  std::printf("double: %.3fs, reported error %.3e\n", td, err_d);
  std::printf("single: %.3fs, reported error %.3e\n", ts, err_f);
  std::printf("speedup: %.2fX\n\n", td / ts);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
