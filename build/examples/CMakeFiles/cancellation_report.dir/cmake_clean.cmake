file(REMOVE_RECURSE
  "CMakeFiles/cancellation_report.dir/cancellation_report.cpp.o"
  "CMakeFiles/cancellation_report.dir/cancellation_report.cpp.o.d"
  "cancellation_report"
  "cancellation_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cancellation_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
