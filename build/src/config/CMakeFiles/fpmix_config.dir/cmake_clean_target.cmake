file(REMOVE_RECURSE
  "libfpmix_config.a"
)
