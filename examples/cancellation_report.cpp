// The dynamic cancellation detector (Section 4.4) as a standalone tool:
// instruments a benchmark, runs it, and reports where significant bits were
// lost to subtractive cancellation -- per instruction and as a magnitude
// histogram.
//
// Usage:  cancellation_report <ep|cg|ft|mg|bt|lu|sp|amg> [S|W|A|C]
//                             [--min-bits N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "instrument/cancellation.hpp"
#include "kernels/workload.hpp"
#include "vm/machine.hpp"

using namespace fpmix;

int main(int argc, char** argv) {
  std::string bench = argc > 1 ? argv[1] : "cg";
  char cls = 'W';
  instrument::CancellationOptions opts;
  opts.shadow_iters = 0;  // report-only runs use the lightweight detector
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--min-bits" && i + 1 < argc) {
      opts.min_cancel_bits = std::atoi(argv[++i]);
    } else if (arg.size() == 1) {
      cls = arg[0];
    }
  }

  kernels::Workload w;
  if (bench == "ep") w = kernels::make_ep(cls);
  else if (bench == "cg") w = kernels::make_cg(cls);
  else if (bench == "ft") w = kernels::make_ft(cls);
  else if (bench == "mg") w = kernels::make_mg(cls);
  else if (bench == "bt") w = kernels::make_bt(cls);
  else if (bench == "lu") w = kernels::make_lu(cls);
  else if (bench == "sp") w = kernels::make_sp(cls);
  else if (bench == "amg") w = kernels::make_amg();
  else {
    std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
    return 2;
  }

  const program::Image img = kernels::build_image(w);
  const instrument::CancellationResult inst =
      instrument::instrument_cancellation(img, opts);
  vm::Machine m(inst.image);
  const vm::RunResult r = m.run();
  if (!r.ok()) {
    std::fprintf(stderr, "run failed: %s\n", r.trap_message.c_str());
    return 1;
  }
  const instrument::CancellationReport rep =
      instrument::read_cancellation_report(m, inst.layout);

  std::printf("%s: %llu cancellation events (>= %d bits) across %zu "
              "add/sub sites\n\n",
              w.name.c_str(),
              static_cast<unsigned long long>(rep.total_events),
              opts.min_cancel_bits, inst.layout.num_slots);

  std::printf("top sites:\n");
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sites(
      rep.events_by_addr.begin(), rep.events_by_addr.end());
  std::sort(sites.begin(), sites.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (std::size_t i = 0; i < std::min<std::size_t>(10, sites.size()); ++i) {
    std::printf("  0x%-10llx %12llu events\n",
                static_cast<unsigned long long>(sites[i].first),
                static_cast<unsigned long long>(sites[i].second));
  }

  std::printf("\ncancelled-bits histogram:\n");
  for (std::size_t bin = 0; bin < 64; ++bin) {
    if (rep.bits_histogram[bin] == 0) continue;
    std::printf("  %2zu bits: %12llu\n", bin,
                static_cast<unsigned long long>(rep.bits_histogram[bin]));
  }
  return 0;
}
