#include "instrument/incremental.hpp"

#include <map>
#include <utility>

#include "support/error.hpp"

namespace fpmix::instrument {

IncrementalPatcher::IncrementalPatcher(const program::Image& original,
                                       const config::StructureIndex& index,
                                       InstrumentOptions options)
    : prog_(program::lift(original)),
      index_(index),
      options_(std::move(options)) {
  prog_.validate();
  FPMIX_CHECK(index_.funcs().size() == prog_.functions.size());
  func_instrs_.resize(prog_.functions.size());
  for (std::size_t i = 0; i < index_.instrs().size(); ++i) {
    func_instrs_[index_.instrs()[i].func].push_back(i);
  }
  variants_.resize(prog_.functions.size());
}

std::string IncrementalPatcher::signature_of(
    std::size_t f, const config::PrecisionConfig& cfg) const {
  const auto& instrs = func_instrs_[f];
  std::string sig;
  sig.reserve(instrs.size());
  for (std::size_t i : instrs) {
    config::Precision p = cfg.resolve(index_, i);
    // Mirror instrument_function's demotion rule so configs that differ
    // only in unreplaceable ways share a variant.
    if (p == config::Precision::kSingle && !index_.instrs()[i].candidate) {
      p = config::Precision::kDouble;
    }
    sig.push_back(config::precision_flag(p));
  }
  return sig;
}

IncrementalPatcher::Build IncrementalPatcher::patch(
    const config::PrecisionConfig& cfg) {
  const std::size_t n = prog_.functions.size();
  Build b;
  b.funcs_total = n;
  b.variants.resize(n);
  std::vector<const program::FuncLayout*> layouts(n);
  for (std::size_t f = 0; f < n; ++f) {
    std::string sig = signature_of(f, cfg);
    auto& cache = variants_[f];
    auto it = cache.find(sig);
    if (it == cache.end()) {
      ++variant_misses_;
      if (cache.size() >= kMaxVariantsPerFunc) cache.clear();
      // Un-demoted precisions: instrument_function applies the demotion
      // rule itself, exactly as the from-scratch path does.
      std::map<std::uint64_t, config::Precision> pmap;
      for (std::size_t i : func_instrs_[f]) {
        pmap[index_.instrs()[i].addr] = cfg.resolve(index_, i);
      }
      FuncVariant v;
      const program::Function pf =
          instrument_function(prog_.functions[f], pmap, &v.stats, options_);
      v.layout = program::layout_function(pf);
      it = cache.emplace(std::move(sig), std::move(v)).first;
    } else {
      ++variant_hits_;
      ++b.funcs_reused;
    }
    b.variants[f] = &it->second;
    layouts[f] = &it->second.layout;
    b.stats.add(it->second.stats);
  }
  b.image = program::assemble(prog_, layouts);
  return b;
}

std::shared_ptr<const vm::ExecutableImage> IncrementalPatcher::predecode(
    Build&& build) {
  std::vector<std::shared_ptr<const vm::CodeSegment>> segments(
      build.variants.size());
  for (std::size_t f = 0; f < build.variants.size(); ++f) {
    FuncVariant* v = build.variants[f];
    if (v->segment == nullptr) {
      v->segment = vm::CodeSegment::build(v->layout);
    }
    segments[f] = v->segment;
  }
  return vm::ExecutableImage::build_spliced(std::move(build.image),
                                            segments);
}

}  // namespace fpmix::instrument
