// Warm-vs-cold search with the persistent trial cache.
//
// Cold: fresh journal, every trial is patched + run + verified live.
// Warm: second run over the same journal -- every trial (including the
// final composition) must be a cache hit, so the only remaining cost is
// the profiling run and the search bookkeeping itself. The gap between the
// two columns is what a crash no longer costs.
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "search/search.hpp"

namespace {

using namespace fpmix;

void run_row(const kernels::Workload& w) {
  const std::string journal =
      "bench_resume_" + w.name + ".journal.jsonl";
  std::remove(journal.c_str());

  search::SearchOptions opts;
  opts.keep_log = false;
  opts.journal_path = journal;

  double cold_s = 0.0, warm_s = 0.0;
  std::size_t trials = 0;
  double warm_hit = 0.0;
  bool identical = false;
  {
    const program::Image img = kernels::build_image(w);
    auto ix = config::StructureIndex::build(program::lift(img));
    const auto verifier = kernels::make_verifier(w, img);
    Timer t;
    const search::SearchResult cold =
        search::run_search(img, &ix, *verifier, opts);
    cold_s = t.elapsed_seconds();
    trials = cold.configs_tested;

    auto ix2 = config::StructureIndex::build(program::lift(img));
    t.reset();
    const search::SearchResult warm =
        search::run_search(img, &ix2, *verifier, opts);
    warm_s = t.elapsed_seconds();
    warm_hit = warm.metrics.cache_hit_rate;
    identical = warm.final_config == cold.final_config &&
                warm.configs_tested == cold.configs_tested;
  }
  std::printf("  %-24s %6zu %9.2fs %9.2fs %7.1fx %6.1f%% %s\n",
              w.name.c_str(), trials, cold_s, warm_s,
              warm_s > 0 ? cold_s / warm_s : 0.0, warm_hit,
              identical ? "identical" : "MISMATCH");
  std::fflush(stdout);
  std::remove(journal.c_str());
}

}  // namespace

int main() {
  std::printf("Warm-vs-cold search (journal-backed trial cache)\n");
  std::printf("  %-24s %6s %10s %10s %8s %7s %s\n", "workload", "trials",
              "cold", "warm", "speedup", "hit", "result");
  bench::print_rule();
  run_row(kernels::make_ep('W'));
  run_row(kernels::make_mg('W'));
  run_row(kernels::make_ft('W'));
  run_row(kernels::make_superlu(2.5e-5));
  return 0;
}
