// Differential testing of the two VM execution engines.
//
// The micro-op engine (Engine::kMicroOp) must be observationally
// indistinguishable from the reference switch interpreter
// (Engine::kSwitch): bit-identical outputs, identical trap status and
// message, identical retired counts and identical per-address profiles --
// on clean runs, on every trap class (tag escape, division, out-of-bounds,
// budget), and on instrumented images. A shared ExecutableImage must also
// behave identically from many Machines across threads.
#include <gtest/gtest.h>

#include <bit>
#include <functional>
#include <thread>

#include "arch/encode.hpp"
#include "arch/tag.hpp"
#include "asm/assembler.hpp"
#include "config/config.hpp"
#include "instrument/patch.hpp"
#include "lang/builder.hpp"
#include "lang/compile.hpp"
#include "program/layout.hpp"
#include "program/program.hpp"
#include "support/rng.hpp"
#include "vm/machine.hpp"

namespace fpmix {
namespace {

using arch::Opcode;
using arch::Operand;
namespace in = arch::intrinsics;

struct EngineOut {
  vm::RunResult result;
  std::vector<double> f64;
  std::vector<std::int64_t> i64;
  std::uint64_t retired = 0;
  std::map<std::uint64_t, std::uint64_t> profile;
};

EngineOut run_engine(const std::shared_ptr<const vm::ExecutableImage>& exec,
                     vm::Engine engine, vm::Machine::Options opts) {
  opts.engine = engine;
  vm::Machine m(exec, opts);
  EngineOut o;
  o.result = m.run();
  o.f64 = m.output_f64();
  o.i64 = m.output_i64();
  o.retired = m.instructions_retired();
  o.profile = m.profile_by_address();
  return o;
}

/// Runs `img` on both engines (sharing one predecoded image) and demands
/// bit-identical observable behaviour.
void expect_engines_identical(const program::Image& img,
                              vm::Machine::Options opts = {},
                              const char* what = "") {
  const auto exec = vm::ExecutableImage::build(img);
  const EngineOut micro = run_engine(exec, vm::Engine::kMicroOp, opts);
  const EngineOut ref = run_engine(exec, vm::Engine::kSwitch, opts);

  EXPECT_EQ(micro.result.status, ref.result.status) << what;
  EXPECT_EQ(micro.result.trap_message, ref.result.trap_message) << what;
  EXPECT_EQ(micro.retired, ref.retired) << what;

  ASSERT_EQ(micro.f64.size(), ref.f64.size()) << what;
  for (std::size_t i = 0; i < ref.f64.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(micro.f64[i]),
              std::bit_cast<std::uint64_t>(ref.f64[i]))
        << what << " f64 output " << i;
  }
  EXPECT_EQ(micro.i64, ref.i64) << what;
  EXPECT_EQ(micro.profile, ref.profile) << what;
}

// ---------------------------------------------------------------------------
// Fuzzed mini-language programs, original and instrumented.

/// Random type-correct program: scalar pool + one array, mutated by loops,
/// conditionals, arithmetic chains and math intrinsics (the same shape the
/// instrumentation fuzz test uses).
lang::ProgramModel random_model(std::uint64_t seed) {
  SplitMix64 rng(seed);
  lang::Builder b;

  constexpr int kScalars = 5;
  std::vector<lang::Var> vars;
  for (int i = 0; i < kScalars; ++i) {
    vars.push_back(b.var_f64("v" + std::to_string(i)));
  }
  lang::Arr arr = b.array_f64("arr", 16);
  lang::Var idx = b.var_i64("idx");

  b.begin_func("main", "fuzz");
  for (int i = 0; i < kScalars; ++i) {
    b.set(vars[i], b.cf(rng.next_double(0.5, 3.0)));
  }
  b.for_(idx, b.ci(0), b.ci(16), [&] {
    b.store(arr, lang::Expr(idx),
            to_f64(idx) * b.cf(rng.next_double(0.01, 0.2)) + b.cf(1.0));
  });

  const auto rand_var = [&]() -> lang::Expr {
    return lang::Expr(vars[rng.next_below(kScalars)]);
  };
  const std::function<lang::Expr(int)> rand_expr = [&](int depth) {
    if (depth <= 0 || rng.next_below(3) == 0) {
      switch (rng.next_below(3)) {
        case 0: return rand_var();
        case 1: return b.cf(rng.next_double(0.25, 2.0));
        default: return arr[b.ci(static_cast<std::int64_t>(
            rng.next_below(16)))];
      }
    }
    const lang::Expr a = rand_expr(depth - 1);
    const lang::Expr c = rand_expr(depth - 1);
    switch (rng.next_below(7)) {
      case 0: return a + c;
      case 1: return a - c;
      case 2: return a * c;
      case 3: return a / (fabs_(c) + b.cf(1.0));
      case 4: return sqrt_(fabs_(a) + b.cf(0.5));
      case 5: return min_(a, c);
      default: return sin_(a);
    }
  };

  const int num_stmts = 6 + static_cast<int>(rng.next_below(8));
  for (int s = 0; s < num_stmts; ++s) {
    switch (rng.next_below(4)) {
      case 0:
        b.set(vars[rng.next_below(kScalars)], rand_expr(3));
        break;
      case 1:
        b.store(arr,
                b.ci(static_cast<std::int64_t>(rng.next_below(16))),
                rand_expr(2));
        break;
      case 2: {
        const auto body_var = rng.next_below(kScalars);
        lang::Var loop_i = b.var_i64("i" + std::to_string(s));
        const auto iters =
            static_cast<std::int64_t>(2 + rng.next_below(6));
        b.for_(loop_i, b.ci(0), b.ci(iters), [&] {
          b.set(vars[body_var],
                lang::Expr(vars[body_var]) * b.cf(0.75) + rand_expr(2));
        });
        break;
      }
      default: {
        const auto tgt = rng.next_below(kScalars);
        b.if_else(rand_expr(1) < rand_expr(1),
                  [&] { b.set(vars[tgt], rand_expr(2)); },
                  [&] { b.set(vars[tgt], rand_expr(2) + b.cf(0.125)); });
        break;
      }
    }
  }
  for (int i = 0; i < kScalars; ++i) {
    b.output(lang::Expr(vars[i]) * b.cf(1.0));
  }
  b.end_func();
  return b.take_model();
}

class EngineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EngineFuzz, EnginesBitIdenticalOnFuzzedPrograms) {
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t seed =
        0xE41E * static_cast<std::uint64_t>(GetParam() + 1) +
        static_cast<std::uint64_t>(trial);
    const lang::ProgramModel model = random_model(seed);
    const program::Image orig =
        program::relayout(lang::compile(model, lang::Mode::kDouble));
    expect_engines_identical(orig, {}, "original");

    // All-single instrumented build: exercises the cvt/ss handlers, the
    // snippet call/ret paths and (on analysis misses) the tag trap.
    const auto ix = config::StructureIndex::build(program::lift(orig));
    config::PrecisionConfig cfg;
    for (std::size_t m = 0; m < ix.modules().size(); ++m) {
      cfg.set_module(m, config::Precision::kSingle);
    }
    const program::Image inst = instrument::instrument_image(orig, ix, cfg);
    expect_engines_identical(inst, {}, "instrumented");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz, ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// Trap classes: the message, status and retired count must match exactly.

TEST(EngineDiff, TaggedEscapeTrapIdentical) {
  casm::Assembler a;
  a.begin_function("main", "main");
  const std::uint64_t boxed = arch::make_tagged(1.0f);
  a.emit(Opcode::kMov, Operand::gpr(1),
         Operand::make_imm(static_cast<std::int64_t>(boxed)));
  a.emit(Opcode::kMovqXR, Operand::xmm(0), Operand::gpr(1));
  a.emit(Opcode::kAddsd, Operand::xmm(0), Operand::xmm(0));
  a.halt();
  a.end_function();
  const program::Image img = program::relayout(a.finish("main"));
  expect_engines_identical(img, {}, "tagged escape");

  const auto exec = vm::ExecutableImage::build(img);
  const EngineOut o = run_engine(exec, vm::Engine::kMicroOp, {});
  EXPECT_EQ(o.result.status, vm::RunResult::Status::kTrapped);
  EXPECT_NE(o.result.trap_message.find("replaced-double sentinel"),
            std::string::npos);
}

TEST(EngineDiff, TagTrapDisabledIdentical) {
  casm::Assembler a;
  a.begin_function("main", "main");
  const std::uint64_t boxed = arch::make_tagged(1.0f);
  a.emit(Opcode::kMov, Operand::gpr(1),
         Operand::make_imm(static_cast<std::int64_t>(boxed)));
  a.emit(Opcode::kMovqXR, Operand::xmm(0), Operand::gpr(1));
  a.emit(Opcode::kAddsd, Operand::xmm(0), Operand::xmm(0));
  a.halt();
  a.end_function();
  vm::Machine::Options opts;
  opts.tag_trap = false;
  expect_engines_identical(program::relayout(a.finish("main")), opts,
                           "tag trap disabled");
}

TEST(EngineDiff, DivisionTrapsIdentical) {
  for (const Opcode op : {Opcode::kIdiv, Opcode::kIrem}) {
    casm::Assembler a;
    a.begin_function("main", "main");
    a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(7));
    a.emit(Opcode::kMov, Operand::gpr(2), Operand::make_imm(0));
    a.emit(op, Operand::gpr(1), Operand::gpr(2));
    a.halt();
    a.end_function();
    expect_engines_identical(program::relayout(a.finish("main")), {},
                             arch::opcode_name(op));
  }
}

TEST(EngineDiff, OutOfBoundsTrapsIdentical) {
  // Read and write, both far out of range.
  for (const bool is_store : {false, true}) {
    casm::Assembler a;
    a.begin_function("main", "main");
    a.emit(Opcode::kMov, Operand::gpr(1),
           Operand::make_imm(1ll << 40));
    if (is_store) {
      a.emit(Opcode::kStore, Operand::mem_bd(1, 0), Operand::gpr(2));
    } else {
      a.emit(Opcode::kLoad, Operand::gpr(2), Operand::mem_bd(1, 0));
    }
    a.halt();
    a.end_function();
    expect_engines_identical(program::relayout(a.finish("main")), {},
                             is_store ? "oob store" : "oob load");
  }
}

TEST(EngineDiff, BudgetExhaustionIdentical) {
  casm::Assembler a;
  a.begin_function("main", "main");
  auto l = a.new_label();
  a.bind(l);
  a.emit(Opcode::kNop);
  a.jmp(l);
  a.end_function();
  vm::Machine::Options opts;
  opts.max_instructions = 10'000;
  expect_engines_identical(program::relayout(a.finish("main")), opts,
                           "budget");
}

TEST(EngineDiff, RangeTrapIdentical) {
  casm::Assembler a;
  a.begin_function("main", "main");
  const auto huge = a.data_f64(1e300);
  a.emit(Opcode::kMovsdXM, Operand::xmm(0),
         Operand::mem_abs(static_cast<std::int32_t>(huge)));
  a.emit(Opcode::kCvttsd2si, Operand::gpr(1), Operand::xmm(0));
  a.halt();
  a.end_function();
  expect_engines_identical(program::relayout(a.finish("main")), {},
                           "cvttsd2si range");
}

// ---------------------------------------------------------------------------
// Shared predecoded images.

TEST(SharedExecImage, ManyMachinesAcrossThreads) {
  const lang::ProgramModel model = random_model(0x5EED);
  const program::Image img =
      program::relayout(lang::compile(model, lang::Mode::kDouble));
  const auto exec = vm::ExecutableImage::build(img);

  vm::Machine reference(exec);
  EXPECT_EQ(reference.executable().get(), exec.get());
  const vm::RunResult ref_run = reference.run();
  ASSERT_TRUE(ref_run.ok()) << ref_run.trap_message;
  const std::vector<double> want = reference.output_f64();

  constexpr int kThreads = 4;
  std::vector<std::vector<double>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&exec, &got, i] {
      vm::Machine m(exec, {});
      if (m.run().ok()) got[static_cast<std::size_t>(i)] = m.output_f64();
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)].size(), want.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[static_cast<std::size_t>(
                    i)][j]),
                std::bit_cast<std::uint64_t>(want[j]));
    }
  }
}

}  // namespace
}  // namespace fpmix
