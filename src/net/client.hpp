// EndpointClient: one scheduler-side session to a runner_serve daemon.
//
// Owns the socket, the frame reassembly buffer, and the handshake state for
// a single endpoint. The connect path is synchronous (the scheduler brings
// fleets up before searching); everything after the HelloAck is
// non-blocking -- submit() queues trial frames onto the wire, drain()
// collects whatever results have arrived, and the scheduler multiplexes
// many clients through one poll(2) set via fd().
//
// Any transport damage (EOF, socket error, corrupt frame, protocol
// violation) kills the session permanently: drain() returns false, the
// scheduler reroutes in-flight trials to other shards, and reconnection is
// the scheduler's job (with jittered backoff). There is no in-place
// recovery, exactly like a dead worker pipe in the local pool.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace fpmix::net {

class EndpointClient {
 public:
  /// Connects, sends the hello, and waits (bounded) for the ack. Returns
  /// nullptr with *error on refusal, timeout, rejection, or any protocol
  /// damage during the handshake.
  static std::unique_ptr<EndpointClient> connect(const Endpoint& ep,
                                                 const HelloMsg& hello,
                                                 int connect_timeout_ms,
                                                 int hello_timeout_ms,
                                                 std::string* error);

  /// Queues one trial on the session. False when the session is dead or
  /// the send fails (the caller reroutes the trial).
  bool submit(const TrialMsg& m);

  /// Ships a shard-cache fill. Failures are non-fatal to the caller
  /// (cache fills are advisory) but kill this session like any send error.
  bool insert(const CacheInsertMsg& m);

  /// Streams one CRC-sealed journal line for replication. Like insert(),
  /// advisory to the caller but fatal to the session on send failure.
  bool journal_append(const JournalAppendMsg& m);

  /// Sends a heartbeat probe; the pong comes back through drain().
  bool ping(const PingMsg& m);

  /// Requests a shard digest (anti-entropy gossip); the ack comes back
  /// through drain() and take_digests().
  bool request_digest();

  /// Synchronously fetches the endpoint's retained journal shard for this
  /// session's search fingerprint (scheduler failover). Appends the lines
  /// in sequence order to *lines. False (with *error) on timeout or
  /// session death; only usable while no trials are in flight -- any
  /// non-tail frame during the fetch is a protocol violation.
  bool fetch_journal(std::vector<std::string>* lines, int timeout_ms,
                     std::string* error);

  /// Drains the socket and appends every complete ResultMsg to *out.
  /// Returns false when the session died (EOF, error, corrupt frame,
  /// protocol violation); results decoded before the damage are still
  /// appended, so a clean server shutdown delivers its final verdicts.
  /// Pongs are collected aside; take_pongs() hands them over.
  bool drain(std::vector<ResultMsg>* out);

  /// Heartbeat echoes collected by drain() since the last call.
  std::vector<PongMsg> take_pongs() {
    std::vector<PongMsg> out;
    out.swap(pongs_);
    return out;
  }

  /// Shard digests collected by drain() since the last call.
  std::vector<ShardDigestMsg> take_digests() {
    std::vector<ShardDigestMsg> out;
    out.swap(digests_);
    return out;
  }

  bool alive() const { return !dead_; }
  int fd() const { return sock_.fd(); }
  const Endpoint& endpoint() const { return ep_; }
  /// Pool width behind the endpoint (from the HelloAck).
  std::uint32_t workers() const { return workers_; }
  /// Server-side verifier fingerprint (the scheduler cross-checks it
  /// against the local one before trusting any verdict).
  const std::string& verifier_fp() const { return verifier_fp_; }
  /// vm::Engine the endpoint actually runs (from the HelloAck; may lawfully
  /// be micro-op when jit was requested of a jit-incapable host).
  std::uint8_t engine() const { return engine_; }
  /// Journal records the endpoint already retained for this search
  /// fingerprint at handshake time (v3 HelloAck) -- fleet journal coverage.
  std::uint64_t shard_records() const { return shard_records_; }
  /// Endpoint durability health at handshake time (v4 HelloAck): true when
  /// its shard store degraded to in-memory operation.
  bool state_degraded() const { return state_degraded_; }
  /// State files the endpoint restored at its last startup (v4 HelloAck).
  std::uint64_t shards_reloaded() const { return shards_reloaded_; }
  /// Storage failures (injected or real) the endpoint has absorbed.
  std::uint64_t disk_faults() const { return disk_faults_; }
  /// Most recent session error text (handshake rejection, transport
  /// damage), for diagnostics.
  const std::string& last_error() const { return last_error_; }

  void close() {
    dead_ = true;
    sock_.close();
  }

 private:
  EndpointClient(Socket sock, const Endpoint& ep)
      : sock_(std::move(sock)), ep_(ep) {}

  Socket sock_;
  Endpoint ep_;
  FrameBuffer fb_;
  std::uint32_t workers_ = 0;
  std::uint8_t engine_ = 0;
  std::uint64_t shard_records_ = 0;
  bool state_degraded_ = false;
  std::uint64_t shards_reloaded_ = 0;
  std::uint64_t disk_faults_ = 0;
  std::string verifier_fp_;
  std::string last_error_;
  std::vector<PongMsg> pongs_;
  std::vector<ShardDigestMsg> digests_;
  bool dead_ = false;
};

}  // namespace fpmix::net
