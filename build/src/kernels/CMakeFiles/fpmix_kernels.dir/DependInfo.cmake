
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/amg.cpp" "src/kernels/CMakeFiles/fpmix_kernels.dir/amg.cpp.o" "gcc" "src/kernels/CMakeFiles/fpmix_kernels.dir/amg.cpp.o.d"
  "/root/repo/src/kernels/bt.cpp" "src/kernels/CMakeFiles/fpmix_kernels.dir/bt.cpp.o" "gcc" "src/kernels/CMakeFiles/fpmix_kernels.dir/bt.cpp.o.d"
  "/root/repo/src/kernels/cg.cpp" "src/kernels/CMakeFiles/fpmix_kernels.dir/cg.cpp.o" "gcc" "src/kernels/CMakeFiles/fpmix_kernels.dir/cg.cpp.o.d"
  "/root/repo/src/kernels/ep.cpp" "src/kernels/CMakeFiles/fpmix_kernels.dir/ep.cpp.o" "gcc" "src/kernels/CMakeFiles/fpmix_kernels.dir/ep.cpp.o.d"
  "/root/repo/src/kernels/ft.cpp" "src/kernels/CMakeFiles/fpmix_kernels.dir/ft.cpp.o" "gcc" "src/kernels/CMakeFiles/fpmix_kernels.dir/ft.cpp.o.d"
  "/root/repo/src/kernels/lu.cpp" "src/kernels/CMakeFiles/fpmix_kernels.dir/lu.cpp.o" "gcc" "src/kernels/CMakeFiles/fpmix_kernels.dir/lu.cpp.o.d"
  "/root/repo/src/kernels/mg.cpp" "src/kernels/CMakeFiles/fpmix_kernels.dir/mg.cpp.o" "gcc" "src/kernels/CMakeFiles/fpmix_kernels.dir/mg.cpp.o.d"
  "/root/repo/src/kernels/sp.cpp" "src/kernels/CMakeFiles/fpmix_kernels.dir/sp.cpp.o" "gcc" "src/kernels/CMakeFiles/fpmix_kernels.dir/sp.cpp.o.d"
  "/root/repo/src/kernels/superlu.cpp" "src/kernels/CMakeFiles/fpmix_kernels.dir/superlu.cpp.o" "gcc" "src/kernels/CMakeFiles/fpmix_kernels.dir/superlu.cpp.o.d"
  "/root/repo/src/kernels/workload.cpp" "src/kernels/CMakeFiles/fpmix_kernels.dir/workload.cpp.o" "gcc" "src/kernels/CMakeFiles/fpmix_kernels.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/fpmix_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/fpmix_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/fpmix_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/fpmix_program.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fpmix_support.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/fpmix_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/fpmix_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/fpmix_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/fpmix_config.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/fpmix_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
