// MicroOp stream -> position-independent x86-64 blob.
//
// Each guest instruction is lowered to a fixed template that begins with the
// interpreter's exact dispatch sequence (budget check, optional profile
// count, retire) and then performs the operation against the Machine's own
// state through the pinned base registers:
//
//   r15 = JitContext*   r12 = gpr file   r13 = VM memory
//   rbx = xmm file      r14 = retired    rbp = max_instructions
//
// rax/rcx/rdx/rsi/rdi/r8 and xmm0-2 are scratch within a template.
//
// Trap-shaped paths (bounds, tag sentinel, budget) branch to per-site
// out-of-line stubs emitted after the instruction bodies; the stubs load the
// faulting pc as a link-patched immediate and call the C++ helpers through
// the context block. Rare or complex kinds (idiv/irem, cvtt*, packed,
// intrinsics, fallback) go through the generic-exec helper, which runs the
// micro-op interpreter's own handler for exactly one instruction -- lowering
// is total and the engines cannot drift.
//
// Ordering subtleties are load-bearing and mirror machine.cpp exactly:
// bounds traps fire before tag traps on the same load, the tag check on the
// destination operand precedes the source's bounds check, push updates sp
// before the trapping store, pop increments sp only after the load, and the
// two halves of 16-byte moves commit the first lane before the second lane's
// bounds check.

#include <cstddef>
#include <deque>

#include "arch/operand.hpp"
#include "vm/jit/emitter.hpp"
#include "vm/jit/jit.hpp"

namespace fpmix::vm::jit {
namespace {

// JitContext field displacements off r15 (layout static_asserted in jit.hpp).
constexpr std::int32_t kCtxMemSize = 16;
constexpr std::int32_t kCtxRetired = 32;
constexpr std::int32_t kCtxCounts = 48;
constexpr std::int32_t kCtxTagCmp = 56;
constexpr std::int32_t kCtxExitPc = 64;
constexpr std::int32_t kCtxExitStatus = 72;
constexpr std::int32_t kCtxFlagEq = 76;
constexpr std::int32_t kCtxFlagLt = 77;
constexpr std::int32_t kCtxFlagLtu = 78;
constexpr std::int32_t kCtxEpilogue = 80;
constexpr std::int32_t kCtxHelpMemTrap = 88;
constexpr std::int32_t kCtxHelpTagTrap = 96;
constexpr std::int32_t kCtxHelpExec = 104;
constexpr std::int32_t kCtxHelpRet = 112;
constexpr std::int32_t kCtxHelpIntrin = 120;
static_assert(offsetof(JitContext, mem_size) == kCtxMemSize);
static_assert(offsetof(JitContext, counts) == kCtxCounts);
static_assert(offsetof(JitContext, exit_pc) == kCtxExitPc);
static_assert(offsetof(JitContext, flag_ltu) == kCtxFlagLtu);
static_assert(offsetof(JitContext, help_mem_trap) == kCtxHelpMemTrap);
static_assert(offsetof(JitContext, help_ret) == kCtxHelpRet);
static_assert(offsetof(JitContext, help_intrin) == kCtxHelpIntrin);

constexpr bool fits_i32(std::int64_t v) {
  return v >= INT32_MIN && v <= INT32_MAX;
}

constexpr std::int32_t gpr_off(unsigned r) {
  return static_cast<std::int32_t>(r) * 8;
}
constexpr std::int32_t xmm_lo(unsigned r) {
  return static_cast<std::int32_t>(r) * 16;
}
constexpr std::int32_t xmm_hi(unsigned r) {
  return static_cast<std::int32_t>(r) * 16 + 8;
}
constexpr std::int32_t kSpOff = gpr_off(arch::kSpReg);

// SSE scalar arithmetic opcodes (the F2/F3 0F xx second byte).
constexpr std::uint8_t kSseAdd = 0x58;
constexpr std::uint8_t kSseMul = 0x59;
constexpr std::uint8_t kSseSub = 0x5C;
constexpr std::uint8_t kSseDiv = 0x5E;
constexpr std::uint8_t kSseSqrt = 0x51;

class Compiler {
 public:
  Compiler(const std::vector<MicroOp>& uops, CompileMode mode)
      : uops_(uops), mode_(mode) {}

  std::shared_ptr<const SegmentBlob> run() {
    auto blob = std::make_shared<SegmentBlob>();
    const std::size_t n = uops_.size();
    instr_off_.reserve(n);
    for (pc_ = 0; pc_ < n; ++pc_) {
      instr_off_.push_back(static_cast<std::uint32_t>(e_.size()));
      prologue();
      emit(uops_[pc_]);
    }
    // Falling off the last instruction continues at the next one in program
    // order: the following segment's entry, or the image's off-end stub.
    jmp_target(static_cast<std::uint64_t>(n));
    emit_tails();
    emit_stubs();
    blob->code = std::move(e_.code);
    blob->relocs = std::move(relocs_);
    blob->instr_off = std::move(instr_off_);
    return blob;
  }

 private:
  Emitter e_;
  std::vector<Reloc> relocs_;
  std::vector<std::uint32_t> instr_off_;
  const std::vector<MicroOp>& uops_;
  CompileMode mode_;
  std::size_t pc_ = 0;

  Emitter::Label exit_tail_;  // jmp epilogue (helper already set the status)
  Emitter::Label halt_tail_;  // status = kExitHalt, then epilogue

  struct BudgetStub {
    Emitter::Label label;
    std::uint32_t pc;
  };
  struct MemStub {
    Emitter::Label label;
    std::uint32_t pc;
    std::uint8_t bytes;
    bool is_store;
  };
  struct TagStub {
    Emitter::Label label;
    std::uint32_t pc;
    int bits_reg;
  };
  std::deque<BudgetStub> budget_stubs_;
  std::deque<MemStub> mem_stubs_;
  std::deque<TagStub> tag_stubs_;

  std::uint32_t pc32() const { return static_cast<std::uint32_t>(pc_); }

  // --- reloc-carrying emission helpers -------------------------------------

  void mov_ri32_reloc(int reg, Reloc::Kind kind, std::uint64_t value) {
    e_.rex(false, 0, 0, reg);
    e_.u8(static_cast<std::uint8_t>(0xB8 | (reg & 7)));
    relocs_.push_back({kind, static_cast<std::uint32_t>(e_.size()), value});
    e_.u32(0);
  }
  void jmp_target(std::uint64_t target) {
    const std::size_t at = e_.jmp_reloc();
    relocs_.push_back(
        {Reloc::Kind::kRel32Target, static_cast<std::uint32_t>(at), target});
  }
  void jcc_target(int cc, std::uint64_t target) {
    const std::size_t at = e_.jcc_reloc(cc);
    relocs_.push_back(
        {Reloc::Kind::kRel32Target, static_cast<std::uint32_t>(at), target});
  }

  // --- the per-instruction dispatch prologue -------------------------------
  // Same order as FPMIX_DISPATCH: budget check, profile count, retire.

  void prologue() {
    e_.alu_rr(Alu::kCmp, R14, RBP);  // cmp retired, max_instructions
    budget_stubs_.push_back({{}, pc32()});
    e_.jcc(CC_AE, budget_stubs_.back().label);
    if (mode_.profile) {
      e_.mov_rm(RAX, R15, kCtxCounts);
      const std::size_t at = e_.inc_m_disp32(RAX);
      relocs_.push_back({Reloc::Kind::kDisp32Counts,
                         static_cast<std::uint32_t>(at), pc_});
    }
    e_.inc_r(R14);
  }

  // --- common fragments ----------------------------------------------------

  /// Effective address into RAX (clobbers RCX). Absent base/index were
  /// redirected to the always-zero slot at lowering; loading that slot would
  /// be correct but wasteful, so the recipe specialises on presence instead.
  void emit_ea(const MicroOp& u) {
    const bool has_base = u.ea_base != kZeroRegSlot;
    const bool has_index = u.ea_index != kZeroRegSlot;
    if (!has_base && !has_index) {
      e_.mov_ri32s(RAX, u.ea_disp);
      return;
    }
    if (has_base && !has_index) {
      e_.mov_rm(RAX, R12, gpr_off(u.ea_base));
      if (u.ea_disp != 0) e_.lea_bd(RAX, RAX, u.ea_disp);
      return;
    }
    if (!has_base) {
      e_.mov_rm(RCX, R12, gpr_off(u.ea_index));
      if (u.ea_shift != 0) e_.shl_ri8(RCX, u.ea_shift);
      e_.lea_bd(RAX, RCX, u.ea_disp);
      return;
    }
    e_.mov_rm(RAX, R12, gpr_off(u.ea_base));
    e_.mov_rm(RCX, R12, gpr_off(u.ea_index));
    if (u.ea_shift <= 3) {
      e_.lea_bisd(RAX, RAX, RCX, u.ea_shift, u.ea_disp);
    } else {
      e_.shl_ri8(RCX, u.ea_shift);
      e_.lea_bisd(RAX, RAX, RCX, 0, u.ea_disp);
    }
  }

  /// Bounds check for `bytes` at the address in RAX (clobbers RCX), same
  /// predicate as Machine::load/store: addr+bytes > mem_size || wrapped.
  void bounds(unsigned bytes, bool is_store) {
    mem_stubs_.push_back(
        {{}, pc32(), static_cast<std::uint8_t>(bytes), is_store});
    Emitter::Label& stub = mem_stubs_.back().label;
    e_.lea_bd(RCX, RAX, static_cast<std::int32_t>(bytes));
    e_.alu_rr(Alu::kCmp, RCX, RAX);
    e_.jcc(CC_B, stub);
    e_.alu_rm(Alu::kCmp, RCX, R15, kCtxMemSize);
    e_.jcc(CC_A, stub);
  }

  /// Replaced-double sentinel check on the f64 bits in `bits_reg` (not RSI;
  /// clobbers RSI). ctx->tag_cmp is unmatchable when the trap is off, so the
  /// same code serves both modes.
  void tag_check(int bits_reg) {
    tag_stubs_.push_back({{}, pc32(), bits_reg});
    e_.mov_rr(RSI, bits_reg);
    e_.shr_ri8(RSI, 32);
    e_.alu_rm(Alu::kCmp, RSI, R15, kCtxTagCmp);
    e_.jcc(CC_E, tag_stubs_.back().label);
  }

  /// Integer-compare flag materialisation from the live host flags.
  void store_cmp_flags() {
    e_.setcc_m(CC_E, R15, kCtxFlagEq);
    e_.setcc_m(CC_L, R15, kCtxFlagLt);
    e_.setcc_m(CC_B, R15, kCtxFlagLtu);
  }

  /// ucomis flag materialisation: eq = ordered-equal, lt = ltu = ordered
  /// less-than; every flag false on NaN. All three setcc must precede the
  /// ANDs (which clobber the host flags).
  void store_fcmp_flags() {
    e_.setcc_r(CC_NP, RCX);  // ordered
    e_.setcc_r(CC_E, RAX);
    e_.setcc_r(CC_B, RDX);
    e_.and_rr8(RAX, RCX);
    e_.mov_mr8(R15, kCtxFlagEq, RAX);
    e_.and_rr8(RDX, RCX);
    e_.mov_mr8(R15, kCtxFlagLt, RDX);
    e_.mov_mr8(R15, kCtxFlagLtu, RDX);
  }

  /// Delegate this one instruction to the micro-op interpreter's handler.
  void generic_exec() {
    e_.mov_mr(R15, kCtxRetired, R14);
    mov_ri32_reloc(RSI, Reloc::Kind::kImm32Pc, pc_);
    e_.mov_rr(RDI, R15);
    e_.call_m(R15, kCtxHelpExec);
    e_.test_rr(RAX, RAX);
    e_.jcc(CC_E, exit_tail_);
    e_.jmp_r(RAX);
  }

  /// Loads u.imm into `reg` (imm32 sign-extended when it fits).
  void load_imm(int reg, std::int64_t imm) {
    if (fits_i32(imm)) {
      e_.mov_ri32s(reg, static_cast<std::int32_t>(imm));
    } else {
      e_.mov_ri64(reg, static_cast<std::uint64_t>(imm));
    }
  }

  /// Conditional guest branch on one flag byte: taken when the byte is
  /// nonzero (want_set) or zero.
  void jcc_flag(std::int32_t flag_off, bool want_set, std::uint64_t target) {
    e_.cmp_mi8_b(R15, flag_off, 0);
    jcc_target(want_set ? CC_NE : CC_E, target);
  }
  /// Guest branch on (lt|eq) or (ltu|eq) composites.
  void jcc_or(std::int32_t flag_off, bool want_set, std::uint64_t target) {
    e_.mov_rm8(RAX, R15, flag_off);
    e_.mov_rm8(RCX, R15, kCtxFlagEq);
    e_.or_rr8(RAX, RCX);
    jcc_target(want_set ? CC_NE : CC_E, target);
  }

  // --- per-kind templates --------------------------------------------------

  void emit(const MicroOp& u) {
    const std::uint64_t tgt = static_cast<std::uint64_t>(u.imm);
    switch (static_cast<MicroKind>(u.kind)) {
      case MicroKind::kNop:
        break;
      case MicroKind::kHalt:
        e_.jmp(halt_tail_);
        break;

      // -- control flow --
      case MicroKind::kJmp: jmp_target(tgt); break;
      case MicroKind::kJe: jcc_flag(kCtxFlagEq, true, tgt); break;
      case MicroKind::kJne: jcc_flag(kCtxFlagEq, false, tgt); break;
      case MicroKind::kJl: jcc_flag(kCtxFlagLt, true, tgt); break;
      case MicroKind::kJge: jcc_flag(kCtxFlagLt, false, tgt); break;
      case MicroKind::kJb: jcc_flag(kCtxFlagLtu, true, tgt); break;
      case MicroKind::kJae: jcc_flag(kCtxFlagLtu, false, tgt); break;
      case MicroKind::kJle: jcc_or(kCtxFlagLt, true, tgt); break;
      case MicroKind::kJg: jcc_or(kCtxFlagLt, false, tgt); break;
      case MicroKind::kJbe: jcc_or(kCtxFlagLtu, true, tgt); break;
      case MicroKind::kJa: jcc_or(kCtxFlagLtu, false, tgt); break;

      case MicroKind::kCall:
        // push64(aux): sp -= 8 commits before the store, as in the
        // interpreter (a trapping call leaves sp decremented).
        e_.mov_rm(RAX, R12, kSpOff);
        e_.alu_ri8(Alu::kSub, RAX, 8);
        e_.mov_mr(R12, kSpOff, RAX);
        bounds(8, /*is_store=*/true);
        if (mode_.local) {
          // Return address: local byte offset, rebased at link time.
          e_.rex(true, 0, 0, RDX);
          e_.u8(static_cast<std::uint8_t>(0xB8 | RDX));
          relocs_.push_back({Reloc::Kind::kAbs64RetAddr,
                             static_cast<std::uint32_t>(e_.size()), u.aux});
          e_.u64(0);
        } else {
          e_.mov_ri64(RDX, u.aux);
        }
        e_.mov_mxr(R13, RAX, 0, RDX);
        if (mode_.local) {
          // imm = callee function index; resolved via the link placement.
          const std::size_t at = e_.jmp_reloc();
          relocs_.push_back({Reloc::Kind::kRel32Call,
                             static_cast<std::uint32_t>(at), tgt});
        } else {
          jmp_target(tgt);  // imm = callee's global instruction index
        }
        break;

      case MicroKind::kRet:
        // pop64(): load first (sp unchanged if it traps), then sp += 8.
        e_.mov_rm(RAX, R12, kSpOff);
        bounds(8, /*is_store=*/false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        e_.alu_mi(Alu::kAdd, R12, kSpOff, 8);
        e_.test_rr(RDX, RDX);
        e_.jcc(CC_E, halt_tail_);  // the null frame pushed by run()
        e_.mov_mr(R15, kCtxRetired, R14);
        e_.mov_rr(RDI, R15);
        e_.mov_rr(RSI, RDX);
        mov_ri32_reloc(RDX, Reloc::Kind::kImm32Pc, pc_);
        e_.call_m(R15, kCtxHelpRet);
        e_.test_rr(RAX, RAX);
        e_.jcc(CC_E, exit_tail_);
        e_.jmp_r(RAX);
        break;

      // -- integer file --
      case MicroKind::kMovRR:
        e_.mov_rm(RAX, R12, gpr_off(u.b));
        e_.mov_mr(R12, gpr_off(u.a), RAX);
        break;
      case MicroKind::kMovRI:
        if (fits_i32(u.imm)) {
          e_.mov_mi32s(R12, gpr_off(u.a), static_cast<std::int32_t>(u.imm));
        } else {
          e_.mov_ri64(RAX, static_cast<std::uint64_t>(u.imm));
          e_.mov_mr(R12, gpr_off(u.a), RAX);
        }
        break;
      case MicroKind::kLoad:
        emit_ea(u);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        e_.mov_mr(R12, gpr_off(u.a), RDX);
        break;
      case MicroKind::kStore:
        emit_ea(u);
        bounds(8, true);
        e_.mov_rm(RDX, R12, gpr_off(u.b));
        e_.mov_mxr(R13, RAX, 0, RDX);
        break;
      case MicroKind::kLea:
        emit_ea(u);
        e_.mov_mr(R12, gpr_off(u.a), RAX);
        break;

      case MicroKind::kAddRR: int_rr(Alu::kAdd, u); break;
      case MicroKind::kAddRI: int_ri(Alu::kAdd, u); break;
      case MicroKind::kSubRR: int_rr(Alu::kSub, u); break;
      case MicroKind::kSubRI: int_ri(Alu::kSub, u); break;
      case MicroKind::kAndRR: int_rr(Alu::kAnd, u); break;
      case MicroKind::kAndRI: int_ri(Alu::kAnd, u); break;
      case MicroKind::kOrRR: int_rr(Alu::kOr, u); break;
      case MicroKind::kOrRI: int_ri(Alu::kOr, u); break;
      case MicroKind::kXorRR: int_rr(Alu::kXor, u); break;
      case MicroKind::kXorRI: int_ri(Alu::kXor, u); break;

      case MicroKind::kImulRR:
        e_.mov_rm(RAX, R12, gpr_off(u.a));
        e_.imul_rm(RAX, R12, gpr_off(u.b));
        e_.mov_mr(R12, gpr_off(u.a), RAX);
        break;
      case MicroKind::kImulRI:
        if (fits_i32(u.imm)) {
          e_.imul_rmi(RAX, R12, gpr_off(u.a),
                      static_cast<std::int32_t>(u.imm));
        } else {
          e_.mov_ri64(RAX, static_cast<std::uint64_t>(u.imm));
          e_.imul_rm(RAX, R12, gpr_off(u.a));
        }
        e_.mov_mr(R12, gpr_off(u.a), RAX);
        break;

      case MicroKind::kShlRR: shift_rr(4, u); break;
      case MicroKind::kShrRR: shift_rr(5, u); break;
      case MicroKind::kSarRR: shift_rr(7, u); break;
      case MicroKind::kShlRI: shift_ri(4, u); break;
      case MicroKind::kShrRI: shift_ri(5, u); break;
      case MicroKind::kSarRI: shift_ri(7, u); break;

      case MicroKind::kCmpRR:
        e_.mov_rm(RAX, R12, gpr_off(u.a));
        e_.alu_rm(Alu::kCmp, RAX, R12, gpr_off(u.b));
        store_cmp_flags();
        break;
      case MicroKind::kCmpRI:
        e_.mov_rm(RAX, R12, gpr_off(u.a));
        if (fits_i32(u.imm)) {
          e_.alu_ri(Alu::kCmp, RAX, static_cast<std::int32_t>(u.imm));
        } else {
          e_.mov_ri64(RCX, static_cast<std::uint64_t>(u.imm));
          e_.alu_rr(Alu::kCmp, RAX, RCX);
        }
        store_cmp_flags();
        break;
      case MicroKind::kTestRR:
        e_.mov_rm(RAX, R12, gpr_off(u.a));
        e_.alu_rm(Alu::kAnd, RAX, R12, gpr_off(u.b));
        store_test_flags();
        break;
      case MicroKind::kTestRI:
        e_.mov_rm(RAX, R12, gpr_off(u.a));
        if (fits_i32(u.imm)) {
          e_.test_ri(RAX, static_cast<std::int32_t>(u.imm));
        } else {
          e_.mov_ri64(RCX, static_cast<std::uint64_t>(u.imm));
          e_.test_rr(RAX, RCX);
        }
        store_test_flags();
        break;

      case MicroKind::kPush:
        // Value read BEFORE the sp update: push sp pushes the old sp.
        e_.mov_rm(RDX, R12, gpr_off(u.a));
        e_.mov_rm(RAX, R12, kSpOff);
        e_.alu_ri8(Alu::kSub, RAX, 8);
        e_.mov_mr(R12, kSpOff, RAX);
        bounds(8, true);
        e_.mov_mxr(R13, RAX, 0, RDX);
        break;
      case MicroKind::kPop:
        // Destination written AFTER sp += 8: pop sp yields the popped value.
        e_.mov_rm(RAX, R12, kSpOff);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        e_.alu_mi(Alu::kAdd, R12, kSpOff, 8);
        e_.mov_mr(R12, gpr_off(u.a), RDX);
        break;

      // -- xmm data movement --
      case MicroKind::kMovqXR:
        e_.mov_rm(RAX, R12, gpr_off(u.b));
        e_.mov_mr(RBX, xmm_lo(u.a), RAX);  // upper lane preserved
        break;
      case MicroKind::kMovqRX:
        e_.mov_rm(RAX, RBX, xmm_lo(u.b));
        e_.mov_mr(R12, gpr_off(u.a), RAX);
        break;
      case MicroKind::kMovsdXX:
        e_.mov_rm(RAX, RBX, xmm_lo(u.b));
        e_.mov_mr(RBX, xmm_lo(u.a), RAX);  // lo only, hi preserved
        break;
      case MicroKind::kMovsdXM:
        emit_ea(u);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        e_.mov_mr(RBX, xmm_lo(u.a), RDX);
        e_.mov_mi32s(RBX, xmm_hi(u.a), 0);
        break;
      case MicroKind::kMovsdMX:
        emit_ea(u);
        bounds(8, true);
        e_.mov_rm(RDX, RBX, xmm_lo(u.b));
        e_.mov_mxr(R13, RAX, 0, RDX);
        break;
      case MicroKind::kMovssXM:
        emit_ea(u);
        bounds(4, false);
        e_.mov_rmx32(RDX, R13, RAX, 0);     // zero-extending 4-byte load
        e_.mov_mr(RBX, xmm_lo(u.a), RDX);   // lo = zext32(value)
        e_.mov_mi32s(RBX, xmm_hi(u.a), 0);
        break;
      case MicroKind::kMovssMX:
        emit_ea(u);
        bounds(4, true);
        e_.mov_rm32(RDX, RBX, xmm_lo(u.b));
        e_.mov_mxr32(R13, RAX, 0, RDX);
        break;
      case MicroKind::kMovapdXX:
        e_.mov_rm(RAX, RBX, xmm_lo(u.b));
        e_.mov_rm(RDX, RBX, xmm_hi(u.b));
        e_.mov_mr(RBX, xmm_lo(u.a), RAX);
        e_.mov_mr(RBX, xmm_hi(u.a), RDX);
        break;
      case MicroKind::kMovapdXM:
        // Lane 0 commits before lane 1's bounds check, like the interpreter's
        // two independent load() calls.
        emit_ea(u);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        e_.mov_mr(RBX, xmm_lo(u.a), RDX);
        e_.alu_ri8(Alu::kAdd, RAX, 8);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        e_.mov_mr(RBX, xmm_hi(u.a), RDX);
        break;
      case MicroKind::kMovapdMX:
        emit_ea(u);
        bounds(8, true);
        e_.mov_rm(RDX, RBX, xmm_lo(u.b));
        e_.mov_mxr(R13, RAX, 0, RDX);
        e_.alu_ri8(Alu::kAdd, RAX, 8);
        bounds(8, true);
        e_.mov_rm(RDX, RBX, xmm_hi(u.b));
        e_.mov_mxr(R13, RAX, 0, RDX);
        break;
      case MicroKind::kPushX:
        e_.mov_rm(RAX, R12, kSpOff);
        e_.alu_ri8(Alu::kSub, RAX, 16);
        e_.mov_mr(R12, kSpOff, RAX);
        bounds(8, true);
        e_.mov_rm(RDX, RBX, xmm_lo(u.a));
        e_.mov_mxr(R13, RAX, 0, RDX);
        e_.alu_ri8(Alu::kAdd, RAX, 8);
        bounds(8, true);
        e_.mov_rm(RDX, RBX, xmm_hi(u.a));
        e_.mov_mxr(R13, RAX, 0, RDX);
        break;
      case MicroKind::kPopX:
        e_.mov_rm(RAX, R12, kSpOff);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        e_.mov_mr(RBX, xmm_lo(u.a), RDX);
        e_.alu_ri8(Alu::kAdd, RAX, 8);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        e_.mov_mr(RBX, xmm_hi(u.a), RDX);
        e_.alu_mi(Alu::kAdd, R12, kSpOff, 16);
        break;

      // -- scalar f64 --
      case MicroKind::kAddsdXX: sd_xx(kSseAdd, u); break;
      case MicroKind::kAddsdXM: sd_xm(kSseAdd, u); break;
      case MicroKind::kSubsdXX: sd_xx(kSseSub, u); break;
      case MicroKind::kSubsdXM: sd_xm(kSseSub, u); break;
      case MicroKind::kMulsdXX: sd_xx(kSseMul, u); break;
      case MicroKind::kMulsdXM: sd_xm(kSseMul, u); break;
      case MicroKind::kDivsdXX: sd_xx(kSseDiv, u); break;
      case MicroKind::kDivsdXM: sd_xm(kSseDiv, u); break;
      case MicroKind::kMinsdXX: sd_minmax_xx(/*is_min=*/true, u); break;
      case MicroKind::kMinsdXM: sd_minmax_xm(true, u); break;
      case MicroKind::kMaxsdXX: sd_minmax_xx(false, u); break;
      case MicroKind::kMaxsdXM: sd_minmax_xm(false, u); break;
      case MicroKind::kSqrtsdXX:
        e_.mov_rm(RDX, RBX, xmm_lo(u.b));
        tag_check(RDX);
        e_.movq_xr(0, RDX);
        e_.sse_rr(0xF2, kSseSqrt, 0, 0);
        e_.movq_mx(RBX, xmm_lo(u.a), 0);
        break;
      case MicroKind::kSqrtsdXM:
        emit_ea(u);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        tag_check(RDX);
        e_.movq_xr(0, RDX);
        e_.sse_rr(0xF2, kSseSqrt, 0, 0);
        e_.movq_mx(RBX, xmm_lo(u.a), 0);
        break;
      case MicroKind::kUcomisdXX:
        e_.mov_rm(RDX, RBX, xmm_lo(u.a));
        tag_check(RDX);
        e_.mov_rm(RCX, RBX, xmm_lo(u.b));
        tag_check(RCX);
        e_.movq_xr(0, RDX);
        e_.movq_xr(1, RCX);
        e_.ucomisd(0, 1);
        store_fcmp_flags();
        break;
      case MicroKind::kUcomisdXM:
        e_.mov_rm(RDX, RBX, xmm_lo(u.a));
        tag_check(RDX);
        e_.movq_xr(0, RDX);
        emit_ea(u);
        bounds(8, false);
        e_.mov_rmx(RCX, R13, RAX, 0);
        tag_check(RCX);
        e_.movq_xr(1, RCX);
        e_.ucomisd(0, 1);
        store_fcmp_flags();
        break;
      case MicroKind::kCvtsd2ssXX:
        e_.mov_rm(RDX, RBX, xmm_lo(u.b));
        tag_check(RDX);
        e_.movq_xr(0, RDX);
        e_.cvtsd2ss(1, 0);
        e_.movd_rx(RAX, 1);  // zero-extends: lo = zext32(float bits)
        e_.mov_mr(RBX, xmm_lo(u.a), RAX);
        break;
      case MicroKind::kCvtsd2ssXM:
        emit_ea(u);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        tag_check(RDX);
        e_.movq_xr(0, RDX);
        e_.cvtsd2ss(1, 0);
        e_.movd_rx(RAX, 1);
        e_.mov_mr(RBX, xmm_lo(u.a), RAX);
        break;
      case MicroKind::kCvtss2sdXX:
        e_.mov_rm32(RAX, RBX, xmm_lo(u.b));
        e_.movd_xr(0, RAX);
        e_.cvtss2sd(1, 0);
        e_.movq_mx(RBX, xmm_lo(u.a), 1);
        break;
      case MicroKind::kCvtss2sdXM:
        emit_ea(u);
        bounds(4, false);
        e_.mov_rmx32(RAX, R13, RAX, 0);
        e_.movd_xr(0, RAX);
        e_.cvtss2sd(1, 0);
        e_.movq_mx(RBX, xmm_lo(u.a), 1);
        break;
      case MicroKind::kCvtsi2sd:
        e_.mov_rm(RAX, R12, gpr_off(u.b));
        e_.cvtsi2sd(0, RAX);
        e_.movq_mx(RBX, xmm_lo(u.a), 0);
        break;

      // -- scalar f32 (no tag checks: the sentinel lives in the high word) --
      case MicroKind::kAddssXX: ss_xx(kSseAdd, u); break;
      case MicroKind::kAddssXM: ss_xm(kSseAdd, u); break;
      case MicroKind::kSubssXX: ss_xx(kSseSub, u); break;
      case MicroKind::kSubssXM: ss_xm(kSseSub, u); break;
      case MicroKind::kMulssXX: ss_xx(kSseMul, u); break;
      case MicroKind::kMulssXM: ss_xm(kSseMul, u); break;
      case MicroKind::kDivssXX: ss_xx(kSseDiv, u); break;
      case MicroKind::kDivssXM: ss_xm(kSseDiv, u); break;
      case MicroKind::kMinssXX: ss_minmax_xx(true, u); break;
      case MicroKind::kMinssXM: ss_minmax_xm(true, u); break;
      case MicroKind::kMaxssXX: ss_minmax_xx(false, u); break;
      case MicroKind::kMaxssXM: ss_minmax_xm(false, u); break;
      case MicroKind::kSqrtssXX:
        e_.movss_xm(0, RBX, xmm_lo(u.b));
        e_.sse_rr(0xF3, kSseSqrt, 0, 0);
        e_.movss_mx(RBX, xmm_lo(u.a), 0);
        break;
      case MicroKind::kSqrtssXM:
        emit_ea(u);
        bounds(4, false);
        e_.movss_xmx(0, R13, RAX, 0);
        e_.sse_rr(0xF3, kSseSqrt, 0, 0);
        e_.movss_mx(RBX, xmm_lo(u.a), 0);
        break;
      case MicroKind::kUcomissXX:
        e_.movss_xm(0, RBX, xmm_lo(u.a));
        e_.movss_xm(1, RBX, xmm_lo(u.b));
        e_.ucomiss(0, 1);
        store_fcmp_flags();
        break;
      case MicroKind::kUcomissXM:
        e_.movss_xm(0, RBX, xmm_lo(u.a));
        emit_ea(u);
        bounds(4, false);
        e_.movss_xmx(1, R13, RAX, 0);
        e_.ucomiss(0, 1);
        store_fcmp_flags();
        break;
      case MicroKind::kCvtsi2ss:
        e_.mov_rm(RAX, R12, gpr_off(u.b));
        e_.cvtsi2ss(0, RAX);
        e_.movss_mx(RBX, xmm_lo(u.a), 0);
        break;

      // -- intrinsic call: hot in math-heavy kernels, so it gets its own
      //    helper that skips the flag syncs and the native-address lookup
      //    the generic path pays (intrinsics touch neither flags nor pc;
      //    control always falls through) --
      case MicroKind::kIntrin:
        e_.mov_mr(R15, kCtxRetired, R14);
        mov_ri32_reloc(RSI, Reloc::Kind::kImm32Pc, pc_);
        e_.mov_rr(RDI, R15);
        e_.call_m(R15, kCtxHelpIntrin);
        e_.test_rr(RAX, RAX);
        e_.jcc(CC_E, exit_tail_);
        break;

      // -- everything else (idiv/irem, cvtt*, packed, bitwise-128,
      //    fallback): one round trip through the interpreter's handler --
      default:
        generic_exec();
        break;
    }
  }

  void int_rr(Alu op, const MicroOp& u) {
    e_.mov_rm(RAX, R12, gpr_off(u.b));
    e_.alu_mr(op, R12, gpr_off(u.a), RAX);
  }
  void int_ri(Alu op, const MicroOp& u) {
    if (fits_i32(u.imm)) {
      e_.alu_mi(op, R12, gpr_off(u.a), static_cast<std::int32_t>(u.imm));
    } else {
      e_.mov_ri64(RAX, static_cast<std::uint64_t>(u.imm));
      e_.alu_mr(op, R12, gpr_off(u.a), RAX);
    }
  }
  void shift_rr(int op, const MicroOp& u) {
    // Hardware masks cl by 63 for 64-bit shifts, same as the handler's & 63.
    e_.mov_rm(RCX, R12, gpr_off(u.b));
    e_.shift_m_cl(op, R12, gpr_off(u.a));
  }
  void shift_ri(int op, const MicroOp& u) {
    e_.shift_m_i8(op, R12, gpr_off(u.a),
                  static_cast<std::uint8_t>(u.imm & 63));
  }
  void store_test_flags() {
    e_.setcc_m(CC_E, R15, kCtxFlagEq);
    e_.setcc_m(CC_S, R15, kCtxFlagLt);
    e_.mov_mi8(R15, kCtxFlagLtu, 0);
  }

  void sd_xx(std::uint8_t op, const MicroOp& u) {
    e_.mov_rm(RDX, RBX, xmm_lo(u.a));
    tag_check(RDX);
    e_.mov_rm(RCX, RBX, xmm_lo(u.b));
    tag_check(RCX);
    e_.movq_xr(0, RDX);
    e_.movq_xr(1, RCX);
    e_.sse_rr(0xF2, op, 0, 1);
    e_.movq_mx(RBX, xmm_lo(u.a), 0);
  }
  void sd_xm(std::uint8_t op, const MicroOp& u) {
    e_.mov_rm(RDX, RBX, xmm_lo(u.a));
    tag_check(RDX);  // dst tag precedes the src bounds check
    e_.movq_xr(0, RDX);
    emit_ea(u);
    bounds(8, false);
    e_.mov_rmx(RCX, R13, RAX, 0);
    tag_check(RCX);
    e_.movq_xr(1, RCX);
    e_.sse_rr(0xF2, op, 0, 1);
    e_.movq_mx(RBX, xmm_lo(u.a), 0);
  }
  /// min: b < a ? b : a; max: a < b ? b : a. cmpltsd is an ordered compare
  /// (false on NaN), so the blend picks `a` exactly like the C++ ternary.
  void sd_minmax_blend(bool is_min) {
    // x0 = a, x1 = b on entry; result in x1.
    if (is_min) {
      e_.movaps_rr(2, 1);
      e_.cmpltsd(2, 0);  // mask = b < a
    } else {
      e_.movaps_rr(2, 0);
      e_.cmpltsd(2, 1);  // mask = a < b
    }
    e_.andpd(1, 2);   // b & mask
    e_.andnpd(2, 0);  // ~mask & a
    e_.orpd(1, 2);    // mask ? b : a
  }
  void sd_minmax_xx(bool is_min, const MicroOp& u) {
    e_.mov_rm(RDX, RBX, xmm_lo(u.a));
    tag_check(RDX);
    e_.mov_rm(RCX, RBX, xmm_lo(u.b));
    tag_check(RCX);
    e_.movq_xr(0, RDX);
    e_.movq_xr(1, RCX);
    sd_minmax_blend(is_min);
    e_.movq_mx(RBX, xmm_lo(u.a), 1);
  }
  void sd_minmax_xm(bool is_min, const MicroOp& u) {
    e_.mov_rm(RDX, RBX, xmm_lo(u.a));
    tag_check(RDX);
    e_.movq_xr(0, RDX);
    emit_ea(u);
    bounds(8, false);
    e_.mov_rmx(RCX, R13, RAX, 0);
    tag_check(RCX);
    e_.movq_xr(1, RCX);
    sd_minmax_blend(is_min);
    e_.movq_mx(RBX, xmm_lo(u.a), 1);
  }

  void ss_xx(std::uint8_t op, const MicroOp& u) {
    e_.movss_xm(0, RBX, xmm_lo(u.a));
    e_.sse_rm(0xF3, op, 0, RBX, xmm_lo(u.b));
    e_.movss_mx(RBX, xmm_lo(u.a), 0);  // low 32 bits only (with_low32)
  }
  void ss_xm(std::uint8_t op, const MicroOp& u) {
    e_.movss_xm(0, RBX, xmm_lo(u.a));
    emit_ea(u);
    bounds(4, false);
    e_.movss_xmx(1, R13, RAX, 0);
    e_.sse_rr(0xF3, op, 0, 1);
    e_.movss_mx(RBX, xmm_lo(u.a), 0);
  }
  void ss_minmax_blend(bool is_min) {
    if (is_min) {
      e_.movaps_rr(2, 1);
      e_.cmpltss(2, 0);
    } else {
      e_.movaps_rr(2, 0);
      e_.cmpltss(2, 1);
    }
    e_.andpd(1, 2);
    e_.andnpd(2, 0);
    e_.orpd(1, 2);
  }
  void ss_minmax_xx(bool is_min, const MicroOp& u) {
    e_.movss_xm(0, RBX, xmm_lo(u.a));
    e_.movss_xm(1, RBX, xmm_lo(u.b));
    ss_minmax_blend(is_min);
    e_.movss_mx(RBX, xmm_lo(u.a), 1);
  }
  void ss_minmax_xm(bool is_min, const MicroOp& u) {
    e_.movss_xm(0, RBX, xmm_lo(u.a));
    emit_ea(u);
    bounds(4, false);
    e_.movss_xmx(1, R13, RAX, 0);
    ss_minmax_blend(is_min);
    e_.movss_mx(RBX, xmm_lo(u.a), 1);
  }

  // --- tails and stubs -----------------------------------------------------

  void emit_tails() {
    e_.bind(exit_tail_);
    e_.jmp_m(R15, kCtxEpilogue);
    e_.bind(halt_tail_);
    e_.mov_mi32_d(R15, kCtxExitStatus, kExitHalt);
    e_.jmp_m(R15, kCtxEpilogue);
  }

  void emit_stubs() {
    for (auto& s : budget_stubs_) {
      e_.bind(s.label);
      mov_ri32_reloc(RAX, Reloc::Kind::kImm32Pc, s.pc);
      e_.mov_mr(R15, kCtxExitPc, RAX);
      e_.mov_mi32_d(R15, kCtxExitStatus, kExitBudget);
      e_.jmp_m(R15, kCtxEpilogue);
    }
    for (auto& s : mem_stubs_) {
      e_.bind(s.label);
      e_.mov_rr(RSI, RAX);  // faulting address
      e_.mov_ri32(RDX, s.bytes);
      mov_ri32_reloc(RCX, Reloc::Kind::kImm32Pc, s.pc);
      e_.mov_ri32(R8, s.is_store ? 1 : 0);
      e_.mov_mr(R15, kCtxRetired, R14);
      e_.mov_rr(RDI, R15);
      e_.call_m(R15, kCtxHelpMemTrap);
      e_.jmp_m(R15, kCtxEpilogue);
    }
    for (auto& s : tag_stubs_) {
      e_.bind(s.label);
      if (s.bits_reg != RSI) e_.mov_rr(RSI, s.bits_reg);
      mov_ri32_reloc(RDX, Reloc::Kind::kImm32Pc, s.pc);
      e_.mov_mr(R15, kCtxRetired, R14);
      e_.mov_rr(RDI, R15);
      e_.call_m(R15, kCtxHelpTagTrap);
      e_.jmp_m(R15, kCtxEpilogue);
    }
  }
};

}  // namespace

std::shared_ptr<const SegmentBlob> compile_stream(
    const std::vector<MicroOp>& uops, CompileMode mode) {
  return Compiler(uops, mode).run();
}

}  // namespace fpmix::vm::jit
