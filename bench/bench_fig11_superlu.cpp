// Figure 11 reproduction: SuperLU-analogue threshold sweep.
//
// Paper (Figure 11), sweeping the error threshold the search driver
// enforces on the solver's self-reported error:
//
//   threshold   static   dynamic   final error
//   1.0e-03     99.1%    99.9%     1.59e-04
//   1.0e-04     94.1%    87.3%     4.42e-05
//   7.5e-05     91.3%    52.5%     4.40e-05
//   5.0e-05     87.9%    45.2%     3.00e-05
//   2.5e-05     80.3%    26.6%     1.69e-05
//   1.0e-05     75.4%     1.6%     7.15e-07
//   1.0e-06     72.6%     1.6%     4.77e-07
//
// Trend to reproduce: tighter thresholds -> fewer static and far fewer
// dynamic replacements, and the final composed configuration's actual error
// sits well below the search threshold.
#include <cstdio>

#include "bench_util.hpp"
#include "search/search.hpp"
#include "verify/evaluate.hpp"

int main() {
  using namespace fpmix;
  std::printf("Figure 11: SuperLU-analogue (memplus-like) threshold "
              "sweep\n\n");
  std::printf("%-10s %10s %8s %8s %9s %12s %8s\n", "threshold", "candidates",
              "tested", "static", "dynamic", "final error", "final");
  bench::print_rule(72);

  const double thresholds[] = {1.0e-3, 1.0e-4, 7.5e-5, 5.0e-5,
                               2.5e-5, 1.0e-5, 1.0e-6};
  for (const double th : thresholds) {
    const kernels::Workload w = kernels::make_superlu(th);
    const program::Image img = kernels::build_image(w);
    auto ix = config::StructureIndex::build(program::lift(img));
    const auto verifier = kernels::make_verifier(w, img);
    search::SearchOptions opts;
    opts.keep_log = false;
    const search::SearchResult res =
        search::run_search(img, &ix, *verifier, opts);

    // Run the final composed configuration and read the reported error.
    const verify::EvalResult final_run = verify::evaluate_config(
        img, ix, res.final_config, *verifier);
    const double final_error =
        final_run.outputs.empty() ? -1.0 : final_run.outputs[0];
    std::printf("%-10.1e %10zu %8zu %7.1f%% %8.1f%% %12.3e %8s\n", th,
                res.candidates, res.configs_tested, res.stats.static_pct,
                res.stats.dynamic_pct, final_error,
                res.final_passed ? "pass" : "fail");
    std::fflush(stdout);
  }

  // Reference points (Section 3.3): the all-double and all-single errors.
  {
    const kernels::Workload w = kernels::make_superlu(1.0);
    const program::Image img = kernels::build_image(w);
    auto ix = config::StructureIndex::build(program::lift(img));
    const bench::TimedRun ro = bench::run_timed(img);
    config::PrecisionConfig all_single;
    for (std::size_t m = 0; m < ix.modules().size(); ++m) {
      all_single.set_module(m, config::Precision::kSingle);
    }
    const program::Image inst =
        instrument::instrument_image(img, ix, all_single);
    const bench::TimedRun rs = bench::run_timed(inst);
    std::printf("\nreported error, all-double: %.3e (paper 2.16e-12)\n",
                ro.outputs.at(0));
    std::printf("reported error, all-single: %.3e (paper 5.86e-04)\n",
                rs.outputs.at(0));
  }
  return 0;
}
