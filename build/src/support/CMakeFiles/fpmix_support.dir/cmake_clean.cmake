file(REMOVE_RECURSE
  "CMakeFiles/fpmix_support.dir/log.cpp.o"
  "CMakeFiles/fpmix_support.dir/log.cpp.o.d"
  "CMakeFiles/fpmix_support.dir/rng.cpp.o"
  "CMakeFiles/fpmix_support.dir/rng.cpp.o.d"
  "CMakeFiles/fpmix_support.dir/strings.cpp.o"
  "CMakeFiles/fpmix_support.dir/strings.cpp.o.d"
  "CMakeFiles/fpmix_support.dir/thread_pool.cpp.o"
  "CMakeFiles/fpmix_support.dir/thread_pool.cpp.o.d"
  "libfpmix_support.a"
  "libfpmix_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpmix_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
