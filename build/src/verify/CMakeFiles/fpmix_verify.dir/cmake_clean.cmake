file(REMOVE_RECURSE
  "CMakeFiles/fpmix_verify.dir/evaluate.cpp.o"
  "CMakeFiles/fpmix_verify.dir/evaluate.cpp.o.d"
  "CMakeFiles/fpmix_verify.dir/verifier.cpp.o"
  "CMakeFiles/fpmix_verify.dir/verifier.cpp.o.d"
  "libfpmix_verify.a"
  "libfpmix_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpmix_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
