file(REMOVE_RECURSE
  "libfpmix_support.a"
)
