// Tests for the native numeric substrate: dense/banded/CSR kernels in both
// precisions, multigrid, iterative refinement (Figure 12), generators and
// Matrix Market I/O.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/banded.hpp"
#include "linalg/csr.hpp"
#include "linalg/dense.hpp"
#include "linalg/matrix_market.hpp"
#include "linalg/refine.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace fpmix::linalg {
namespace {

Dense<double> random_dense(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Dense<double> a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0;
    for (std::size_t j = 0; j < n; ++j) {
      a.at(i, j) = rng.next_double(-1, 1);
      row += std::fabs(a.at(i, j));
    }
    a.at(i, i) += row + 1.0;  // comfortably nonsingular
  }
  return a;
}

// ---------------------------------------------------------------------------
// Dense LU.

class DenseLuSweep : public ::testing::TestWithParam<int> {};

TEST_P(DenseLuSweep, SolvesRandomSystems) {
  const std::size_t n = 5 + 7 * static_cast<std::size_t>(GetParam());
  const Dense<double> a = random_dense(n, 0xD00D + GetParam());
  SplitMix64 rng(0xFEED);
  std::vector<double> x_true(n);
  for (double& v : x_true) v = rng.next_double(-2, 2);
  const std::vector<double> b = a.matvec(x_true);
  const std::vector<double> x = dense_solve(a, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-9) << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DenseLuSweep, ::testing::Range(0, 6));

TEST(DenseLu, PivotingHandlesZeroLeadingElement) {
  Dense<double> a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const std::vector<double> x = dense_solve(a, {3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(DenseLu, SingularMatrixThrows) {
  Dense<double> a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  EXPECT_THROW(dense_solve(a, {1.0, 2.0}), Error);
}

TEST(DenseLu, FloatVariantIsLessAccurate) {
  const std::size_t n = 40;
  const Dense<double> a = random_dense(n, 0xAA);
  const std::vector<double> ones(n, 1.0);
  const std::vector<double> b = a.matvec(ones);
  const std::vector<double> xd = dense_solve(a, b);

  const Dense<float> af = a.cast<float>();
  std::vector<float> bf(n);
  for (std::size_t i = 0; i < n; ++i) bf[i] = static_cast<float>(b[i]);
  const std::vector<float> xf = dense_solve(af, bf);

  double err_d = 0, err_f = 0;
  for (std::size_t i = 0; i < n; ++i) {
    err_d = std::max(err_d, std::fabs(xd[i] - 1.0));
    err_f = std::max(err_f, std::fabs(double(xf[i]) - 1.0));
  }
  EXPECT_LT(err_d, 1e-12);
  EXPECT_GT(err_f, err_d * 100);  // the double/single gap the paper exploits
  EXPECT_LT(err_f, 1e-3);
}

// ---------------------------------------------------------------------------
// Banded LU and the memplus-like generator.

TEST(Banded, MatvecMatchesDense) {
  const Banded<double> a = make_memplus_like(24, 3, 7);
  SplitMix64 rng(3);
  std::vector<double> x(24);
  for (double& v : x) v = rng.next_double(-1, 1);
  const std::vector<double> y = a.matvec(x);
  for (std::size_t i = 0; i < 24; ++i) {
    double acc = 0;
    for (std::ptrdiff_t d = -3; d <= 3; ++d) {
      const std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) + d;
      if (j < 0 || j >= 24) continue;
      acc += a.get(i, d) * x[static_cast<std::size_t>(j)];
    }
    EXPECT_NEAR(y[i], acc, 1e-12);
  }
}

class BandedLuSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BandedLuSweep, SolvesMemplusLikeSystems) {
  const auto [nscale, seed] = GetParam();
  const std::size_t n = 60 + 40 * static_cast<std::size_t>(nscale);
  const std::size_t bw = 2 + static_cast<std::size_t>(seed % 3);
  Banded<double> a = make_memplus_like(n, bw, 100 + seed);
  const std::vector<double> ones(n, 1.0);
  const std::vector<double> b = a.matvec(ones);
  Banded<double> lu = a;
  banded_lu_factor(&lu);
  const std::vector<double> x = banded_lu_solve(lu, b);
  EXPECT_LT(solution_error(x, ones), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Cases, BandedLuSweep,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Range(0, 3)));

TEST(Banded, MemplusLikeIsPrecisionSensitive) {
  // The property Figure 11 relies on: double solves to ~1e-12, single only
  // to ~1e-4 (paper: 2.16e-12 vs 5.86e-04).
  const std::size_t n = 360, bw = 6;
  const Banded<double> a = make_memplus_like(n, bw, 0x51);
  const std::vector<double> ones(n, 1.0);
  const std::vector<double> b = a.matvec(ones);
  Banded<double> lud = a;
  banded_lu_factor(&lud);
  const double err_d = solution_error(banded_lu_solve(lud, b), ones);

  Banded<float> luf = a.cast<float>();
  banded_lu_factor(&luf);
  std::vector<float> bf(n);
  for (std::size_t i = 0; i < n; ++i) bf[i] = static_cast<float>(b[i]);
  const double err_f = solution_error(banded_lu_solve(luf, bf), ones);

  EXPECT_LT(err_d, 1e-10);
  EXPECT_GT(err_f, 1e-5);
  EXPECT_LT(err_f, 1e-2);
}

// ---------------------------------------------------------------------------
// CSR, CG, multigrid.

TEST(Csr, Poisson2dStructure) {
  const Csr<double> a = make_poisson2d(4);
  EXPECT_EQ(a.n, 16u);
  // Interior row: 5 entries; corner rows: 3.
  EXPECT_EQ(a.rowptr[1] - a.rowptr[0], 3);
  const std::vector<double> ones(16, 1.0);
  const std::vector<double> y = a.matvec(ones);
  // Row sums: 4 - (#neighbours).
  EXPECT_EQ(y[0], 2.0);   // corner
  EXPECT_EQ(y[5], 0.0);   // interior
}

TEST(Csr, CgSolvesSpdSystem) {
  const Csr<double> a = make_random_spd(120, 6, 8.0, 42);
  SplitMix64 rng(1);
  std::vector<double> x_true(a.n);
  for (double& v : x_true) v = rng.next_double(-1, 1);
  const std::vector<double> b = a.matvec(x_true);
  std::vector<double> x(a.n, 0.0);
  const double rnorm = cg_solve(a, b, &x, 120);
  EXPECT_LT(rnorm, 1e-8);
  for (std::size_t i = 0; i < a.n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

TEST(Csr, JacobiReducesResidual) {
  const Csr<double> a = make_poisson2d(8);
  std::vector<double> b(a.n, 1.0);
  std::vector<double> x(a.n, 0.0);
  const auto resid = [&] {
    const auto ax = a.matvec(x);
    double acc = 0;
    for (std::size_t i = 0; i < a.n; ++i) {
      acc += (b[i] - ax[i]) * (b[i] - ax[i]);
    }
    return std::sqrt(acc);
  };
  const double r0 = resid();
  jacobi(a, b, &x, 0.8, 50);
  EXPECT_LT(resid(), r0 * 0.5);
}

TEST(Multigrid, VcycleConvergesFasterThanJacobi) {
  const std::size_t m = 31;
  const std::size_t n = m * m;
  std::vector<double> bvec(n, 0.0);
  bvec[n / 2] = 1.0;
  bvec[n / 3] = -1.0;
  std::vector<double> x(n, 0.0);
  const double r = poisson_vcycle_solve<double>(m, bvec, &x, 12);
  EXPECT_LT(r, 1e-6);

  // Same work budget of plain Jacobi barely moves.
  const Csr<double> a = make_poisson2d(m);
  std::vector<double> xj(n, 0.0);
  jacobi(a, bvec, &xj, 0.8, 40);
  const auto ax = a.matvec(xj);
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += (bvec[i] - ax[i]) * (bvec[i] - ax[i]);
  }
  EXPECT_GT(std::sqrt(acc), r * 100);
}

TEST(Multigrid, FloatVcycleAlsoConverges) {
  // The AMG story (Section 3.2): iterating in single precision still
  // reaches a useful residual, just not double's floor.
  const std::size_t m = 31;
  const std::size_t n = m * m;
  std::vector<float> bvec(n, 0.0f);
  bvec[n / 2] = 1.0f;
  std::vector<float> x(n, 0.0f);
  const double r = poisson_vcycle_solve<float>(m, bvec, &x, 8);
  EXPECT_LT(r, 1e-4);
}

// ---------------------------------------------------------------------------
// Iterative refinement (Figure 12).

TEST(Refine, ConvergesToDoubleAccuracy) {
  const std::size_t n = 60;
  const Dense<double> a = random_dense(n, 0x1234);
  SplitMix64 rng(9);
  std::vector<double> x_true(n);
  for (double& v : x_true) v = rng.next_double(-1, 1);
  const std::vector<double> b = a.matvec(x_true);

  const RefineResult res = refine_solve(a, b, 1e-14, 30);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.final_residual, 1e-14);
  // A pure single solve cannot reach this.
  const Dense<float> af = a.cast<float>();
  std::vector<float> bf(n);
  for (std::size_t i = 0; i < n; ++i) bf[i] = static_cast<float>(b[i]);
  const std::vector<float> xf = dense_solve(af, bf);
  std::vector<double> xf_d(xf.begin(), xf.end());
  EXPECT_GT(scaled_residual(a, xf_d, b), res.final_residual * 10);
  // Refinement used only a handful of O(n^2) corrections.
  EXPECT_LE(res.iterations, 10u);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(res.x[i], x_true[i], 1e-10);
}

TEST(Refine, ReportsNonConvergenceOnHopelessTolerance) {
  const Dense<double> a = random_dense(30, 0x77);
  SplitMix64 rng(2);
  std::vector<double> b(30);
  for (double& v : b) v = rng.next_double(-1, 1);
  const RefineResult res = refine_solve(a, b, 1e-30, 5);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 5u);
}

// ---------------------------------------------------------------------------
// Matrix Market.

TEST(MatrixMarket, RoundTrip) {
  const Csr<double> a = make_random_spd(30, 4, 5.0, 77);
  const std::string text = write_matrix_market(a);
  const Csr<double> back = read_matrix_market(text);
  ASSERT_EQ(back.n, a.n);
  ASSERT_EQ(back.nnz(), a.nnz());
  EXPECT_EQ(back.rowptr, a.rowptr);
  EXPECT_EQ(back.col, a.col);
  for (std::size_t i = 0; i < a.nnz(); ++i) {
    EXPECT_EQ(back.val[i], a.val[i]);
  }
}

TEST(MatrixMarket, ParsesSymmetric) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% a comment\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "2 2 3.0\n"
      "3 3 4.0\n"
      "3 1 -1.0\n";
  const Csr<double> a = read_matrix_market(text);
  EXPECT_EQ(a.n, 3u);
  EXPECT_EQ(a.nnz(), 5u);  // mirrored off-diagonal
  const std::vector<double> y = a.matvec({1.0, 1.0, 1.0});
  EXPECT_EQ(y[0], 1.0);   // 2 - 1
  EXPECT_EQ(y[1], 3.0);
  EXPECT_EQ(y[2], 3.0);   // 4 - 1
}

TEST(MatrixMarket, RejectsMalformedInput) {
  EXPECT_THROW(read_matrix_market(""), Error);
  EXPECT_THROW(read_matrix_market("%%MatrixMarket matrix array real "
                                  "general\n1 1\n1.0\n"),
               Error);
  EXPECT_THROW(read_matrix_market("%%MatrixMarket matrix coordinate real "
                                  "general\n2 2 1\n"),
               Error);  // truncated entries
  EXPECT_THROW(read_matrix_market("%%MatrixMarket matrix coordinate real "
                                  "general\n2 2 1\n5 5 1.0\n"),
               Error);  // out-of-range index
  EXPECT_THROW(read_matrix_market("%%MatrixMarket matrix coordinate complex "
                                  "general\n1 1 1\n1 1 1.0 0.0\n"),
               Error);  // unsupported field
}

}  // namespace
}  // namespace fpmix::linalg
