#include "support/backoff.hpp"

namespace fpmix {

std::uint64_t backoff_delay_ms(const BackoffPolicy& policy,
                               std::uint32_t failures,
                               std::uint64_t jitter_draw) {
  if (failures == 0) return 0;
  const std::uint64_t cap = policy.cap_ms > 0 ? policy.cap_ms : 1;
  std::uint64_t raw = policy.base_ms > 0 ? policy.base_ms : 1;
  // Double per failure, saturating at the cap (the explicit bound also
  // keeps a huge failure count from overflowing the shift).
  for (std::uint32_t i = 1; i < failures && raw < cap; ++i) raw <<= 1;
  if (raw > cap) raw = cap;

  // Uniform factor in [1 - jitter, 1 + jitter] from the raw draw (same
  // u64 -> [0,1) mapping SplitMix64::next_double uses).
  const double unit =
      static_cast<double>(jitter_draw >> 11) * 0x1.0p-53;
  const double factor = 1.0 + policy.jitter * (2.0 * unit - 1.0);
  std::uint64_t ms = static_cast<std::uint64_t>(
      static_cast<double>(raw) * factor + 0.5);
  if (ms < 1) ms = 1;
  if (ms > cap) ms = cap;
  return ms;
}

}  // namespace fpmix
