// The structured (lifted) view of a binary: module -> function -> basic
// block -> instruction, with a symbolic CFG that the patcher can edit.
//
// This mirrors Dyninst's parse + PatchAPI object model. Branch targets and
// call targets are symbolic (block index / function index) so that blocks
// can be split, re-ordered and new blocks inserted; the layout engine
// (layout.hpp) turns the result back into concrete bytes, assigning new
// addresses and relocating all control flow -- Dyninst's binary rewriter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/instr.hpp"
#include "program/image.hpp"

namespace fpmix::program {

/// Index of a basic block within its function, or of a function within the
/// program.
using BlockIndex = int;
using FuncIndex = int;
inline constexpr int kNoIndex = -1;

/// A basic block. Instructions run straight-line; if the last instruction is
/// a branch, its `src.imm` holds the *local block index* of the taken target
/// (kept in sync with `taken`). `call` instructions may appear anywhere in
/// the block; their `src.imm` holds the callee's FuncIndex.
struct BasicBlock {
  std::vector<arch::Instr> instrs;

  BlockIndex taken = kNoIndex;        // branch target (jmp / jcc)
  BlockIndex fallthrough = kNoIndex;  // successor when not taken / no branch

  /// Address of the first instruction before any patching (used for
  /// reporting and for stable block naming in configurations). New blocks
  /// inserted by the patcher inherit the origin of the code they wrap.
  std::uint64_t orig_addr = arch::kNoAddr;

  bool ends_with_branch() const {
    return !instrs.empty() && arch::opcode_info(instrs.back().op).is_branch;
  }
  bool ends_with_cond_branch() const {
    return !instrs.empty() &&
           arch::opcode_info(instrs.back().op).is_cond_branch;
  }
  bool ends_with_stop() const {  // ret or halt: no successors
    if (instrs.empty()) return false;
    const auto& info = arch::opcode_info(instrs.back().op);
    return info.is_ret || info.is_halt;
  }
};

struct Function {
  std::string name;
  std::string module;
  std::uint64_t orig_addr = arch::kNoAddr;

  /// blocks[0] is the entry block. Block order is also layout order.
  std::vector<BasicBlock> blocks;

  std::size_t instruction_count() const {
    std::size_t n = 0;
    for (const auto& b : blocks) n += b.instrs.size();
    return n;
  }
};

/// A whole program in structured form. Data/bss/entry metadata is carried
/// through from the Image so that relayout can produce a runnable Image.
struct Program {
  std::uint64_t code_base = Image::kDefaultCodeBase;
  std::uint64_t data_base = Image::kDefaultDataBase;
  std::vector<std::uint8_t> data;
  std::uint64_t bss_base = 0;  // 0 = immediately after data (Image semantics)
  std::uint64_t bss_size = 0;
  std::uint64_t memory_size = Image::kDefaultMemorySize;

  std::vector<Function> functions;
  FuncIndex entry_function = kNoIndex;

  const Function* find_function(std::string_view name) const;
  FuncIndex find_function_index(std::string_view name) const;

  std::size_t instruction_count() const {
    std::size_t n = 0;
    for (const auto& f : functions) n += f.instruction_count();
    return n;
  }

  /// Lists distinct module names in first-appearance order.
  std::vector<std::string> module_names() const;

  /// Structural sanity checks: edge indices in range, entry blocks present,
  /// terminators consistent with edges. Throws ProgramError on violation.
  void validate() const;
};

/// Recovers the structured form from an image: decodes every function,
/// finds basic-block leaders (function entry, branch targets, post-branch
/// instructions), splits into blocks and builds symbolic edges. Branch
/// `src.imm` fields are rewritten from absolute addresses to local block
/// indices; call targets to function indices.
Program lift(const Image& image);

}  // namespace fpmix::program
