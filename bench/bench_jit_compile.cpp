// Three-way MIPS comparison of the VM execution engines, plus the JIT's
// compile-time budget.
//
// For each NAS kernel analogue, predecodes the image once and runs it to
// completion on the reference switch interpreter, the micro-op engine and
// the baseline JIT (profiling off on all three -- the trial-evaluation
// configuration). Reports retired-instructions-per-second per engine, the
// JIT's standalone compile+link time, and the cold (first run on a fresh
// image, compile included) vs warm (per-image code cache hit) wall time.
// All three engines must agree bit-for-bit on outputs and retired counts;
// any mismatch fails the run with a non-zero exit, so this binary doubles
// as an end-to-end differential check.
//
// On hosts without JIT support (non-x86-64, sanitizer builds, hardened
// kernels) the JIT columns are skipped and the switch/micro comparison
// still runs -- exit stays 0 so CI sanitizer legs can execute the binary.
//
// Usage: bench_jit_compile [S|W|A] [--quick]
//   --quick: class S, one repetition per engine (the CI smoke
//   configuration; still prints the full table).
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "kernels/workload.hpp"
#include "support/timer.hpp"
#include "vm/jit/jit.hpp"
#include "vm/machine.hpp"

namespace {

struct EngineRun {
  double best_seconds = 0.0;
  double first_seconds = 0.0;  // cold run: includes compile+link on the JIT
  std::uint64_t retired = 0;
  std::vector<double> outputs;
  bool ok = false;
  std::string error;
};

EngineRun run_best_of(
    const std::shared_ptr<const fpmix::vm::ExecutableImage>& exec,
    fpmix::vm::Engine engine, std::uint64_t max_instructions, int reps) {
  EngineRun out;
  for (int rep = 0; rep < reps; ++rep) {
    fpmix::vm::Machine::Options opts;
    opts.engine = engine;
    opts.profile = false;
    opts.max_instructions = max_instructions;
    fpmix::vm::Machine m(exec, opts);
    fpmix::Timer t;
    const fpmix::vm::RunResult r = m.run();
    const double secs = t.elapsed_seconds();
    if (rep == 0) out.first_seconds = secs;
    if (rep == 0 || secs < out.best_seconds) out.best_seconds = secs;
    out.retired = m.instructions_retired();
    out.outputs = m.output_f64();
    out.ok = r.ok();
    out.error = r.trap_message;
    if (!out.ok) break;
  }
  return out;
}

bool bit_identical(const EngineRun& a, const EngineRun& b) {
  if (a.retired != b.retired || a.outputs.size() != b.outputs.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a.outputs[i]) !=
        std::bit_cast<std::uint64_t>(b.outputs[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpmix;

  char cls = 'W';
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strlen(argv[i]) == 1) {
      cls = argv[i][0];
    }
  }
  if (quick) cls = 'S';
  const int reps = quick ? 1 : 3;

  const bool jit = vm::jit::jit_supported();
  if (!jit) {
    std::printf("note: jit unavailable on this host (%s); "
                "jit columns skipped\n",
                vm::jit::jit_unsupported_reason());
  }

  std::vector<kernels::Workload> suite;
  suite.push_back(kernels::make_ep(cls));
  suite.push_back(kernels::make_cg(cls));
  suite.push_back(kernels::make_ft(cls));
  suite.push_back(kernels::make_mg(cls));
  suite.push_back(kernels::make_bt(cls));
  suite.push_back(kernels::make_lu(cls));
  suite.push_back(kernels::make_sp(cls));

  std::printf("VM engines + JIT compile budget, NAS kernel suite, class %c "
              "(best of %d rep%s)\n",
              cls, reps, reps == 1 ? "" : "s");
  bench::print_rule(100);
  std::printf("%-8s %13s %10s %10s %10s %8s %9s %9s %9s\n", "bench",
              "instructions", "sw MIPS", "micro MIPS", "jit MIPS",
              "jit/mic", "compile", "cold ms", "warm ms");
  bench::print_rule(100);

  bool all_match = true;
  double log_speedup_sum = 0.0;
  std::size_t speedup_rows = 0;
  for (const kernels::Workload& w : suite) {
    const program::Image img = kernels::build_image(w);

    // Standalone compile+link cost, measured outside the Machine so the
    // table separates translation from execution. Monolithic (global-form)
    // compile of the whole stream, the same work a cold Machine run does.
    double compile_seconds = 0.0;
    if (jit) {
      const auto exec_probe = vm::ExecutableImage::build(img);
      Timer ct;
      const auto blob = vm::jit::compile_stream(
          exec_probe->uops(), vm::jit::CompileMode{false, false});
      std::vector<vm::jit::LinkSegment> segs;
      segs.push_back({blob, 0, 0});
      const auto linked =
          vm::jit::JitImage::link(segs, exec_probe->uops().size());
      compile_seconds = ct.elapsed_seconds();
      if (linked == nullptr) {
        std::printf("%-8s FAILED: jit link refused\n", w.name.c_str());
        all_match = false;
        continue;
      }
    }

    const auto exec = vm::ExecutableImage::build(img);
    const EngineRun sw = run_best_of(exec, vm::Engine::kSwitch,
                                     w.max_instructions, reps);
    const EngineRun micro = run_best_of(exec, vm::Engine::kMicroOp,
                                        w.max_instructions, reps);
    // reps + 1 so the warm column exists even under --quick: rep 0 is the
    // cold compile, later reps hit the per-image code cache.
    const EngineRun jrun =
        jit ? run_best_of(exec, vm::Engine::kJit, w.max_instructions,
                          reps + 1)
            : EngineRun{};
    if (!sw.ok || !micro.ok || (jit && !jrun.ok)) {
      std::printf("%-8s FAILED: %s\n", w.name.c_str(),
                  (!sw.ok   ? sw.error
                   : !micro.ok ? micro.error
                               : jrun.error)
                      .c_str());
      all_match = false;
      continue;
    }
    if (!bit_identical(sw, micro) || (jit && !bit_identical(sw, jrun))) {
      std::printf("%-8s ENGINE MISMATCH (outputs or retired count)\n",
                  w.name.c_str());
      all_match = false;
      continue;
    }

    const double sw_mips =
        static_cast<double>(sw.retired) / sw.best_seconds / 1e6;
    const double micro_mips =
        static_cast<double>(micro.retired) / micro.best_seconds / 1e6;
    if (jit) {
      const double jit_mips =
          static_cast<double>(jrun.retired) / jrun.best_seconds / 1e6;
      const double speedup = jit_mips / micro_mips;
      log_speedup_sum += std::log(speedup);
      ++speedup_rows;
      std::printf("%-8s %13llu %10.1f %10.1f %10.1f %7.2fx %7.2fms "
                  "%9.2f %9.2f\n",
                  w.name.c_str(),
                  static_cast<unsigned long long>(jrun.retired), sw_mips,
                  micro_mips, jit_mips, speedup, 1e3 * compile_seconds,
                  1e3 * jrun.first_seconds, 1e3 * jrun.best_seconds);
    } else {
      std::printf("%-8s %13llu %10.1f %10.1f %10s %8s %9s %9s %9s\n",
                  w.name.c_str(),
                  static_cast<unsigned long long>(micro.retired), sw_mips,
                  micro_mips, "-", "-", "-", "-", "-");
    }
  }
  bench::print_rule(100);
  if (!all_match) {
    std::printf("FAIL: engines disagree; see rows above\n");
    return 1;
  }
  if (speedup_rows > 0) {
    const double geomean =
        std::exp(log_speedup_sum / static_cast<double>(speedup_rows));
    std::printf("geomean speedup: %.2fx (jit over micro-op)\n", geomean);
  }
  return 0;
}
