#include "runner/worker_pool.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "support/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FPMIX_POOL_POSIX 1
#include <poll.h>
#else
#define FPMIX_POOL_POSIX 0
#endif

namespace fpmix::runner {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// One worker plus its in-flight bookkeeping.
struct WorkerPool::Slot {
  Worker worker;
  bool busy = false;
  std::uint64_t ticket = 0;       // in-flight work ticket when busy
  std::uint64_t deadline_at = 0;  // steady ns; 0 = no supervisor timeout
  bool term_sent = false;
  std::uint64_t kill_at = 0;  // TERM grace expiry once term_sent
  /// Driver-side mirror of the worker's delta session base: the last config
  /// this worker successfully received. Reset on every (re)spawn -- a fresh
  /// worker has no base, so the first request after a respawn is always a
  /// full frame.
  bool has_base = false;
  config::PrecisionConfig base;
  std::size_t stats_index = 0;  // index into PoolStats::slots
};

WorkerPool::WorkerPool(const WorkerContext& ctx, const PoolOptions& opts)
    : ctx_(ctx), opts_(opts) {}

WorkerPool::~WorkerPool() = default;

SlotStats* WorkerPool::slot_stats(const Slot& s) {
  return s.stats_index < stats_.slots.size() ? &stats_.slots[s.stats_index]
                                             : nullptr;
}

bool WorkerPool::spawn_slot(Slot* slot, bool respawn) {
  // The fresh worker has no session base; delta requests would desync.
  slot->has_base = false;
  if (!slot->worker.spawn(ctx_, opts_.limits)) return false;
  ++stats_.workers_spawned;
  if (respawn) {
    ++stats_.workers_respawned;
    if (SlotStats* ss = slot_stats(*slot)) ++ss->respawns;
  }
  return true;
}

bool WorkerPool::record_fault_event(const std::string& key) {
  const std::uint32_t streak = ++fault_streak_[key];
  if (streak < opts_.max_crashes_per_config) return false;
  quarantined_.insert(key);
  ++stats_.quarantined_configs;
  return true;
}

bool WorkerPool::start() {
  if (!isolation_supported()) return false;
  const int want = std::max(1, opts_.workers);
  for (int i = 0; i < want; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->stats_index = slots_.size();
    if (spawn_slot(slot.get(), /*respawn=*/false)) {
      slots_.push_back(std::move(slot));
    }
  }
  stats_.slots.resize(slots_.size());
  started_ = !slots_.empty();
  return started_;
}

void WorkerPool::submit(std::uint64_t ticket, const std::string& key,
                        const config::PrecisionConfig& config) {
  Work w;
  w.key = key;
  w.cfg = config;
  work_.emplace(ticket, std::move(w));
  queue_.push_back(ticket);
}

void WorkerPool::finish(std::uint64_t ticket, verify::EvalResult result,
                        bool quarantined) {
  auto it = work_.find(ticket);
  if (it == work_.end()) return;  // stale (post-storm) delivery
  Finished f;
  f.ticket = ticket;
  f.outcome.result = std::move(result);
  f.outcome.worker_deaths = it->second.deaths;
  f.outcome.quarantined = quarantined;
  const std::uint64_t start = it->second.first_ns;
  f.outcome.wall_ns = start != 0 && now_ns() > start ? now_ns() - start : 0;
  work_.erase(it);
  finished_.push_back(std::move(f));
}

// A verdict (pass/fail/timeout) landed for this config: its fault streak
// resets and the pool-wide storm detector sees a healthy environment.
void WorkerPool::deliver_verdict(std::uint64_t ticket,
                                 verify::EvalResult result) {
  auto it = work_.find(ticket);
  if (it != work_.end()) fault_streak_[it->second.key] = 0;
  consecutive_deaths_ = 0;
  finish(ticket, std::move(result), /*quarantined=*/false);
}

// A fault event (death / resource verdict / protocol error): retry the
// trial with a fresh injector draw, or trip the per-config breaker.
void WorkerPool::fault_event(std::uint64_t ticket, Slot* slot,
                             const std::string& detail) {
  auto it = work_.find(ticket);
  if (it == work_.end()) return;
  ++it->second.deaths;
  const std::string& key = it->second.key;
  if (record_fault_event(key)) {
    if (SlotStats* ss = slot_stats(*slot)) ++ss->quarantines;
    verify::EvalResult er;
    er.passed = false;
    er.failure_class = verify::FailureClass::kCrash;
    er.failure = strformat(
        "quarantined after %u consecutive worker faults (last: %s)",
        static_cast<unsigned>(fault_streak_[key]), detail.c_str());
    finish(ticket, std::move(er), /*quarantined=*/true);
  } else {
    queue_.push_back(ticket);
  }
}

void WorkerPool::note_death() {
  ++consecutive_deaths_;
  if (consecutive_deaths_ >= opts_.crash_storm_threshold) {
    stats_.crash_storm = true;
  }
}

// Force-kills and reaps a worker whose stream turned bad (corrupt frame,
// failed send). Harmless when the child is already gone.
Worker::Death WorkerPool::kill_and_reap(Slot* slot) {
  slot->worker.send_sigkill();
  slot->has_base = false;
  Worker::Death death;
  slot->worker.reap(&death, /*block=*/true);
  return death;
}

void WorkerPool::process_ready(Slot* sp) {
#if FPMIX_POOL_POSIX
  Slot& s = *sp;
  std::string payload;
  bool eof = false;
  const FrameStatus st = s.worker.read_result(&payload, &eof);
  const std::uint64_t ticket = s.ticket;
  if (st == FrameStatus::kOk) {
    WireResult w;
    verify::EvalResult er;
    if (!decode_result(payload, &w) || !to_eval_result(w, &er)) {
      ++stats_.protocol_errors;
      kill_and_reap(&s);
      note_death();
      s.busy = false;
      if (SlotStats* ss = slot_stats(s)) ++ss->crashes;
      fault_event(ticket, &s, "malformed result payload from worker");
      return;
    }
    s.busy = false;
    if (er.failure_class == verify::FailureClass::kResource) {
      // Resource verdicts are fault events, not votes: the config gets a
      // fresh attempt, then the breaker.
      ++stats_.resource_retries;
      consecutive_deaths_ = 0;  // the worker survived and spoke
      fault_event(ticket, &s, er.failure);
      return;
    }
    deliver_verdict(ticket, std::move(er));
    return;
  }
  if (st == FrameStatus::kCorrupt) {
    ++stats_.protocol_errors;
    kill_and_reap(&s);
    note_death();
    s.busy = false;
    if (SlotStats* ss = slot_stats(s)) ++ss->crashes;
    fault_event(ticket, &s, "corrupt or truncated result frame");
    return;
  }
  // kNeedMore: either nothing complete yet, or EOF with no frame.
  if (!eof) return;
  Worker::Death death;
  s.worker.reap(&death, /*block=*/true);
  s.busy = false;
  s.has_base = false;
  if (s.term_sent) {
    // The supervisor killed it for exceeding the trial deadline: a
    // voting kTimeout verdict, same as the in-process deadline path.
    ++stats_.timeouts_killed;
    if (SlotStats* ss = slot_stats(s)) ++ss->timeouts;
    verify::EvalResult er;
    er.passed = false;
    er.failure_class = verify::FailureClass::kTimeout;
    er.run_status = vm::RunResult::Status::kDeadline;
    er.failure = strformat(
        "trial exceeded the supervisor deadline (%llu ms); worker killed",
        static_cast<unsigned long long>(opts_.trial_timeout_ms));
    deliver_verdict(ticket, std::move(er));
    return;
  }
  std::string detail;
  const verify::FailureClass cls = classify_death(death, &detail);
  ++stats_.worker_crashes;
  if (death.signaled) {
    ++stats_.crashes_by_signal[signal_name(death.signal)];
  } else {
    ++stats_.crashes_by_signal[strformat("exit:%d", death.exit_code)];
  }
  if (cls == verify::FailureClass::kResource) ++stats_.resource_retries;
  if (SlotStats* ss = slot_stats(s)) ++ss->crashes;
  note_death();
  fault_event(ticket, &s, detail);
#else
  (void)sp;
#endif
}

void WorkerPool::dispatch() {
#if FPMIX_POOL_POSIX
  for (auto& sp : slots_) {
    Slot& s = *sp;
    if (s.busy) continue;
    // Configs quarantined earlier never run again.
    while (!queue_.empty()) {
      const std::uint64_t t = queue_.front();
      auto it = work_.find(t);
      if (it == work_.end()) {  // stale ticket (post-storm drain)
        queue_.pop_front();
        continue;
      }
      if (quarantined_.count(it->second.key) == 0) break;
      queue_.pop_front();
      verify::EvalResult er;
      er.passed = false;
      er.failure_class = verify::FailureClass::kCrash;
      er.failure = "config quarantined by the crash-loop breaker";
      finish(t, std::move(er), /*quarantined=*/true);
    }
    if (queue_.empty()) break;
    if (!s.worker.running()) {
      if (consecutive_deaths_ > 0) {
        // Jittered exponential backoff (2ms doubling to a 200ms cap by
        // default): keeps a crash-looping config from respawn-thrashing
        // the machine, and keeps slots from respawning in lockstep.
        const std::uint64_t ms = backoff_delay_ms(
            opts_.respawn_backoff, consecutive_deaths_,
            backoff_rng_.next_u64());
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }
      if (!spawn_slot(&s, /*respawn=*/true)) {
        note_death();  // repeated fork failure is an environment problem
        if (stats_.crash_storm) break;
        continue;
      }
    }
    const std::uint64_t t = queue_.front();
    queue_.pop_front();
    Work& w = work_.find(t)->second;
    TrialRequest req;
    req.key = w.key;
    req.exec_index = exec_counter_[w.key]++;
    // Adaptive config encoding: ship the delta against this worker's
    // session base when it is strictly smaller than the full canonical
    // key; otherwise fall back to a full frame (which also re-anchors
    // the session after large jumps).
    std::string full = w.cfg.canonical_key();
    if (s.has_base) {
      std::string delta = w.cfg.encode_delta_from(s.base);
      if (delta.size() < full.size()) {
        req.opcode = kReqDelta;
        req.config_key = std::move(delta);
      }
    }
    if (req.opcode != kReqDelta) {
      req.opcode = kReqFull;
      req.config_key = std::move(full);
    }
    if (w.first_ns == 0) w.first_ns = now_ns();
    ++stats_.isolated_trials;
    if (!s.worker.send_request(req)) {
      const Worker::Death death = kill_and_reap(&s);
      std::string detail;
      classify_death(death, &detail);
      ++stats_.worker_crashes;
      if (SlotStats* ss = slot_stats(s)) ++ss->crashes;
      note_death();
      fault_event(t, &s,
                  strformat("request pipe broken (%s)", detail.c_str()));
      if (stats_.crash_storm) break;
      continue;
    }
    // The worker advances its session base on every request it decodes;
    // mirror that here. If it dies before decoding, the respawn resets
    // both sides.
    s.base = w.cfg;
    s.has_base = true;
    if (req.opcode == kReqDelta) {
      ++stats_.delta_requests;
      stats_.delta_bytes += req.config_key.size();
    } else {
      ++stats_.full_requests;
      stats_.full_bytes += req.config_key.size();
    }
    if (SlotStats* ss = slot_stats(s)) ++ss->requests;
    s.busy = true;
    s.ticket = t;
    s.term_sent = false;
    s.kill_at = 0;
    s.deadline_at = opts_.trial_timeout_ms > 0
                        ? now_ns() + opts_.trial_timeout_ms * 1000000ull
                        : 0;
  }
#endif
}

void WorkerPool::fail_all_outstanding(const std::string& reason) {
  // Collect first: finish() mutates work_.
  std::vector<std::uint64_t> tickets;
  tickets.reserve(work_.size());
  for (const auto& [t, w] : work_) tickets.push_back(t);
  for (std::uint64_t t : tickets) {
    verify::EvalResult er;
    er.passed = false;
    er.failure_class = verify::FailureClass::kInternalError;
    er.failure = reason;
    finish(t, std::move(er), /*quarantined=*/false);
  }
  queue_.clear();
}

void WorkerPool::pump(int max_wait_ms) {
#if !FPMIX_POOL_POSIX
  (void)max_wait_ms;
  fail_all_outstanding("process isolation is unsupported on this platform");
  return;
#else
  if (!started_) {
    fail_all_outstanding("worker pool has no running workers");
    return;
  }
  if (stats_.crash_storm) {
    fail_all_outstanding(strformat(
        "worker crash storm: %u consecutive deaths, batch aborted",
        static_cast<unsigned>(consecutive_deaths_)));
    return;
  }

  dispatch();
  if (stats_.crash_storm) {
    fail_all_outstanding(strformat(
        "worker crash storm: %u consecutive deaths, batch aborted",
        static_cast<unsigned>(consecutive_deaths_)));
    return;
  }

  // Gather in-flight response fds.
  std::vector<pollfd> fds;
  std::vector<Slot*> fd_slots;
  std::uint64_t next_event = 0;
  for (auto& sp : slots_) {
    Slot& s = *sp;
    if (!s.busy) continue;
    fds.push_back(pollfd{s.worker.response_fd(), POLLIN, 0});
    fd_slots.push_back(&s);
    const std::uint64_t ev = s.term_sent ? s.kill_at : s.deadline_at;
    if (ev != 0 && (next_event == 0 || ev < next_event)) next_event = ev;
  }
  if (fds.empty()) return;  // nothing in flight

  int timeout_ms = max_wait_ms;
  if (next_event != 0) {
    const std::uint64_t now = now_ns();
    const int until =
        next_event > now
            ? static_cast<int>((next_event - now) / 1000000ull) + 1
            : 0;
    if (timeout_ms < 0 || until < timeout_ms) timeout_ms = until;
  }
  ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);

  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents != 0) process_ready(fd_slots[i]);
  }

  // Deadline enforcement: TERM first, KILL after the grace period.
  const std::uint64_t now = now_ns();
  for (auto& sp : slots_) {
    Slot& s = *sp;
    if (!s.busy) continue;
    if (!s.term_sent && s.deadline_at != 0 && now >= s.deadline_at) {
      s.worker.send_sigterm();
      s.term_sent = true;
      s.kill_at = now + opts_.term_grace_ms * 1000000ull;
    } else if (s.term_sent && now >= s.kill_at) {
      s.worker.send_sigkill();
    }
  }
#endif
}

std::vector<WorkerPool::Finished> WorkerPool::take_finished() {
  std::vector<Finished> out;
  out.swap(finished_);
  return out;
}

void WorkerPool::poll_fds(std::vector<int>* out) const {
  for (const auto& sp : slots_) {
    if (sp->busy) out->push_back(sp->worker.response_fd());
  }
}

std::uint64_t WorkerPool::next_deadline_ns() const {
  std::uint64_t next_event = 0;
  for (const auto& sp : slots_) {
    const Slot& s = *sp;
    if (!s.busy) continue;
    const std::uint64_t ev = s.term_sent ? s.kill_at : s.deadline_at;
    if (ev != 0 && (next_event == 0 || ev < next_event)) next_event = ev;
  }
  return next_event;
}

std::vector<TrialOutcome> WorkerPool::run_batch(
    const std::vector<TrialJob>& jobs) {
  std::vector<TrialOutcome> out(jobs.size());
  if (jobs.empty()) return out;

#if !FPMIX_POOL_POSIX
  for (auto& o : out) {
    o.result.passed = false;
    o.result.failure_class = verify::FailureClass::kInternalError;
    o.result.failure = "process isolation is unsupported on this platform";
  }
  return out;
#else
  if (!started_) {
    for (auto& o : out) {
      o.result.passed = false;
      o.result.failure_class = verify::FailureClass::kInternalError;
      o.result.failure = "worker pool has no running workers";
    }
    return out;
  }

  std::map<std::uint64_t, std::size_t> index_of;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::uint64_t t = next_ticket_++;
    index_of[t] = i;
    submit(t, jobs[i].key, *jobs[i].config);
  }
  std::size_t completed = 0;
  while (completed < jobs.size()) {
    pump(/*max_wait_ms=*/-1);
    for (Finished& f : take_finished()) {
      auto it = index_of.find(f.ticket);
      if (it == index_of.end()) continue;  // not from this batch
      out[it->second] = std::move(f.outcome);
      ++completed;
    }
  }
  return out;
#endif
}

}  // namespace fpmix::runner
