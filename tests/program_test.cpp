// Tests for the structured program layer: assembler, CFG recovery (lift),
// layout/relocation (the binary-rewriter pipeline), and image validation.
#include <gtest/gtest.h>

#include "arch/encode.hpp"
#include "asm/assembler.hpp"
#include "program/layout.hpp"
#include "program/program.hpp"
#include "support/error.hpp"

namespace fpmix {
namespace {

using arch::Opcode;
using arch::Operand;
namespace in = arch::intrinsics;

// A small two-function program with a loop and a conditional.
program::Program sample_program() {
  casm::Assembler a;

  // helper(): xmm0 = xmm0 * xmm0
  a.begin_function("square", "libmath");
  a.emit(Opcode::kMulsd, Operand::xmm(0), Operand::xmm(0));
  a.ret();
  a.end_function();

  // main(): sum of squares 1..10, output.
  a.begin_function("main", "main");
  const std::uint64_t acc = a.data_f64(0.0);
  a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(1));
  auto loop = a.new_label();
  auto done = a.new_label();
  a.bind(loop);
  a.emit(Opcode::kCmp, Operand::gpr(1), Operand::make_imm(10));
  a.jg(done);
  a.emit(Opcode::kCvtsi2sd, Operand::xmm(0), Operand::gpr(1));
  a.call("square");
  a.emit(Opcode::kMovsdXM, Operand::xmm(1),
         Operand::mem_abs(static_cast<std::int32_t>(acc)));
  a.emit(Opcode::kAddsd, Operand::xmm(1), Operand::xmm(0));
  a.emit(Opcode::kMovsdMX, Operand::mem_abs(static_cast<std::int32_t>(acc)),
         Operand::xmm(1));
  a.emit(Opcode::kAdd, Operand::gpr(1), Operand::make_imm(1));
  a.jmp(loop);
  a.bind(done);
  a.emit(Opcode::kMovsdXM, Operand::xmm(0),
         Operand::mem_abs(static_cast<std::int32_t>(acc)));
  a.intrin(in::Id::kOutputF64);
  a.halt();
  a.end_function();

  return a.finish("main");
}

TEST(Assembler, BuildsExpectedStructure) {
  const program::Program prog = sample_program();
  ASSERT_EQ(prog.functions.size(), 2u);
  EXPECT_EQ(prog.functions[0].name, "square");
  EXPECT_EQ(prog.functions[0].module, "libmath");
  EXPECT_EQ(prog.functions[1].name, "main");
  EXPECT_EQ(prog.entry_function, 1);
  // main: preamble block, loop-head block (cmp/jg), body block, exit block.
  EXPECT_EQ(prog.functions[1].blocks.size(), 4u);
  EXPECT_EQ(prog.functions[0].blocks.size(), 1u);
  const auto modules = prog.module_names();
  ASSERT_EQ(modules.size(), 2u);
  EXPECT_EQ(modules[0], "libmath");
  EXPECT_EQ(modules[1], "main");
}

TEST(Assembler, RejectsBrokenPrograms) {
  {
    casm::Assembler a;
    a.begin_function("f", "m");
    auto l = a.new_label();
    a.jmp(l);  // label never bound
    a.end_function();
    EXPECT_THROW(a.finish("f"), ProgramError);
  }
  {
    casm::Assembler a;
    a.begin_function("f", "m");
    a.call("missing");
    a.halt();
    a.end_function();
    EXPECT_THROW(a.finish("f"), ProgramError);
  }
  {
    casm::Assembler a;
    a.begin_function("f", "m");
    a.emit(Opcode::kNop);  // falls off the end
    a.end_function();
    EXPECT_THROW(a.finish("f"), ProgramError);
  }
  {
    casm::Assembler a;
    a.begin_function("f", "m");
    a.halt();
    a.end_function();
    EXPECT_THROW(a.finish("nonexistent"), ProgramError);
  }
}

TEST(Layout, ProducesValidImage) {
  const program::Image img = program::relayout(sample_program());
  EXPECT_EQ(img.symbols.size(), 2u);
  EXPECT_GT(img.code.size(), 0u);
  EXPECT_EQ(img.entry, img.find_function("main")->addr);
  // Whole code segment decodes cleanly.
  const auto instrs = arch::decode_all(img.code, img.code_base);
  EXPECT_GT(instrs.size(), 10u);
}

TEST(Lift, RecoversStructure) {
  const program::Program prog = sample_program();
  const program::Image img = program::relayout(prog);
  const program::Program lifted = program::lift(img);

  ASSERT_EQ(lifted.functions.size(), prog.functions.size());
  for (std::size_t i = 0; i < prog.functions.size(); ++i) {
    EXPECT_EQ(lifted.functions[i].name, prog.functions[i].name);
    EXPECT_EQ(lifted.functions[i].module, prog.functions[i].module);
    EXPECT_EQ(lifted.functions[i].blocks.size(),
              prog.functions[i].blocks.size());
    EXPECT_EQ(lifted.functions[i].instruction_count(),
              prog.functions[i].instruction_count());
  }
  EXPECT_EQ(lifted.entry_function, prog.entry_function);
}

TEST(Lift, RoundTripIsAFixedPoint) {
  // lift(relayout(lift(img))) must equal lift(img) structurally, and a
  // second rewrite must produce byte-identical code.
  const program::Image img1 = program::relayout(sample_program());
  const program::Image img2 = program::rewrite_identity(img1);
  const program::Image img3 = program::rewrite_identity(img2);
  EXPECT_EQ(img2.code, img3.code);
  EXPECT_EQ(img2.entry, img3.entry);
  ASSERT_EQ(img2.symbols.size(), img3.symbols.size());
  for (std::size_t i = 0; i < img2.symbols.size(); ++i) {
    EXPECT_EQ(img2.symbols[i].addr, img3.symbols[i].addr);
    EXPECT_EQ(img2.symbols[i].size, img3.symbols[i].size);
  }
}

TEST(Image, ValidateCatchesCorruption) {
  program::Image img = program::relayout(sample_program());
  {
    program::Image bad = img;
    bad.entry = bad.code_end() + 100;
    EXPECT_THROW(bad.validate(), ProgramError);
  }
  {
    program::Image bad = img;
    bad.symbols[0].size -= 1;  // coverage gap
    EXPECT_THROW(bad.validate(), ProgramError);
  }
  {
    program::Image bad = img;
    bad.symbols.clear();
    EXPECT_THROW(bad.validate(), ProgramError);
  }
}

TEST(Image, OriginDefaultsToIdentity) {
  const program::Image img = program::relayout(sample_program());
  EXPECT_TRUE(img.origins.empty());
  EXPECT_EQ(img.origin_of(img.entry), img.entry);
}

TEST(Lift, RejectsCrossFunctionBranch) {
  // Hand-craft an image whose branch escapes its function.
  casm::Assembler a;
  a.begin_function("f", "m");
  a.halt();
  a.end_function();
  a.begin_function("g", "m");
  a.halt();
  a.end_function();
  program::Image img = program::relayout(a.finish("f"));

  // Append a jmp-to-g inside f by rebuilding f's body manually.
  std::vector<std::uint8_t> code;
  arch::encode(arch::make2(Opcode::kJmp, Operand::none(),
                           Operand::make_imm(static_cast<std::int64_t>(
                               img.symbols[1].addr))),
               &code);
  arch::encode(arch::make0(Opcode::kHalt), &code);
  program::Image bad = img;
  bad.code = code;
  // Rebuild symbols: f = the jmp, g = the halt.
  bad.symbols[0].size = code.size() - 2;
  bad.symbols[1].addr = bad.code_base + code.size() - 2;
  bad.symbols[1].size = 2;
  bad.entry = bad.symbols[0].addr;
  EXPECT_THROW(program::lift(bad), ProgramError);
}

TEST(Program, ValidateCatchesBadEdges) {
  program::Program prog = sample_program();
  prog.functions[1].blocks[1].taken = 99;
  EXPECT_THROW(prog.validate(), ProgramError);
}

}  // namespace
}  // namespace fpmix
