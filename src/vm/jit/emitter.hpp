// Minimal x86-64 instruction emitter for the template JIT.
//
// Covers exactly the encodings the micro-op templates need: 64-bit ALU in
// register and [base+disp] memory forms, 8/32/64-bit moves, lea with a full
// SIB recipe, setcc/jcc on the mirrored VM flags, indirect call/jmp through
// the context block, and the scalar-SSE subset (movq/movd, arithmetic,
// compares, converts, and the cmpsd/andpd blend used to reproduce the
// interpreter's min/max selection semantics exactly).
//
// Labels are single-use-bind, multi-use-reference rel32 fixups; everything
// that crosses blob boundaries goes through jit::Reloc instead and is
// patched at link time.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "support/error.hpp"

namespace fpmix::vm::jit {

// Host register numbers (hardware encoding).
enum HostReg : int {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};

// Condition codes (the `cc` nibble of 0F 8x / 0F 9x).
enum Cond : int {
  CC_B = 0x2, CC_AE = 0x3, CC_E = 0x4, CC_NE = 0x5, CC_BE = 0x6, CC_A = 0x7,
  CC_S = 0x8, CC_NP = 0xB, CC_L = 0xC, CC_GE = 0xD, CC_LE = 0xE, CC_G = 0xF,
};

// 64-bit ALU selector: {reg->mem opcode, mem->reg opcode, /n for 81}.
enum class Alu : int { kAdd = 0, kOr = 1, kAnd = 4, kSub = 5, kXor = 6, kCmp = 7 };

class Emitter {
 public:
  std::vector<std::uint8_t> code;

  std::size_t size() const { return code.size(); }

  void u8(std::uint8_t v) { code.push_back(v); }
  void u32(std::uint32_t v) {
    const std::size_t at = code.size();
    code.resize(at + 4);
    std::memcpy(code.data() + at, &v, 4);
  }
  void u64(std::uint64_t v) {
    const std::size_t at = code.size();
    code.resize(at + 8);
    std::memcpy(code.data() + at, &v, 8);
  }
  void patch32(std::size_t at, std::uint32_t v) {
    std::memcpy(code.data() + at, &v, 4);
  }

  // --- labels (intra-blob rel32) ------------------------------------------

  struct Label {
    std::ptrdiff_t pos = -1;
    std::vector<std::size_t> fixups;  // offsets of pending rel32 sites
  };

  void bind(Label& l) {
    FPMIX_CHECK(l.pos < 0);
    l.pos = static_cast<std::ptrdiff_t>(code.size());
    for (const std::size_t at : l.fixups) {
      patch32(at, static_cast<std::uint32_t>(l.pos -
                                             static_cast<std::ptrdiff_t>(at) -
                                             4));
    }
    l.fixups.clear();
  }

  void rel32_to(Label& l) {
    if (l.pos >= 0) {
      u32(static_cast<std::uint32_t>(
          l.pos - static_cast<std::ptrdiff_t>(code.size()) - 4));
    } else {
      l.fixups.push_back(code.size());
      u32(0);
    }
  }

  // --- encoding primitives -------------------------------------------------

  void rex(bool w, int reg, int index, int base) {
    const std::uint8_t r = 0x40 | (w ? 8 : 0) | ((reg >> 3) << 2) |
                           ((index >> 3) << 1) | (base >> 3);
    if (r != 0x40 || w) u8(r);
  }
  void rex_required(bool w, int reg, int index, int base) {
    u8(static_cast<std::uint8_t>(0x40 | (w ? 8 : 0) | ((reg >> 3) << 2) |
                                 ((index >> 3) << 1) | (base >> 3)));
  }

  void modrm(int mod, int reg, int rm) {
    u8(static_cast<std::uint8_t>((mod << 6) | ((reg & 7) << 3) | (rm & 7)));
  }

  /// ModRM+SIB+disp for [base + disp] (no index). Handles the rsp/r12 SIB
  /// requirement and the rbp/r13 mandatory-disp rule.
  void mem_bd(int reg, int base, std::int32_t disp) {
    const bool need_sib = (base & 7) == RSP;
    const bool disp8 = disp >= -128 && disp <= 127;
    const bool need_disp = disp != 0 || (base & 7) == RBP;
    const int mod = !need_disp ? 0 : (disp8 ? 1 : 2);
    modrm(mod, reg, need_sib ? 4 : base);
    if (need_sib) u8(static_cast<std::uint8_t>((4 << 3) | (base & 7) | 0x00));
    if (need_disp) {
      if (disp8) u8(static_cast<std::uint8_t>(disp));
      else u32(static_cast<std::uint32_t>(disp));
    }
  }

  /// ModRM+SIB+disp for [base + index*2^scale + disp]; index must not be RSP.
  void mem_bisd(int reg, int base, int index, int scale, std::int32_t disp) {
    FPMIX_CHECK((index & 7) != RSP || index >= 8);  // rsp unusable as index
    const bool disp8 = disp >= -128 && disp <= 127;
    const bool need_disp = disp != 0 || (base & 7) == RBP;
    const int mod = !need_disp ? 0 : (disp8 ? 1 : 2);
    modrm(mod, reg, 4);
    u8(static_cast<std::uint8_t>((scale << 6) | ((index & 7) << 3) |
                                 (base & 7)));
    if (need_disp) {
      if (disp8) u8(static_cast<std::uint8_t>(disp));
      else u32(static_cast<std::uint32_t>(disp));
    }
  }

  // --- 64-bit moves --------------------------------------------------------

  void mov_rm(int dst, int base, std::int32_t disp) {  // mov r64, [base+disp]
    rex(true, dst, 0, base); u8(0x8B); mem_bd(dst, base, disp);
  }
  void mov_mr(int base, std::int32_t disp, int src) {  // mov [base+disp], r64
    rex(true, src, 0, base); u8(0x89); mem_bd(src, base, disp);
  }
  void mov_rr(int dst, int src) {
    rex(true, src, 0, dst); u8(0x89); modrm(3, src, dst);
  }
  void mov_ri64(int dst, std::uint64_t imm) {  // movabs
    rex(true, 0, 0, dst); u8(static_cast<std::uint8_t>(0xB8 | (dst & 7)));
    u64(imm);
  }
  void mov_ri32(int dst, std::uint32_t imm) {  // mov r32, imm32 (zero-extends)
    rex(false, 0, 0, dst); u8(static_cast<std::uint8_t>(0xB8 | (dst & 7)));
    u32(imm);
  }
  void mov_mi32s(int base, std::int32_t disp, std::int32_t imm) {
    // mov qword [base+disp], imm32 (sign-extended)
    rex(true, 0, 0, base); u8(0xC7); mem_bd(0, base, disp);
    u32(static_cast<std::uint32_t>(imm));
  }
  void mov_mi32_d(int base, std::int32_t disp, std::uint32_t imm) {
    // mov dword [base+disp], imm32
    rex(false, 0, 0, base); u8(0xC7); mem_bd(0, base, disp);
    u32(imm);
  }
  void mov_mi8(int base, std::int32_t disp, std::uint8_t imm) {
    rex(false, 0, 0, base); u8(0xC6); mem_bd(0, base, disp); u8(imm);
  }
  void mov_ri32s(int dst, std::int32_t imm) {  // mov r64, imm32 (sign-extend)
    rex(true, 0, 0, dst); u8(0xC7); modrm(3, 0, dst);
    u32(static_cast<std::uint32_t>(imm));
  }
  void mov_mr8(int base, std::int32_t disp, int src) {  // mov byte [b+d], r8
    rex(false, src, 0, base); u8(0x88); mem_bd(src, base, disp);
  }

  // --- 32-bit moves (zero-extending loads / low-lane stores) ---------------

  void mov_rm32(int dst, int base, std::int32_t disp) {
    rex(false, dst, 0, base); u8(0x8B); mem_bd(dst, base, disp);
  }
  void mov_mr32(int base, std::int32_t disp, int src) {
    rex(false, src, 0, base); u8(0x89); mem_bd(src, base, disp);
  }

  // --- guest-memory forms: [base + index] (scale 1, no disp unless given) --

  void mov_rmx(int dst, int base, int index, std::int32_t disp) {
    rex(true, dst, index, base); u8(0x8B); mem_bisd(dst, base, index, 0, disp);
  }
  void mov_mxr(int base, int index, std::int32_t disp, int src) {
    rex(true, src, index, base); u8(0x89); mem_bisd(src, base, index, 0, disp);
  }
  void mov_rmx32(int dst, int base, int index, std::int32_t disp) {
    rex(false, dst, index, base); u8(0x8B); mem_bisd(dst, base, index, 0, disp);
  }
  void mov_mxr32(int base, int index, std::int32_t disp, int src) {
    rex(false, src, index, base); u8(0x89); mem_bisd(src, base, index, 0, disp);
  }

  // --- lea -----------------------------------------------------------------

  void lea_bd(int dst, int base, std::int32_t disp) {
    rex(true, dst, 0, base); u8(0x8D); mem_bd(dst, base, disp);
  }
  void lea_bisd(int dst, int base, int index, int scale, std::int32_t disp) {
    rex(true, dst, index, base); u8(0x8D);
    mem_bisd(dst, base, index, scale, disp);
  }

  // --- 64-bit ALU ----------------------------------------------------------

  static int alu_op_mr(Alu op) { return static_cast<int>(op) * 8 + 1; }
  static int alu_op_rm(Alu op) { return static_cast<int>(op) * 8 + 3; }

  void alu_mr(Alu op, int base, std::int32_t disp, int src) {
    rex(true, src, 0, base); u8(static_cast<std::uint8_t>(alu_op_mr(op)));
    mem_bd(src, base, disp);
  }
  void alu_rm(Alu op, int dst, int base, std::int32_t disp) {
    rex(true, dst, 0, base); u8(static_cast<std::uint8_t>(alu_op_rm(op)));
    mem_bd(dst, base, disp);
  }
  void alu_rr(Alu op, int dst, int src) {
    rex(true, src, 0, dst); u8(static_cast<std::uint8_t>(alu_op_mr(op)));
    modrm(3, src, dst);
  }
  void alu_ri(Alu op, int dst, std::int32_t imm) {
    rex(true, 0, 0, dst); u8(0x81); modrm(3, static_cast<int>(op), dst);
    u32(static_cast<std::uint32_t>(imm));
  }
  void alu_ri8(Alu op, int dst, std::int8_t imm) {
    rex(true, 0, 0, dst); u8(0x83); modrm(3, static_cast<int>(op), dst);
    u8(static_cast<std::uint8_t>(imm));
  }
  void alu_mi(Alu op, int base, std::int32_t disp, std::int32_t imm) {
    rex(true, 0, 0, base); u8(0x81); mem_bd(static_cast<int>(op), base, disp);
    u32(static_cast<std::uint32_t>(imm));
  }
  void imul_rm(int dst, int base, std::int32_t disp) {
    rex(true, dst, 0, base); u8(0x0F); u8(0xAF); mem_bd(dst, base, disp);
  }
  void imul_rr(int dst, int src) {
    rex(true, dst, 0, src); u8(0x0F); u8(0xAF); modrm(3, dst, src);
  }
  void imul_rmi(int dst, int base, std::int32_t disp, std::int32_t imm) {
    // imul r64, [base+disp], imm32
    rex(true, dst, 0, base); u8(0x69); mem_bd(dst, base, disp);
    u32(static_cast<std::uint32_t>(imm));
  }
  void test_rr(int a, int b) {  // test a, b (AND flags)
    rex(true, b, 0, a); u8(0x85); modrm(3, b, a);
  }
  void test_ri(int reg, std::int32_t imm) {
    rex(true, 0, 0, reg); u8(0xF7); modrm(3, 0, reg);
    u32(static_cast<std::uint32_t>(imm));
  }

  // --- shifts --------------------------------------------------------------

  /// op: 4 = shl, 5 = shr, 7 = sar. Shift [base+disp] by cl.
  void shift_m_cl(int op, int base, std::int32_t disp) {
    rex(true, 0, 0, base); u8(0xD3); mem_bd(op, base, disp);
  }
  void shift_m_i8(int op, int base, std::int32_t disp, std::uint8_t imm) {
    rex(true, 0, 0, base); u8(0xC1); mem_bd(op, base, disp); u8(imm);
  }
  void shr_ri8(int reg, std::uint8_t imm) {
    rex(true, 0, 0, reg); u8(0xC1); modrm(3, 5, reg); u8(imm);
  }
  void shl_ri8(int reg, std::uint8_t imm) {
    rex(true, 0, 0, reg); u8(0xC1); modrm(3, 4, reg); u8(imm);
  }

  // --- inc / misc ----------------------------------------------------------

  void inc_r(int reg) { rex(true, 0, 0, reg); u8(0xFF); modrm(3, 0, reg); }
  /// inc qword [base + disp32] with a forced 4-byte displacement (so the
  /// profile-counter reloc always has a full patchable field). Returns the
  /// offset of the disp32.
  std::size_t inc_m_disp32(int base) {
    rex(true, 0, 0, base); u8(0xFF);
    modrm(2, 0, (base & 7) == RSP ? 4 : base);
    if ((base & 7) == RSP) u8(static_cast<std::uint8_t>((4 << 3) | (base & 7)));
    const std::size_t at = code.size();
    u32(0);
    return at;
  }
  void inc_mx(int base, int index, int scale, std::int32_t disp) {
    // inc qword [base + index*2^scale + disp]
    rex(true, 0, index, base); u8(0xFF); mem_bisd(0, base, index, scale, disp);
  }
  void cmp_mi8_b(int base, std::int32_t disp, std::uint8_t imm) {
    // cmp byte [base+disp], imm8
    rex(false, 0, 0, base); u8(0x80); mem_bd(7, base, disp); u8(imm);
  }
  void mov_rm8(int dst, int base, std::int32_t disp) {
    // movzx r32, byte [base+disp]
    rex(false, dst, 0, base); u8(0x0F); u8(0xB6); mem_bd(dst, base, disp);
  }
  void or_rr8(int dst, int src) {  // or dst8, src8 (low byte regs only)
    FPMIX_CHECK(dst < 4 && src < 4);
    u8(0x08); modrm(3, src, dst);
  }
  void and_rr8(int dst, int src) {
    FPMIX_CHECK(dst < 4 && src < 4);
    u8(0x20); modrm(3, src, dst);
  }
  void setcc_m(int cc, int base, std::int32_t disp) {
    rex(false, 0, 0, base); u8(0x0F);
    u8(static_cast<std::uint8_t>(0x90 | cc)); mem_bd(0, base, disp);
  }
  void setcc_r(int cc, int reg) {
    FPMIX_CHECK(reg < 4);
    u8(0x0F); u8(static_cast<std::uint8_t>(0x90 | cc)); modrm(3, 0, reg);
  }

  // --- control flow --------------------------------------------------------

  void jcc(int cc, Label& l) {
    u8(0x0F); u8(static_cast<std::uint8_t>(0x80 | cc)); rel32_to(l);
  }
  /// jcc with the rel32 left for a link-time Reloc; returns its offset.
  std::size_t jcc_reloc(int cc) {
    u8(0x0F); u8(static_cast<std::uint8_t>(0x80 | cc));
    const std::size_t at = code.size();
    u32(0);
    return at;
  }
  void jmp(Label& l) { u8(0xE9); rel32_to(l); }
  std::size_t jmp_reloc() {
    u8(0xE9);
    const std::size_t at = code.size();
    u32(0);
    return at;
  }
  void jmp_r(int reg) { rex(false, 0, 0, reg); u8(0xFF); modrm(3, 4, reg); }
  void jmp_m(int base, std::int32_t disp) {  // jmp [base+disp]
    rex(false, 4, 0, base); u8(0xFF); mem_bd(4, base, disp);
  }
  void call_m(int base, std::int32_t disp) {  // call [base+disp]
    rex(false, 2, 0, base); u8(0xFF); mem_bd(2, base, disp);
  }
  void push_r(int reg) {
    rex(false, 0, 0, reg); u8(static_cast<std::uint8_t>(0x50 | (reg & 7)));
  }
  void pop_r(int reg) {
    rex(false, 0, 0, reg); u8(static_cast<std::uint8_t>(0x58 | (reg & 7)));
  }
  void ret() { u8(0xC3); }

  // --- SSE -----------------------------------------------------------------

  /// prefix: 0 (none), 0x66, 0xF2, 0xF3. Emits prefix, REX (if needed),
  /// 0F op, modrm reg,reg.
  void sse_rr(std::uint8_t prefix, std::uint8_t op, int dst, int src,
              bool w = false) {
    if (prefix != 0) u8(prefix);
    rex(w, dst, 0, src); u8(0x0F); u8(op); modrm(3, dst, src);
  }
  void sse_rm(std::uint8_t prefix, std::uint8_t op, int xreg, int base,
              std::int32_t disp, bool w = false) {
    if (prefix != 0) u8(prefix);
    rex(w, xreg, 0, base); u8(0x0F); u8(op); mem_bd(xreg, base, disp);
  }
  void sse_rmx(std::uint8_t prefix, std::uint8_t op, int xreg, int base,
               int index, std::int32_t disp) {
    if (prefix != 0) u8(prefix);
    rex(false, xreg, index, base); u8(0x0F); u8(op);
    mem_bisd(xreg, base, index, 0, disp);
  }

  void movq_xr(int xdst, int rsrc) { sse_rr(0x66, 0x6E, xdst, rsrc, true); }
  void movq_rx(int rdst, int xsrc) { sse_rr(0x66, 0x7E, xsrc, rdst, true); }
  void movd_xr(int xdst, int rsrc) { sse_rr(0x66, 0x6E, xdst, rsrc, false); }
  void movd_rx(int rdst, int xsrc) { sse_rr(0x66, 0x7E, xsrc, rdst, false); }
  void movq_mx(int base, std::int32_t disp, int xsrc) {  // movq m64, xmm
    sse_rm(0x66, 0xD6, xsrc, base, disp);
  }
  void movss_xm(int xdst, int base, std::int32_t disp) {
    sse_rm(0xF3, 0x10, xdst, base, disp);
  }
  void movss_mx(int base, std::int32_t disp, int xsrc) {
    sse_rm(0xF3, 0x11, xsrc, base, disp);
  }
  void movss_xmx(int xdst, int base, int index, std::int32_t disp) {
    sse_rmx(0xF3, 0x10, xdst, base, index, disp);
  }
  void movss_rr(int xdst, int xsrc) {  // low 32 bits; upper 96 preserved
    sse_rr(0xF3, 0x10, xdst, xsrc);
  }
  void movups_xm(int xdst, int base, std::int32_t disp) {  // 16-byte load
    sse_rm(0, 0x10, xdst, base, disp);
  }
  void movups_mx(int base, std::int32_t disp, int xsrc) {  // 16-byte store
    sse_rm(0, 0x11, xsrc, base, disp);
  }
  void movups_xmx(int xdst, int base, int index, std::int32_t disp) {
    sse_rmx(0, 0x10, xdst, base, index, disp);
  }
  void movaps_rr(int dst, int src) { sse_rr(0, 0x28, dst, src); }
  void cmpltsd(int dst, int src) {  // dst = dst < src ? ~0 : 0 (low lane)
    sse_rr(0xF2, 0xC2, dst, src); u8(1);
  }
  void cmpltss(int dst, int src) {
    sse_rr(0xF3, 0xC2, dst, src); u8(1);
  }
  void andpd(int dst, int src) { sse_rr(0x66, 0x54, dst, src); }
  void andnpd(int dst, int src) { sse_rr(0x66, 0x55, dst, src); }
  void orpd(int dst, int src) { sse_rr(0x66, 0x56, dst, src); }
  void xorpd(int dst, int src) { sse_rr(0x66, 0x57, dst, src); }
  void ucomisd(int a, int b) { sse_rr(0x66, 0x2E, a, b); }
  void ucomiss(int a, int b) { sse_rr(0, 0x2E, a, b); }
  void cvtsi2sd(int xdst, int rsrc) { sse_rr(0xF2, 0x2A, xdst, rsrc, true); }
  void cvtsi2ss(int xdst, int rsrc) { sse_rr(0xF3, 0x2A, xdst, rsrc, true); }
  void cvtsd2ss(int xdst, int xsrc) { sse_rr(0xF2, 0x5A, xdst, xsrc); }
  void cvtss2sd(int xdst, int xsrc) { sse_rr(0xF3, 0x5A, xdst, xsrc); }
  void cvttsd2si(int rdst, int xsrc) { sse_rr(0xF2, 0x2C, rdst, xsrc, true); }
  void cvttss2si(int rdst, int xsrc) { sse_rr(0xF3, 0x2C, rdst, xsrc, true); }
  void movq_xm(int xdst, int base, std::int32_t disp) {  // movq xmm, m64
    sse_rm(0xF3, 0x7E, xdst, base, disp);                // (zeroes upper lane)
  }
  void movq_xmx(int xdst, int base, int index, std::int32_t disp) {
    sse_rmx(0xF3, 0x7E, xdst, base, index, disp);
  }
  void movq_mxx(int base, int index, std::int32_t disp, int xsrc) {
    sse_rmx(0x66, 0xD6, xsrc, base, index, disp);
  }
  void movq_xx(int xdst, int xsrc) {  // copy low qword, zero upper lane
    sse_rr(0xF3, 0x7E, xdst, xsrc);
  }
  /// roundsd xmm, xmm, imm8 — SSE4.1; mode 0x9 = floor, 0xA = ceil
  /// (bit 3 suppresses precision exceptions).
  void roundsd(int xdst, int xsrc, std::uint8_t mode) {
    u8(0x66); rex(false, xdst, 0, xsrc);
    u8(0x0F); u8(0x3A); u8(0x0B); modrm(3, xdst, xsrc); u8(mode);
  }
  /// roundss xmm, xmm, imm8 — SSE4.1 single-precision twin of roundsd;
  /// reads/writes the low dword only, upper bits of dst preserved.
  void roundss(int xdst, int xsrc, std::uint8_t mode) {
    u8(0x66); rex(false, xdst, 0, xsrc);
    u8(0x0F); u8(0x3A); u8(0x0A); modrm(3, xdst, xsrc); u8(mode);
  }

  // --- integer divide ------------------------------------------------------

  void cqo() { u8(0x48); u8(0x99); }  // sign-extend rax into rdx:rax
  void idiv_r(int reg) {              // signed divide rdx:rax by r64
    rex(true, 0, 0, reg); u8(0xF7); modrm(3, 7, reg);
  }

  /// op: 4 = shl, 5 = shr, 7 = sar. Shift r64 by cl.
  void shift_r_cl(int op, int reg) {
    rex(true, 0, 0, reg); u8(0xD3); modrm(3, op, reg);
  }
  void shift_r_i8(int op, int reg, std::uint8_t imm) {
    rex(true, 0, 0, reg); u8(0xC1); modrm(3, op, reg); u8(imm);
  }
  void imul_rri(int dst, int src, std::int32_t imm) {  // dst = src * imm32
    rex(true, dst, 0, src); u8(0x69); modrm(3, dst, src);
    u32(static_cast<std::uint32_t>(imm));
  }
  void btr_ri(int reg, std::uint8_t bit) {  // clear bit `bit` of r64
    rex(true, 0, 0, reg); u8(0x0F); u8(0xBA); modrm(3, 6, reg); u8(bit);
  }
};

}  // namespace fpmix::vm::jit
