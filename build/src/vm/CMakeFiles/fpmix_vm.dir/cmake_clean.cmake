file(REMOVE_RECURSE
  "CMakeFiles/fpmix_vm.dir/machine.cpp.o"
  "CMakeFiles/fpmix_vm.dir/machine.cpp.o.d"
  "CMakeFiles/fpmix_vm.dir/minimpi.cpp.o"
  "CMakeFiles/fpmix_vm.dir/minimpi.cpp.o.d"
  "libfpmix_vm.a"
  "libfpmix_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpmix_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
