# Empty compiler generated dependencies file for superlu_threshold.
# This may be replaced when dependencies are built.
