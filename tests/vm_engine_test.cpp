// Differential testing of the VM execution engines.
//
// The micro-op engine (Engine::kMicroOp) and the JIT engine (Engine::kJit,
// on hosts that support it) must be observationally indistinguishable from
// the reference switch interpreter (Engine::kSwitch): bit-identical
// outputs, identical trap status and message, identical retired counts and
// identical per-address profiles -- on clean runs, on every trap class (tag
// escape, division, out-of-bounds, budget), and on instrumented images. A
// shared ExecutableImage must also behave identically from many Machines
// across threads.
//
// The JIT additionally gets engine-specific coverage: chunked supervision
// (deadline + fault injection re-enter compiled code mid-run), and the
// incremental path (a warm-cache re-JIT of a delta trial must behave
// bit-identically to a cold compile of the same image).
#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <functional>
#include <thread>

#include "arch/encode.hpp"
#include "arch/tag.hpp"
#include "asm/assembler.hpp"
#include "config/config.hpp"
#include "instrument/incremental.hpp"
#include "instrument/patch.hpp"
#include "lang/builder.hpp"
#include "lang/compile.hpp"
#include "program/layout.hpp"
#include "program/program.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "vm/jit/jit.hpp"
#include "vm/machine.hpp"

namespace fpmix {
namespace {

using arch::Opcode;
using arch::Operand;
namespace in = arch::intrinsics;

struct EngineOut {
  vm::RunResult result;
  std::vector<double> f64;
  std::vector<std::int64_t> i64;
  std::uint64_t retired = 0;
  std::map<std::uint64_t, std::uint64_t> profile;
};

EngineOut run_engine(const std::shared_ptr<const vm::ExecutableImage>& exec,
                     vm::Engine engine, vm::Machine::Options opts) {
  opts.engine = engine;
  vm::Machine m(exec, opts);
  EngineOut o;
  o.result = m.run();
  o.f64 = m.output_f64();
  o.i64 = m.output_i64();
  o.retired = m.instructions_retired();
  o.profile = m.profile_by_address();
  return o;
}

/// Demands `got` is observationally bit-identical to the reference run.
void expect_same(const EngineOut& got, const EngineOut& ref,
                 const std::string& what) {
  EXPECT_EQ(got.result.status, ref.result.status) << what;
  EXPECT_EQ(got.result.trap_message, ref.result.trap_message) << what;
  EXPECT_EQ(got.result.sentinel_escape, ref.result.sentinel_escape) << what;
  EXPECT_EQ(got.retired, ref.retired) << what;

  ASSERT_EQ(got.f64.size(), ref.f64.size()) << what;
  for (std::size_t i = 0; i < ref.f64.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.f64[i]),
              std::bit_cast<std::uint64_t>(ref.f64[i]))
        << what << " f64 output " << i;
  }
  EXPECT_EQ(got.i64, ref.i64) << what;
  EXPECT_EQ(got.profile, ref.profile) << what;
}

/// Runs `img` on every engine this host supports (sharing one predecoded
/// image) and demands bit-identical observable behaviour.
void expect_engines_identical(const program::Image& img,
                              vm::Machine::Options opts = {},
                              const char* what = "") {
  const auto exec = vm::ExecutableImage::build(img);
  const EngineOut ref = run_engine(exec, vm::Engine::kSwitch, opts);
  expect_same(run_engine(exec, vm::Engine::kMicroOp, opts), ref,
              std::string(what) + " [microop]");
  if (vm::jit::jit_supported()) {
    expect_same(run_engine(exec, vm::Engine::kJit, opts), ref,
                std::string(what) + " [jit]");
  }
}

// ---------------------------------------------------------------------------
// Fuzzed mini-language programs, original and instrumented.

/// Random type-correct program: scalar pool + one array, mutated by loops,
/// conditionals, arithmetic chains and math intrinsics (the same shape the
/// instrumentation fuzz test uses).
lang::ProgramModel random_model(std::uint64_t seed) {
  SplitMix64 rng(seed);
  lang::Builder b;

  constexpr int kScalars = 5;
  std::vector<lang::Var> vars;
  for (int i = 0; i < kScalars; ++i) {
    vars.push_back(b.var_f64("v" + std::to_string(i)));
  }
  lang::Arr arr = b.array_f64("arr", 16);
  lang::Var idx = b.var_i64("idx");

  b.begin_func("main", "fuzz");
  for (int i = 0; i < kScalars; ++i) {
    b.set(vars[i], b.cf(rng.next_double(0.5, 3.0)));
  }
  b.for_(idx, b.ci(0), b.ci(16), [&] {
    b.store(arr, lang::Expr(idx),
            to_f64(idx) * b.cf(rng.next_double(0.01, 0.2)) + b.cf(1.0));
  });

  const auto rand_var = [&]() -> lang::Expr {
    return lang::Expr(vars[rng.next_below(kScalars)]);
  };
  const std::function<lang::Expr(int)> rand_expr = [&](int depth) {
    if (depth <= 0 || rng.next_below(3) == 0) {
      switch (rng.next_below(3)) {
        case 0: return rand_var();
        case 1: return b.cf(rng.next_double(0.25, 2.0));
        default: return arr[b.ci(static_cast<std::int64_t>(
            rng.next_below(16)))];
      }
    }
    const lang::Expr a = rand_expr(depth - 1);
    const lang::Expr c = rand_expr(depth - 1);
    switch (rng.next_below(7)) {
      case 0: return a + c;
      case 1: return a - c;
      case 2: return a * c;
      case 3: return a / (fabs_(c) + b.cf(1.0));
      case 4: return sqrt_(fabs_(a) + b.cf(0.5));
      case 5: return min_(a, c);
      default: return sin_(a);
    }
  };

  const int num_stmts = 6 + static_cast<int>(rng.next_below(8));
  for (int s = 0; s < num_stmts; ++s) {
    switch (rng.next_below(4)) {
      case 0:
        b.set(vars[rng.next_below(kScalars)], rand_expr(3));
        break;
      case 1:
        b.store(arr,
                b.ci(static_cast<std::int64_t>(rng.next_below(16))),
                rand_expr(2));
        break;
      case 2: {
        const auto body_var = rng.next_below(kScalars);
        lang::Var loop_i = b.var_i64("i" + std::to_string(s));
        const auto iters =
            static_cast<std::int64_t>(2 + rng.next_below(6));
        b.for_(loop_i, b.ci(0), b.ci(iters), [&] {
          b.set(vars[body_var],
                lang::Expr(vars[body_var]) * b.cf(0.75) + rand_expr(2));
        });
        break;
      }
      default: {
        const auto tgt = rng.next_below(kScalars);
        b.if_else(rand_expr(1) < rand_expr(1),
                  [&] { b.set(vars[tgt], rand_expr(2)); },
                  [&] { b.set(vars[tgt], rand_expr(2) + b.cf(0.125)); });
        break;
      }
    }
  }
  for (int i = 0; i < kScalars; ++i) {
    b.output(lang::Expr(vars[i]) * b.cf(1.0));
  }
  b.end_func();
  return b.take_model();
}

class EngineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EngineFuzz, EnginesBitIdenticalOnFuzzedPrograms) {
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t seed =
        0xE41E * static_cast<std::uint64_t>(GetParam() + 1) +
        static_cast<std::uint64_t>(trial);
    const lang::ProgramModel model = random_model(seed);
    const program::Image orig =
        program::relayout(lang::compile(model, lang::Mode::kDouble));
    expect_engines_identical(orig, {}, "original");

    // All-single instrumented build: exercises the cvt/ss handlers, the
    // snippet call/ret paths and (on analysis misses) the tag trap.
    const auto ix = config::StructureIndex::build(program::lift(orig));
    config::PrecisionConfig cfg;
    for (std::size_t m = 0; m < ix.modules().size(); ++m) {
      cfg.set_module(m, config::Precision::kSingle);
    }
    const program::Image inst = instrument::instrument_image(orig, ix, cfg);
    expect_engines_identical(inst, {}, "instrumented");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz, ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// Trap classes: the message, status and retired count must match exactly.

TEST(EngineDiff, TaggedEscapeTrapIdentical) {
  casm::Assembler a;
  a.begin_function("main", "main");
  const std::uint64_t boxed = arch::make_tagged(1.0f);
  a.emit(Opcode::kMov, Operand::gpr(1),
         Operand::make_imm(static_cast<std::int64_t>(boxed)));
  a.emit(Opcode::kMovqXR, Operand::xmm(0), Operand::gpr(1));
  a.emit(Opcode::kAddsd, Operand::xmm(0), Operand::xmm(0));
  a.halt();
  a.end_function();
  const program::Image img = program::relayout(a.finish("main"));
  expect_engines_identical(img, {}, "tagged escape");

  const auto exec = vm::ExecutableImage::build(img);
  const EngineOut o = run_engine(exec, vm::Engine::kMicroOp, {});
  EXPECT_EQ(o.result.status, vm::RunResult::Status::kTrapped);
  EXPECT_NE(o.result.trap_message.find("replaced-double sentinel"),
            std::string::npos);
}

TEST(EngineDiff, TagTrapDisabledIdentical) {
  casm::Assembler a;
  a.begin_function("main", "main");
  const std::uint64_t boxed = arch::make_tagged(1.0f);
  a.emit(Opcode::kMov, Operand::gpr(1),
         Operand::make_imm(static_cast<std::int64_t>(boxed)));
  a.emit(Opcode::kMovqXR, Operand::xmm(0), Operand::gpr(1));
  a.emit(Opcode::kAddsd, Operand::xmm(0), Operand::xmm(0));
  a.halt();
  a.end_function();
  vm::Machine::Options opts;
  opts.tag_trap = false;
  expect_engines_identical(program::relayout(a.finish("main")), opts,
                           "tag trap disabled");
}

TEST(EngineDiff, DivisionTrapsIdentical) {
  for (const Opcode op : {Opcode::kIdiv, Opcode::kIrem}) {
    casm::Assembler a;
    a.begin_function("main", "main");
    a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(7));
    a.emit(Opcode::kMov, Operand::gpr(2), Operand::make_imm(0));
    a.emit(op, Operand::gpr(1), Operand::gpr(2));
    a.halt();
    a.end_function();
    expect_engines_identical(program::relayout(a.finish("main")), {},
                             arch::opcode_name(op));
  }
}

TEST(EngineDiff, OutOfBoundsTrapsIdentical) {
  // Read and write, both far out of range.
  for (const bool is_store : {false, true}) {
    casm::Assembler a;
    a.begin_function("main", "main");
    a.emit(Opcode::kMov, Operand::gpr(1),
           Operand::make_imm(1ll << 40));
    if (is_store) {
      a.emit(Opcode::kStore, Operand::mem_bd(1, 0), Operand::gpr(2));
    } else {
      a.emit(Opcode::kLoad, Operand::gpr(2), Operand::mem_bd(1, 0));
    }
    a.halt();
    a.end_function();
    expect_engines_identical(program::relayout(a.finish("main")), {},
                             is_store ? "oob store" : "oob load");
  }
}

TEST(EngineDiff, BudgetExhaustionIdentical) {
  casm::Assembler a;
  a.begin_function("main", "main");
  auto l = a.new_label();
  a.bind(l);
  a.emit(Opcode::kNop);
  a.jmp(l);
  a.end_function();
  vm::Machine::Options opts;
  opts.max_instructions = 10'000;
  expect_engines_identical(program::relayout(a.finish("main")), opts,
                           "budget");
}

TEST(EngineDiff, RangeTrapIdentical) {
  casm::Assembler a;
  a.begin_function("main", "main");
  const auto huge = a.data_f64(1e300);
  a.emit(Opcode::kMovsdXM, Operand::xmm(0),
         Operand::mem_abs(static_cast<std::int32_t>(huge)));
  a.emit(Opcode::kCvttsd2si, Operand::gpr(1), Operand::xmm(0));
  a.halt();
  a.end_function();
  expect_engines_identical(program::relayout(a.finish("main")), {},
                           "cvttsd2si range");
}

// ---------------------------------------------------------------------------
// Shared predecoded images.

TEST(SharedExecImage, ManyMachinesAcrossThreads) {
  const lang::ProgramModel model = random_model(0x5EED);
  const program::Image img =
      program::relayout(lang::compile(model, lang::Mode::kDouble));
  const auto exec = vm::ExecutableImage::build(img);

  vm::Machine reference(exec);
  EXPECT_EQ(reference.executable().get(), exec.get());
  const vm::RunResult ref_run = reference.run();
  ASSERT_TRUE(ref_run.ok()) << ref_run.trap_message;
  const std::vector<double> want = reference.output_f64();

  constexpr int kThreads = 4;
  std::vector<std::vector<double>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&exec, &got, i] {
      vm::Machine m(exec, {});
      if (m.run().ok()) got[static_cast<std::size_t>(i)] = m.output_f64();
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)].size(), want.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[static_cast<std::size_t>(
                    i)][j]),
                std::bit_cast<std::uint64_t>(want[j]));
    }
  }
}

// ---------------------------------------------------------------------------
// JIT engine specifics. Every test degrades to a skip on hosts where the JIT
// is unavailable (non-x86-64, sanitizer builds, hardened kernels); the
// downgrade path itself is exercised by the engine tests above, which run
// kJit through the public Options and rely on the automatic fallback.

#define FPMIX_REQUIRE_JIT()                                            \
  if (!vm::jit::jit_supported()) {                                     \
    GTEST_SKIP() << "jit unavailable: " << vm::jit::jit_unsupported_reason(); \
  }

/// A program that never halts: spins on FP work so deadline supervision has
/// something to interrupt mid-chunk.
program::Image endless_fp_loop() {
  casm::Assembler a;
  a.begin_function("main", "main");
  a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(0x3FF0000000000000));
  a.emit(Opcode::kMovqXR, Operand::xmm(0), Operand::gpr(1));
  auto l = a.new_label();
  a.bind(l);
  a.emit(Opcode::kAddsd, Operand::xmm(0), Operand::xmm(0));
  a.emit(Opcode::kMulsd, Operand::xmm(0), Operand::xmm(0));
  a.jmp(l);
  a.end_function();
  return program::relayout(a.finish("main"));
}

TEST(JitEngine, DeadlineInterruptsCompiledCodeMidRun) {
  FPMIX_REQUIRE_JIT();
  vm::Machine::Options opts;
  opts.engine = vm::Engine::kJit;
  opts.tag_trap = false;  // the loop overflows to inf; only time stops it
  opts.deadline_ns = 50ull * 1000 * 1000;
  opts.deadline_check_interval = 1 << 14;  // many chunk re-entries
  vm::Machine m(endless_fp_loop(), opts);
  const vm::RunResult r = m.run();
  EXPECT_EQ(r.status, vm::RunResult::Status::kDeadline);
  // The machine really executed compiled chunks before the clock fired.
  EXPECT_GT(r.instructions_retired, 1u << 14);
}

TEST(JitEngine, ChunkedSupervisionIsBitIdenticalAcrossEngines) {
  // A huge deadline forces the supervised chunking path on every engine
  // without ever firing: results must stay bit-identical to the unchunked
  // runs, proving the JIT resumes exactly from pc_/retired_ mid-program.
  for (int seed = 0; seed < 3; ++seed) {
    const lang::ProgramModel model =
        random_model(0xC41F + static_cast<std::uint64_t>(seed));
    vm::Machine::Options opts;
    opts.deadline_ns = 3'600ull * 1000 * 1000 * 1000;
    opts.deadline_check_interval = 64;  // tiny chunks: many JIT re-entries
    expect_engines_identical(
        program::relayout(lang::compile(model, lang::Mode::kDouble)), opts,
        "chunked");
  }
}

TEST(JitEngine, InjectedFaultsFireIdenticallyInCompiledCode) {
  // Sentinel and bit-flip faults mutate machine state between chunks; the
  // compiled code reads the same arrays, so the fault must be consumed at
  // the same instruction with the same diagnostic on all engines.
  for (const auto kind : {fault::VmFault::kSentinel, fault::VmFault::kBitFlip,
                          fault::VmFault::kAbort}) {
    const lang::ProgramModel model = random_model(0xFA17);
    const program::Image img =
        program::relayout(lang::compile(model, lang::Mode::kDouble));
    fault::VmFaultSpec spec;
    spec.kind = kind;
    spec.at_retired = 300;
    spec.seed = 7;
    vm::Machine::Options opts;
    opts.fault = &spec;
    expect_engines_identical(img, opts, "vm fault");
  }
}

TEST(JitEngine, DeltaReJitIsBitIdenticalToColdCompile) {
  FPMIX_REQUIRE_JIT();
  // Two configs that differ in one module: the incremental patcher re-uses
  // every unchanged function's CodeSegment, so the second predecode's JIT
  // pass links mostly warm blobs (compiled while running the first trial).
  // The warm-linked image must behave bit-identically to a from-scratch
  // ExecutableImage::build + cold compile of the same bytes.
  const lang::ProgramModel model = random_model(0xDE17A);
  const program::Image orig =
      program::relayout(lang::compile(model, lang::Mode::kDouble));
  const auto ix = config::StructureIndex::build(program::lift(orig));
  instrument::IncrementalPatcher patcher(orig, ix);

  config::PrecisionConfig base;  // all-double baseline
  const auto exec_a = patcher.predecode(patcher.patch(base));
  vm::Machine::Options opts;
  opts.engine = vm::Engine::kJit;
  // Warm the blob caches of every shared segment.
  const EngineOut warm_a = run_engine(exec_a, vm::Engine::kJit, opts);

  config::PrecisionConfig delta;
  delta.set_module(0, config::Precision::kSingle);
  const auto exec_b = patcher.predecode(patcher.patch(delta));
  const EngineOut warm_b = run_engine(exec_b, vm::Engine::kJit, opts);

  // Cold reference: identical image bytes, fresh predecode, fresh JIT.
  const auto cold_exec =
      vm::ExecutableImage::build(instrument::instrument_image(orig, ix, delta));
  expect_same(warm_b, run_engine(cold_exec, vm::Engine::kJit, opts),
              "warm re-JIT vs cold compile");
  // And both must agree with the interpreter oracle.
  expect_same(warm_b, run_engine(cold_exec, vm::Engine::kSwitch, opts),
              "warm re-JIT vs switch oracle");
  (void)warm_a;
}

TEST(JitEngine, EnvScaledFuzzAcrossAllEngines) {
  // Deeper soak for CI: FPMIX_ENGINE_FUZZ_TRIALS scales the trial count
  // (default stays light for local runs). Every trial runs original and
  // all-single instrumented builds on all available engines.
  int trials = 6;
  if (const char* env = std::getenv("FPMIX_ENGINE_FUZZ_TRIALS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) trials = static_cast<int>(n);
  }
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = 0x17F0 + static_cast<std::uint64_t>(t) * 131;
    const lang::ProgramModel model = random_model(seed);
    const program::Image orig =
        program::relayout(lang::compile(model, lang::Mode::kDouble));
    expect_engines_identical(orig, {}, "fuzz original");

    const auto ix = config::StructureIndex::build(program::lift(orig));
    config::PrecisionConfig cfg;
    for (std::size_t m = 0; m < ix.modules().size(); ++m) {
      cfg.set_module(m, config::Precision::kSingle);
    }
    expect_engines_identical(instrument::instrument_image(orig, ix, cfg), {},
                             "fuzz instrumented");
  }
}

}  // namespace
}  // namespace fpmix
