#include "lang/compile.hpp"

#include <cstring>
#include <map>

#include "asm/assembler.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::lang {

using arch::Opcode;
using arch::Operand;
namespace in = arch::intrinsics;

namespace {

class Compiler {
 public:
  Compiler(const ProgramModel& model, Mode mode)
      : model_(model), mode_(mode) {}

  program::Program run() {
    allocate_storage();
    for (const FuncDecl& fn : model_.funcs) {
      compile_function(fn);
    }
    return asm_.finish(model_.entry);
  }

 private:
  // ---- Storage ------------------------------------------------------------

  std::size_t real_size() const { return mode_ == Mode::kDouble ? 8 : 4; }

  void allocate_storage() {
    addr_.resize(model_.vars.size());
    for (std::size_t i = 0; i < model_.vars.size(); ++i) {
      const VarDecl& v = model_.vars[i];
      const std::size_t elem =
          (v.type == Type::kF64) ? real_size() : 8;
      const std::size_t bytes = elem * (v.is_array ? v.size : 1);
      if (v.has_init) {
        std::vector<std::uint8_t> bytes_out(bytes);
        if (v.type == Type::kF64) {
          FPMIX_CHECK(v.init_f.size() == v.size);
          for (std::size_t k = 0; k < v.size; ++k) {
            if (mode_ == Mode::kDouble) {
              std::memcpy(bytes_out.data() + 8 * k, &v.init_f[k], 8);
            } else {
              const float f = static_cast<float>(v.init_f[k]);
              std::memcpy(bytes_out.data() + 4 * k, &f, 4);
            }
          }
        } else {
          FPMIX_CHECK(v.init_i.size() == v.size);
          std::memcpy(bytes_out.data(), v.init_i.data(), bytes);
        }
        addr_[i] = asm_.data_bytes(bytes_out.data(), bytes_out.size(), 16);
      } else {
        addr_[i] = asm_.reserve_bss(bytes, 16);
      }
    }
  }

  // ---- Register pools -----------------------------------------------------

  std::uint8_t alloc_f() {
    for (std::uint8_t r = 2; r <= 13; ++r) {
      if (!fbusy_[r]) {
        fbusy_[r] = true;
        return r;
      }
    }
    throw ProgramError("expression too deep: out of xmm registers");
  }
  void free_f(std::uint8_t r) { fbusy_[r] = false; }

  std::uint8_t alloc_i() {
    for (std::uint8_t r = 2; r <= 13; ++r) {
      if (!ibusy_[r]) {
        ibusy_[r] = true;
        return r;
      }
    }
    throw ProgramError("expression too deep: out of integer registers");
  }
  void free_i(std::uint8_t r) { ibusy_[r] = false; }

  // ---- Real-op helpers (mode-dependent) ------------------------------------

  Opcode op_mov_load() const {
    return mode_ == Mode::kDouble ? Opcode::kMovsdXM : Opcode::kMovssXM;
  }
  Opcode op_mov_store() const {
    return mode_ == Mode::kDouble ? Opcode::kMovsdMX : Opcode::kMovssMX;
  }
  Opcode op_bin(BinOp b) const {
    const bool d = mode_ == Mode::kDouble;
    switch (b) {
      case BinOp::kAddF: return d ? Opcode::kAddsd : Opcode::kAddss;
      case BinOp::kSubF: return d ? Opcode::kSubsd : Opcode::kSubss;
      case BinOp::kMulF: return d ? Opcode::kMulsd : Opcode::kMulss;
      case BinOp::kDivF: return d ? Opcode::kDivsd : Opcode::kDivss;
      case BinOp::kMinF: return d ? Opcode::kMinsd : Opcode::kMinss;
      case BinOp::kMaxF: return d ? Opcode::kMaxsd : Opcode::kMaxss;
      case BinOp::kAddI: return Opcode::kAdd;
      case BinOp::kSubI: return Opcode::kSub;
      case BinOp::kMulI: return Opcode::kImul;
      case BinOp::kDivI: return Opcode::kIdiv;
      case BinOp::kRemI: return Opcode::kIrem;
      case BinOp::kAndI: return Opcode::kAnd;
      case BinOp::kOrI: return Opcode::kOr;
      case BinOp::kXorI: return Opcode::kXor;
      case BinOp::kShlI: return Opcode::kShl;
      case BinOp::kShrI: return Opcode::kShr;
    }
    throw ProgramError("unknown binary op");
  }

  /// Pool-register copy, both modes (64-bit lane copy is harmless for f32
  /// payloads: ss ops only read the low 32 bits).
  void mov_xx(std::uint8_t dst, std::uint8_t src) {
    asm_.emit(Opcode::kMovsdXX, Operand::xmm(dst), Operand::xmm(src));
  }

  Operand const_slot(double v) {
    if (mode_ == Mode::kDouble) {
      std::uint64_t bits;
      std::memcpy(&bits, &v, 8);
      auto it = fconst_.find(bits);
      if (it == fconst_.end()) {
        it = fconst_.emplace(bits, asm_.data_f64(v)).first;
      }
      return Operand::mem_abs(static_cast<std::int32_t>(it->second));
    }
    const float f = static_cast<float>(v);
    std::uint32_t bits;
    std::memcpy(&bits, &f, 4);
    auto it = fconst_.find(bits);
    if (it == fconst_.end()) {
      it = fconst_.emplace(bits, asm_.data_bytes(&f, 4, 4)).first;
    }
    return Operand::mem_abs(static_cast<std::int32_t>(it->second));
  }

  Operand scalar_slot(int var_id) const {
    return Operand::mem_abs(static_cast<std::int32_t>(addr_[var_id]));
  }

  Operand elem_slot(int var_id, std::uint8_t index_reg) const {
    const VarDecl& v = model_.vars[var_id];
    const std::uint8_t scale =
        (v.type == Type::kF64) ? static_cast<std::uint8_t>(real_size()) : 8;
    return Operand::mem_bisd(arch::kNoReg, index_reg, scale,
                             static_cast<std::int32_t>(addr_[var_id]));
  }

  // ---- Expressions ----------------------------------------------------------

  std::uint8_t gen_f(const ExprPtr& e) {
    FPMIX_CHECK(e != nullptr && e->type == Type::kF64);
    switch (e->kind) {
      case ExprNode::Kind::kConstF: {
        const std::uint8_t r = alloc_f();
        asm_.emit(op_mov_load(), Operand::xmm(r), const_slot(e->cf));
        return r;
      }
      case ExprNode::Kind::kVar: {
        const std::uint8_t r = alloc_f();
        asm_.emit(op_mov_load(), Operand::xmm(r), scalar_slot(e->var_id));
        return r;
      }
      case ExprNode::Kind::kLoad: {
        const std::uint8_t idx = gen_i(e->a);
        const std::uint8_t r = alloc_f();
        asm_.emit(op_mov_load(), Operand::xmm(r), elem_slot(e->var_id, idx));
        free_i(idx);
        return r;
      }
      case ExprNode::Kind::kBin: {
        const std::uint8_t x = gen_f(e->a);
        const std::uint8_t y = gen_f(e->b);
        asm_.emit(op_bin(e->bop), Operand::xmm(x), Operand::xmm(y));
        free_f(y);
        return x;
      }
      case ExprNode::Kind::kSqrt: {
        const std::uint8_t x = gen_f(e->a);
        asm_.emit(mode_ == Mode::kDouble ? Opcode::kSqrtsd : Opcode::kSqrtss,
                  Operand::xmm(x), Operand::xmm(x));
        return x;
      }
      case ExprNode::Kind::kIntrin:
        return gen_intrin(e);
      case ExprNode::Kind::kCastIF: {
        const std::uint8_t g = gen_i(e->a);
        const std::uint8_t r = alloc_f();
        asm_.emit(
            mode_ == Mode::kDouble ? Opcode::kCvtsi2sd : Opcode::kCvtsi2ss,
            Operand::xmm(r), Operand::gpr(g));
        free_i(g);
        return r;
      }
      default:
        throw ProgramError("malformed real expression");
    }
  }

  std::uint8_t gen_intrin(const ExprPtr& e) {
    const std::uint8_t x = gen_f(e->a);
    std::uint8_t y = 0;
    const bool two = e->b != nullptr;
    if (two) y = gen_f(e->b);
    // Arguments go to xmm0/xmm1 per the intrinsic ABI.
    if (two) mov_xx(1, y);
    mov_xx(0, x);
    free_f(x);
    if (two) free_f(y);

    in::Id id = e->intrin;
    bool wrap_f32 = false;
    if (mode_ == Mode::kSingle) {
      if (in::intrin_has_f32_twin(id)) {
        id = in::intrin_info(id).f32_twin;
      } else {
        // Intrinsics with a fixed f64 ABI (e.g. mpi_allreduce): widen the
        // argument, call, and narrow the result. This is exactly what a
        // manual single-precision port of an MPI code would do at the
        // library boundary.
        wrap_f32 = true;
      }
    }
    if (wrap_f32) {
      asm_.emit(Opcode::kCvtss2sd, Operand::xmm(0), Operand::xmm(0));
      if (two) {
        asm_.emit(Opcode::kCvtss2sd, Operand::xmm(1), Operand::xmm(1));
      }
    }
    asm_.intrin(id);
    if (wrap_f32) {
      asm_.emit(Opcode::kCvtsd2ss, Operand::xmm(0), Operand::xmm(0));
    }
    const std::uint8_t r = alloc_f();
    mov_xx(r, 0);
    return r;
  }

  std::uint8_t gen_i(const ExprPtr& e) {
    FPMIX_CHECK(e != nullptr && e->type == Type::kI64);
    switch (e->kind) {
      case ExprNode::Kind::kConstI: {
        const std::uint8_t r = alloc_i();
        asm_.emit(Opcode::kMov, Operand::gpr(r), Operand::make_imm(e->ci));
        return r;
      }
      case ExprNode::Kind::kVar: {
        const std::uint8_t r = alloc_i();
        asm_.emit(Opcode::kLoad, Operand::gpr(r), scalar_slot(e->var_id));
        return r;
      }
      case ExprNode::Kind::kLoad: {
        const std::uint8_t idx = gen_i(e->a);
        const std::uint8_t r = alloc_i();
        asm_.emit(Opcode::kLoad, Operand::gpr(r),
                  elem_slot(e->var_id, idx));
        free_i(idx);
        return r;
      }
      case ExprNode::Kind::kBin: {
        const std::uint8_t x = gen_i(e->a);
        const std::uint8_t y = gen_i(e->b);
        asm_.emit(op_bin(e->bop), Operand::gpr(x), Operand::gpr(y));
        free_i(y);
        return x;
      }
      case ExprNode::Kind::kCastFI: {
        const std::uint8_t x = gen_f(e->a);
        const std::uint8_t r = alloc_i();
        asm_.emit(
            mode_ == Mode::kDouble ? Opcode::kCvttsd2si : Opcode::kCvttss2si,
            Operand::gpr(r), Operand::xmm(x));
        free_f(x);
        return r;
      }
      case ExprNode::Kind::kMpiRank:
      case ExprNode::Kind::kMpiSize: {
        asm_.intrin(e->kind == ExprNode::Kind::kMpiRank ? in::Id::kMpiRank
                                                        : in::Id::kMpiSize);
        const std::uint8_t r = alloc_i();
        asm_.emit(Opcode::kMov, Operand::gpr(r), Operand::gpr(0));
        return r;
      }
      default:
        throw ProgramError("malformed integer expression");
    }
  }

  // ---- Conditions ------------------------------------------------------------

  /// Emits compare + branch-if-FALSE to `target`.
  void branch_unless(const CondNode& c, casm::Label target) {
    const Type t = c.a->type;
    if (t == Type::kF64) {
      const std::uint8_t x = gen_f(c.a);
      const std::uint8_t y = gen_f(c.b);
      asm_.emit(mode_ == Mode::kDouble ? Opcode::kUcomisd : Opcode::kUcomiss,
                Operand::xmm(x), Operand::xmm(y));
      free_f(x);
      free_f(y);
      switch (c.op) {  // FP compares use the unsigned-style branches
        case CmpOp::kEq: asm_.jne(target); break;
        case CmpOp::kNe: asm_.je(target); break;
        case CmpOp::kLt: asm_.jae(target); break;
        case CmpOp::kLe: asm_.ja(target); break;
        case CmpOp::kGt: asm_.jbe(target); break;
        case CmpOp::kGe: asm_.jb(target); break;
      }
    } else {
      const std::uint8_t x = gen_i(c.a);
      const std::uint8_t y = gen_i(c.b);
      asm_.emit(Opcode::kCmp, Operand::gpr(x), Operand::gpr(y));
      free_i(x);
      free_i(y);
      switch (c.op) {
        case CmpOp::kEq: asm_.jne(target); break;
        case CmpOp::kNe: asm_.je(target); break;
        case CmpOp::kLt: asm_.jge(target); break;
        case CmpOp::kLe: asm_.jg(target); break;
        case CmpOp::kGt: asm_.jle(target); break;
        case CmpOp::kGe: asm_.jl(target); break;
      }
    }
  }

  // ---- Statements -------------------------------------------------------------

  void compile_function(const FuncDecl& fn) {
    asm_.begin_function(fn.name, fn.module);
    for (const StmtPtr& s : fn.body) compile_stmt(*s);
    if (fn.name == model_.entry) {
      asm_.halt();
    } else {
      asm_.ret();
    }
    asm_.end_function();
  }

  void compile_stmt(const StmtNode& s) {
    switch (s.kind) {
      case StmtNode::Kind::kAssign: {
        const VarDecl& v = model_.vars[s.var_id];
        if (v.type == Type::kF64) {
          const std::uint8_t x = gen_f(s.a);
          asm_.emit(op_mov_store(), scalar_slot(s.var_id), Operand::xmm(x));
          free_f(x);
        } else {
          const std::uint8_t x = gen_i(s.a);
          asm_.emit(Opcode::kStore, scalar_slot(s.var_id), Operand::gpr(x));
          free_i(x);
        }
        break;
      }
      case StmtNode::Kind::kStore: {
        const VarDecl& v = model_.vars[s.var_id];
        const std::uint8_t idx = gen_i(s.a);
        if (v.type == Type::kF64) {
          const std::uint8_t x = gen_f(s.b);
          asm_.emit(op_mov_store(), elem_slot(s.var_id, idx),
                    Operand::xmm(x));
          free_f(x);
        } else {
          const std::uint8_t x = gen_i(s.b);
          asm_.emit(Opcode::kStore, elem_slot(s.var_id, idx),
                    Operand::gpr(x));
          free_i(x);
        }
        free_i(idx);
        break;
      }
      case StmtNode::Kind::kIf: {
        casm::Label lelse = asm_.new_label();
        branch_unless(s.cond, lelse);
        for (const StmtPtr& st : s.body) compile_stmt(*st);
        if (s.else_body.empty()) {
          asm_.bind(lelse);
          asm_.emit(Opcode::kNop);  // label landing pad
        } else {
          casm::Label lend = asm_.new_label();
          asm_.jmp(lend);
          asm_.bind(lelse);
          for (const StmtPtr& st : s.else_body) compile_stmt(*st);
          asm_.bind(lend);
          asm_.emit(Opcode::kNop);
        }
        break;
      }
      case StmtNode::Kind::kWhile: {
        casm::Label lhead = asm_.new_label();
        casm::Label lend = asm_.new_label();
        asm_.bind(lhead);
        branch_unless(s.cond, lend);
        for (const StmtPtr& st : s.body) compile_stmt(*st);
        asm_.jmp(lhead);
        asm_.bind(lend);
        asm_.emit(Opcode::kNop);
        break;
      }
      case StmtNode::Kind::kFor: {
        // v = lo; head: if !(v < hi) goto end; body; v += step; goto head.
        const std::uint8_t lo = gen_i(s.a);
        asm_.emit(Opcode::kStore, scalar_slot(s.var_id), Operand::gpr(lo));
        free_i(lo);
        casm::Label lhead = asm_.new_label();
        casm::Label lend = asm_.new_label();
        asm_.bind(lhead);
        {
          const std::uint8_t v = alloc_i();
          asm_.emit(Opcode::kLoad, Operand::gpr(v), scalar_slot(s.var_id));
          const std::uint8_t hi = gen_i(s.b);
          asm_.emit(Opcode::kCmp, Operand::gpr(v), Operand::gpr(hi));
          free_i(v);
          free_i(hi);
          if (s.step > 0) {
            asm_.jge(lend);
          } else {
            asm_.jle(lend);
          }
        }
        for (const StmtPtr& st : s.body) compile_stmt(*st);
        {
          const std::uint8_t v = alloc_i();
          asm_.emit(Opcode::kLoad, Operand::gpr(v), scalar_slot(s.var_id));
          asm_.emit(Opcode::kAdd, Operand::gpr(v), Operand::make_imm(s.step));
          asm_.emit(Opcode::kStore, scalar_slot(s.var_id), Operand::gpr(v));
          free_i(v);
        }
        asm_.jmp(lhead);
        asm_.bind(lend);
        asm_.emit(Opcode::kNop);
        break;
      }
      case StmtNode::Kind::kCall:
        asm_.call(s.callee);
        break;
      case StmtNode::Kind::kOutput: {
        const std::uint8_t x = gen_f(s.a);
        if (mode_ == Mode::kDouble) {
          mov_xx(0, x);
        } else {
          asm_.emit(Opcode::kCvtss2sd, Operand::xmm(0), Operand::xmm(x));
        }
        free_f(x);
        asm_.intrin(in::Id::kOutputF64);
        break;
      }
      case StmtNode::Kind::kOutputI: {
        const std::uint8_t x = gen_i(s.a);
        asm_.emit(Opcode::kMov, Operand::gpr(1), Operand::gpr(x));
        free_i(x);
        asm_.intrin(in::Id::kOutputI64);
        break;
      }
      case StmtNode::Kind::kBarrier:
        asm_.intrin(in::Id::kMpiBarrier);
        break;
      case StmtNode::Kind::kAllreduceVec: {
        if (mode_ == Mode::kSingle) {
          throw ProgramError(
              "allreduce_vec is not supported in single mode (f64 buffers)");
        }
        const std::uint8_t c = gen_i(s.a);
        asm_.emit(Opcode::kMov, Operand::gpr(1),
                  Operand::make_imm(
                      static_cast<std::int64_t>(addr_[s.var_id])));
        if (c != 2) {
          asm_.emit(Opcode::kMov, Operand::gpr(2), Operand::gpr(c));
        }
        free_i(c);
        asm_.intrin(in::Id::kMpiAllreduceVec);
        break;
      }
      case StmtNode::Kind::kReturn:
        if (model_.funcs.empty()) break;
        asm_.ret();
        break;
    }
  }

  const ProgramModel& model_;
  Mode mode_;
  casm::Assembler asm_;
  std::vector<std::uint64_t> addr_;
  std::map<std::uint64_t, std::uint64_t> fconst_;
  bool fbusy_[16] = {};
  bool ibusy_[16] = {};
};

}  // namespace

program::Program compile(const ProgramModel& model, Mode mode) {
  if (model.funcs.empty()) throw ProgramError("program has no functions");
  Compiler c(model, mode);
  return c.run();
}

}  // namespace fpmix::lang
