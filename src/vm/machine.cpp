#include "vm/machine.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>
#include <mutex>
#include <thread>

#include "arch/disasm.hpp"
#include "arch/encode.hpp"
#include "arch/intrinsics.hpp"
#include "arch/tag.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"
#include "vm/jit/jit.hpp"

namespace fpmix::vm {

using arch::Instr;
using arch::Opcode;
using arch::Operand;
using arch::OperandKind;

namespace in = arch::intrinsics;

namespace {

double f64_of(std::uint64_t bits) { return std::bit_cast<double>(bits); }
std::uint64_t bits_of(double v) { return std::bit_cast<std::uint64_t>(v); }
float f32_of(std::uint32_t bits) { return std::bit_cast<float>(bits); }
std::uint32_t bits_of(float v) { return std::bit_cast<std::uint32_t>(v); }

/// Replaces the low 32 bits of `slot`, preserving the high 32.
std::uint64_t with_low32(std::uint64_t slot, std::uint32_t low) {
  return (slot & 0xFFFFFFFF00000000ull) | low;
}

}  // namespace

Machine::Machine(const program::Image& image, Options options)
    : Machine(ExecutableImage::build(image), options) {}

Machine::Machine(std::shared_ptr<const ExecutableImage> exec, Options options)
    : exec_(std::move(exec)), options_(options) {
  FPMIX_CHECK(exec_ != nullptr);
  const program::Image& image = exec_->image();
  memory_.assign(image.memory_size, 0);
  if (!image.data.empty()) {
    FPMIX_CHECK(image.data_base + image.data.size() <= memory_.size());
    std::memcpy(memory_.data() + image.data_base, image.data.data(),
                image.data.size());
  }
  mem_base_ = memory_.data();
  mem_size_ = memory_.size();
  if (options_.profile) counts_.assign(exec_->code().size(), 0);
  if (options_.mpi != nullptr) {
    FPMIX_CHECK(options_.rank >= 0 && options_.rank < options_.mpi->size());
  }
}

void Machine::trap(std::string message) const { throw Trap{std::move(message)}; }

std::string Machine::trap_context(std::size_t pc, std::uint64_t retired) const {
  if (pc >= exec_->code().size()) {
    return strformat(" [pc=%llu retired=%llu]",
                     static_cast<unsigned long long>(pc),
                     static_cast<unsigned long long>(retired));
  }
  const Instr& ins = exec_->code()[pc];
  return strformat(" [pc=%llu addr=0x%llx op=%s retired=%llu]",
                   static_cast<unsigned long long>(pc),
                   static_cast<unsigned long long>(ins.addr),
                   arch::opcode_name(ins.op),
                   static_cast<unsigned long long>(retired));
}

std::uint64_t Machine::effective_address(const arch::MemRef& m) const {
  std::uint64_t a = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(m.disp));
  if (m.base != arch::kNoReg) a += gpr_[m.base];
  if (m.index != arch::kNoReg) a += gpr_[m.index] * m.scale;
  return a;
}

std::uint64_t Machine::load(std::uint64_t addr, unsigned bytes) const {
  if (addr + bytes > mem_size_ || addr + bytes < addr) {
    trap(strformat("memory read of %u bytes at 0x%llx out of bounds", bytes,
                   static_cast<unsigned long long>(addr)));
  }
  std::uint64_t v = 0;
  std::memcpy(&v, mem_base_ + addr, bytes);
  return v;
}

void Machine::store(std::uint64_t addr, std::uint64_t value, unsigned bytes) {
  if (addr + bytes > mem_size_ || addr + bytes < addr) {
    trap(strformat("memory write of %u bytes at 0x%llx out of bounds", bytes,
                   static_cast<unsigned long long>(addr)));
  }
  std::memcpy(mem_base_ + addr, &value, bytes);
}

std::uint64_t Machine::int_value(const Operand& op) const {
  switch (op.kind) {
    case OperandKind::kGpr: return gpr_[op.reg];
    case OperandKind::kImm: return static_cast<std::uint64_t>(op.imm);
    default:
      trap("integer operand is neither register nor immediate");
  }
}

void Machine::check_not_tagged(const Instr& ins, std::uint64_t bits) const {
  if (options_.tag_trap && arch::is_tagged(bits)) {
    throw Trap{
        strformat("replaced-double sentinel consumed by '%s' at 0x%llx"
                  " (origin 0x%llx):"
                  " a narrowed value escaped the instrumentation",
                  arch::instr_to_string(ins).c_str(),
                  static_cast<unsigned long long>(ins.addr),
                  static_cast<unsigned long long>(
                      exec_->image().origin_of(ins.addr))),
        /*sentinel=*/true};
  }
}

std::uint64_t Machine::read_f64_bits(const Instr& ins, const Operand& op,
                                     unsigned lane) const {
  std::uint64_t bits;
  if (op.is_xmm()) {
    bits = (lane == 0) ? xmm_[op.reg].lo : xmm_[op.reg].hi;
  } else if (op.is_mem()) {
    bits = load(effective_address(op.mem) + 8ull * lane, 8);
  } else {
    trap("f64 operand is neither xmm nor memory");
  }
  check_not_tagged(ins, bits);
  return bits;
}

void Machine::push64(std::uint64_t v) {
  gpr_[arch::kSpReg] -= 8;
  store(gpr_[arch::kSpReg], v, 8);
}

std::uint64_t Machine::pop64() {
  const std::uint64_t v = load(gpr_[arch::kSpReg], 8);
  gpr_[arch::kSpReg] += 8;
  return v;
}

RunResult Machine::run() {
  FPMIX_CHECK(!ran_);
  ran_ = true;

  // Initial state: stack at the top of memory with a null return address; a
  // `ret` from the entry function stops the machine like `halt` does.
  gpr_[arch::kSpReg] = memory_.size();
  push64(0);
  pc_ = exec_->entry_index();

  const bool fault_planned = options_.fault != nullptr &&
                             options_.fault->kind != fault::VmFault::kNone;
  if (options_.deadline_ns == 0 && !fault_planned) return run_engine();
  return run_supervised();
}

RunResult Machine::run_engine() {
  if (options_.engine == Engine::kSwitch) return run_switch();
  if (options_.engine == Engine::kJit) {
    if (jit::jit_supported()) return run_jit();
    // Degrade once per process, loudly: results are still bit-identical, so
    // nothing downstream needs to care beyond the timing.
    static std::once_flag warned;
    std::call_once(warned, [] {
      log::warnf(
          "jit engine unavailable (%s); falling back to the micro-op engine",
          jit::jit_unsupported_reason());
    });
    options_.engine = Engine::kMicroOp;
  }
  return options_.profile ? run_micro<true>() : run_micro<false>();
}

RunResult Machine::run_supervised() {
  // Both engines persist pc_/retired_ at a budget stop and resume from them,
  // so the deadline and the fault point are enforced without touching the
  // hot dispatch loops: temporarily lower max_instructions to the next
  // supervision point, re-enter the engine, and check the wall clock / fire
  // the planned fault at each chunk boundary. The overshoot past a deadline
  // is at most one chunk of retired instructions.
  const std::uint64_t real_budget = options_.max_instructions;
  const std::uint64_t interval = std::max<std::uint64_t>(
      options_.deadline_check_interval, 1);
  const fault::VmFaultSpec* fault =
      (options_.fault != nullptr &&
       options_.fault->kind != fault::VmFault::kNone)
          ? options_.fault
          : nullptr;
  Timer timer;

  const auto deadline_result = [&]() {
    RunResult r;
    r.status = RunResult::Status::kDeadline;
    r.trap_message = strformat(
        "wall-clock deadline of %llu ms exceeded after %llu instructions",
        static_cast<unsigned long long>(options_.deadline_ns / 1000000),
        static_cast<unsigned long long>(retired_));
    r.instructions_retired = retired_;
    return r;
  };

  while (true) {
    // Fire the planned fault once its retired-instruction count is reached
    // (including at_retired == 0, before the first chunk).
    if (fault != nullptr && retired_ >= fault->at_retired) {
      const fault::VmFaultSpec spec = *fault;
      fault = nullptr;
      switch (spec.kind) {
        case fault::VmFault::kAbort: {
          RunResult r;
          r.status = RunResult::Status::kTrapped;
          r.trap_message = "injected fault: trial aborted" +
                           trap_context(pc_, retired_);
          r.instructions_retired = retired_;
          return r;
        }
        case fault::VmFault::kStall: {
          if (options_.deadline_ns == 0) {
            // Nothing would ever cancel the hang; surface it as a trap
            // instead of blocking the harness forever.
            RunResult r;
            r.status = RunResult::Status::kTrapped;
            r.trap_message =
                "injected fault: stall with no deadline configured" +
                trap_context(pc_, retired_);
            r.instructions_retired = retired_;
            return r;
          }
          // Model a hang: stop retiring instructions until the deadline
          // trips, as a real non-terminating trial would.
          while (timer.elapsed_ns() < options_.deadline_ns) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          return deadline_result();
        }
        case fault::VmFault::kBitFlip:
        case fault::VmFault::kSentinel:
          apply_state_fault(spec);
          break;
        case fault::VmFault::kNone:
          break;
      }
    }

    if (options_.deadline_ns != 0 &&
        timer.elapsed_ns() >= options_.deadline_ns) {
      return deadline_result();
    }

    std::uint64_t stop_at = real_budget;
    if (options_.deadline_ns != 0) {
      stop_at = std::min(stop_at, retired_ + interval);
    }
    if (fault != nullptr) stop_at = std::min(stop_at, fault->at_retired);

    options_.max_instructions = stop_at;
    RunResult r = run_engine();
    options_.max_instructions = real_budget;

    // Anything but a chunk-boundary budget stop is a real outcome; a budget
    // stop is only real once the true budget is spent.
    if (r.status != RunResult::Status::kOutOfBudget ||
        retired_ >= real_budget) {
      return r;
    }
  }
}

void Machine::apply_state_fault(const fault::VmFaultSpec& spec) {
  SplitMix64 rng(spec.seed);
  if (spec.kind == fault::VmFault::kBitFlip) {
    // Silent data corruption: flip one bit of one 64-bit FP slot -- an xmm
    // lane, or an aligned slot of data memory.
    const std::uint64_t bit = 1ull << rng.next_below(64);
    if (mem_size_ >= 8 && rng.next_below(2) == 0) {
      const std::uint64_t slot = 8 * rng.next_below(mem_size_ / 8);
      std::uint64_t v = 0;
      std::memcpy(&v, mem_base_ + slot, 8);
      v ^= bit;
      std::memcpy(mem_base_ + slot, &v, 8);
    } else {
      Xmm& x = xmm_[rng.next_below(arch::kNumXmms)];
      (rng.next_below(2) == 0 ? x.lo : x.hi) ^= bit;
    }
  } else {  // kSentinel
    // Plant the replaced-double sentinel in every xmm low lane: the next
    // double-interpreting read trips the tag trap exactly as a narrowed
    // value escaping the instrumentation would.
    const float payload = static_cast<float>(rng.next_double());
    for (Xmm& x : xmm_) x.lo = arch::make_tagged(payload);
  }
}

RunResult Machine::run_switch() {
  RunResult result;
  try {
    while (!stopped_) {
      if (retired_ >= options_.max_instructions) {
        result.status = RunResult::Status::kOutOfBudget;
        result.trap_message = "instruction budget exhausted";
        result.instructions_retired = retired_;
        return result;
      }
      const Instr& ins = exec_->code()[pc_];
      if (options_.profile) ++counts_[pc_];
      ++retired_;
      step_switch(ins);
    }
    result.status = RunResult::Status::kHalted;
  } catch (const Trap& t) {
    result.status = RunResult::Status::kTrapped;
    result.trap_message = t.message + trap_context(pc_, retired_);
    result.sentinel_escape = t.sentinel;
  }
  result.instructions_retired = retired_;
  return result;
}

void Machine::step_switch(const Instr& ins) {
  // Most instructions fall through; control flow overrides `next`.
  std::size_t next = pc_ + 1;

  const auto take_branch_if = [&](bool cond) {
    if (cond) next = static_cast<std::size_t>(ins.src.imm);
  };

  // Scalar f64 binary: dst.lane0 = f(dst.lane0, src.lane0/mem).
  const auto binsd = [&](auto f) {
    const double a = f64_of(read_f64_bits(ins, ins.dst, 0));
    const double b = f64_of(read_f64_bits(ins, ins.src, 0));
    xmm_[ins.dst.reg].lo = bits_of(double(f(a, b)));
  };
  // Scalar f32 binary on low 32 bits.
  const auto binss = [&](auto f) {
    const float a = f32_of(static_cast<std::uint32_t>(xmm_[ins.dst.reg].lo));
    std::uint32_t src_bits;
    if (ins.src.is_xmm()) {
      src_bits = static_cast<std::uint32_t>(xmm_[ins.src.reg].lo);
    } else {
      src_bits =
          static_cast<std::uint32_t>(load(effective_address(ins.src.mem), 4));
    }
    const float b = f32_of(src_bits);
    xmm_[ins.dst.reg].lo =
        with_low32(xmm_[ins.dst.reg].lo, bits_of(float(f(a, b))));
  };
  // Packed f64: both lanes.
  const auto binpd = [&](auto f) {
    const double a0 = f64_of(read_f64_bits(ins, ins.dst, 0));
    const double a1 = f64_of(read_f64_bits(ins, ins.dst, 1));
    const double b0 = f64_of(read_f64_bits(ins, ins.src, 0));
    const double b1 = f64_of(read_f64_bits(ins, ins.src, 1));
    xmm_[ins.dst.reg].lo = bits_of(double(f(a0, b0)));
    xmm_[ins.dst.reg].hi = bits_of(double(f(a1, b1)));
  };
  // Packed f32: four lanes (two per 64-bit half).
  const auto binps = [&](auto f) {
    std::uint64_t slo, shi;
    if (ins.src.is_xmm()) {
      slo = xmm_[ins.src.reg].lo;
      shi = xmm_[ins.src.reg].hi;
    } else {
      const std::uint64_t ea = effective_address(ins.src.mem);
      slo = load(ea, 8);
      shi = load(ea + 8, 8);
    }
    const auto apply_half = [&](std::uint64_t d, std::uint64_t s) {
      const float d0 = f32_of(static_cast<std::uint32_t>(d));
      const float d1 = f32_of(static_cast<std::uint32_t>(d >> 32));
      const float s0 = f32_of(static_cast<std::uint32_t>(s));
      const float s1 = f32_of(static_cast<std::uint32_t>(s >> 32));
      const std::uint64_t r0 = bits_of(float(f(d0, s0)));
      const std::uint64_t r1 = bits_of(float(f(d1, s1)));
      return r0 | (r1 << 32);
    };
    xmm_[ins.dst.reg].lo = apply_half(xmm_[ins.dst.reg].lo, slo);
    xmm_[ins.dst.reg].hi = apply_half(xmm_[ins.dst.reg].hi, shi);
  };
  // Bitwise 128-bit.
  const auto bitop = [&](auto f) {
    std::uint64_t slo, shi;
    if (ins.src.is_xmm()) {
      slo = xmm_[ins.src.reg].lo;
      shi = xmm_[ins.src.reg].hi;
    } else {
      const std::uint64_t ea = effective_address(ins.src.mem);
      slo = load(ea, 8);
      shi = load(ea + 8, 8);
    }
    xmm_[ins.dst.reg].lo = f(xmm_[ins.dst.reg].lo, slo);
    xmm_[ins.dst.reg].hi = f(xmm_[ins.dst.reg].hi, shi);
  };
  // Integer binary on gpr dst.
  const auto binint = [&](auto f) {
    gpr_[ins.dst.reg] = f(gpr_[ins.dst.reg], int_value(ins.src));
  };

  switch (ins.op) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      stopped_ = true;
      break;

    case Opcode::kJmp: take_branch_if(true); break;
    case Opcode::kJe: take_branch_if(flags_.eq); break;
    case Opcode::kJne: take_branch_if(!flags_.eq); break;
    case Opcode::kJl: take_branch_if(flags_.lt); break;
    case Opcode::kJle: take_branch_if(flags_.lt || flags_.eq); break;
    case Opcode::kJg: take_branch_if(!flags_.lt && !flags_.eq); break;
    case Opcode::kJge: take_branch_if(!flags_.lt); break;
    case Opcode::kJb: take_branch_if(flags_.ltu); break;
    case Opcode::kJbe: take_branch_if(flags_.ltu || flags_.eq); break;
    case Opcode::kJa: take_branch_if(!flags_.ltu && !flags_.eq); break;
    case Opcode::kJae: take_branch_if(!flags_.ltu); break;

    case Opcode::kCall: {
      const Instr& self = ins;
      push64(self.addr + self.size);
      next = static_cast<std::size_t>(ins.src.imm);
      break;
    }
    case Opcode::kRet: {
      const std::uint64_t ra = pop64();
      if (ra == 0) {
        stopped_ = true;
        break;
      }
      const std::size_t idx = exec_->index_of(ra);
      if (idx == ExecutableImage::kNoIndex) {
        trap(strformat("ret to 0x%llx, not an instruction boundary",
                       static_cast<unsigned long long>(ra)));
      }
      next = idx;
      break;
    }

    case Opcode::kMov:
      gpr_[ins.dst.reg] = int_value(ins.src);
      break;
    case Opcode::kLoad:
      gpr_[ins.dst.reg] = load(effective_address(ins.src.mem), 8);
      break;
    case Opcode::kStore:
      store(effective_address(ins.dst.mem), gpr_[ins.src.reg], 8);
      break;
    case Opcode::kLea:
      gpr_[ins.dst.reg] = effective_address(ins.src.mem);
      break;

    case Opcode::kAdd: binint([](std::uint64_t a, std::uint64_t b) { return a + b; }); break;
    case Opcode::kSub: binint([](std::uint64_t a, std::uint64_t b) { return a - b; }); break;
    case Opcode::kImul: binint([](std::uint64_t a, std::uint64_t b) { return a * b; }); break;
    case Opcode::kIdiv: {
      const auto a = static_cast<std::int64_t>(gpr_[ins.dst.reg]);
      const auto b = static_cast<std::int64_t>(int_value(ins.src));
      if (b == 0) trap("integer division by zero");
      if (a == INT64_MIN && b == -1) trap("integer division overflow");
      gpr_[ins.dst.reg] = static_cast<std::uint64_t>(a / b);
      break;
    }
    case Opcode::kIrem: {
      const auto a = static_cast<std::int64_t>(gpr_[ins.dst.reg]);
      const auto b = static_cast<std::int64_t>(int_value(ins.src));
      if (b == 0) trap("integer remainder by zero");
      if (a == INT64_MIN && b == -1) trap("integer remainder overflow");
      gpr_[ins.dst.reg] = static_cast<std::uint64_t>(a % b);
      break;
    }
    case Opcode::kAnd: binint([](std::uint64_t a, std::uint64_t b) { return a & b; }); break;
    case Opcode::kOr: binint([](std::uint64_t a, std::uint64_t b) { return a | b; }); break;
    case Opcode::kXor: binint([](std::uint64_t a, std::uint64_t b) { return a ^ b; }); break;
    case Opcode::kShl: binint([](std::uint64_t a, std::uint64_t b) { return a << (b & 63); }); break;
    case Opcode::kShr: binint([](std::uint64_t a, std::uint64_t b) { return a >> (b & 63); }); break;
    case Opcode::kSar:
      binint([](std::uint64_t a, std::uint64_t b) {
        return static_cast<std::uint64_t>(static_cast<std::int64_t>(a) >>
                                          (b & 63));
      });
      break;
    case Opcode::kCmp: {
      const std::uint64_t a = gpr_[ins.dst.reg];
      const std::uint64_t b = int_value(ins.src);
      flags_.eq = a == b;
      flags_.lt = static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
      flags_.ltu = a < b;
      break;
    }
    case Opcode::kTest: {
      const std::uint64_t v = gpr_[ins.dst.reg] & int_value(ins.src);
      flags_.eq = v == 0;
      flags_.lt = static_cast<std::int64_t>(v) < 0;
      flags_.ltu = false;
      break;
    }
    case Opcode::kPush: push64(gpr_[ins.dst.reg]); break;
    case Opcode::kPop: gpr_[ins.dst.reg] = pop64(); break;

    case Opcode::kMovqXR:
      // Deviation from x86: preserves the upper lane, so scalar snippet
      // write-backs cannot clobber live packed data (DESIGN.md section 7).
      xmm_[ins.dst.reg].lo = gpr_[ins.src.reg];
      break;
    case Opcode::kMovqRX:
      gpr_[ins.dst.reg] = xmm_[ins.src.reg].lo;
      break;
    case Opcode::kMovsdXX:
      xmm_[ins.dst.reg].lo = xmm_[ins.src.reg].lo;
      break;
    case Opcode::kMovsdXM:
      xmm_[ins.dst.reg].lo = load(effective_address(ins.src.mem), 8);
      xmm_[ins.dst.reg].hi = 0;
      break;
    case Opcode::kMovsdMX:
      store(effective_address(ins.dst.mem), xmm_[ins.src.reg].lo, 8);
      break;
    case Opcode::kMovssXM:
      xmm_[ins.dst.reg].lo = load(effective_address(ins.src.mem), 4);
      xmm_[ins.dst.reg].hi = 0;
      break;
    case Opcode::kMovssMX:
      store(effective_address(ins.dst.mem), xmm_[ins.src.reg].lo & 0xFFFFFFFFu,
            4);
      break;
    case Opcode::kMovapdXX:
      xmm_[ins.dst.reg] = xmm_[ins.src.reg];
      break;
    case Opcode::kMovapdXM: {
      const std::uint64_t ea = effective_address(ins.src.mem);
      xmm_[ins.dst.reg].lo = load(ea, 8);
      xmm_[ins.dst.reg].hi = load(ea + 8, 8);
      break;
    }
    case Opcode::kMovapdMX: {
      const std::uint64_t ea = effective_address(ins.dst.mem);
      store(ea, xmm_[ins.src.reg].lo, 8);
      store(ea + 8, xmm_[ins.src.reg].hi, 8);
      break;
    }
    case Opcode::kPushX:
      gpr_[arch::kSpReg] -= 16;
      store(gpr_[arch::kSpReg], xmm_[ins.dst.reg].lo, 8);
      store(gpr_[arch::kSpReg] + 8, xmm_[ins.dst.reg].hi, 8);
      break;
    case Opcode::kPopX:
      xmm_[ins.dst.reg].lo = load(gpr_[arch::kSpReg], 8);
      xmm_[ins.dst.reg].hi = load(gpr_[arch::kSpReg] + 8, 8);
      gpr_[arch::kSpReg] += 16;
      break;

    case Opcode::kAddsd: binsd([](double a, double b) { return a + b; }); break;
    case Opcode::kSubsd: binsd([](double a, double b) { return a - b; }); break;
    case Opcode::kMulsd: binsd([](double a, double b) { return a * b; }); break;
    case Opcode::kDivsd: binsd([](double a, double b) { return a / b; }); break;
    case Opcode::kSqrtsd: {
      const double b = f64_of(read_f64_bits(ins, ins.src, 0));
      xmm_[ins.dst.reg].lo = bits_of(std::sqrt(b));
      break;
    }
    case Opcode::kMinsd: binsd([](double a, double b) { return b < a ? b : a; }); break;
    case Opcode::kMaxsd: binsd([](double a, double b) { return a < b ? b : a; }); break;
    case Opcode::kUcomisd: {
      const double a = f64_of(read_f64_bits(ins, ins.dst, 0));
      const double b = f64_of(read_f64_bits(ins, ins.src, 0));
      flags_.eq = a == b;
      flags_.lt = flags_.ltu = a < b;
      break;
    }
    case Opcode::kCvtsd2ss: {
      const double b = f64_of(read_f64_bits(ins, ins.src, 0));
      xmm_[ins.dst.reg].lo = bits_of(static_cast<float>(b));
      break;
    }
    case Opcode::kCvtss2sd: {
      std::uint32_t src_bits;
      if (ins.src.is_xmm()) {
        src_bits = static_cast<std::uint32_t>(xmm_[ins.src.reg].lo);
      } else {
        src_bits = static_cast<std::uint32_t>(
            load(effective_address(ins.src.mem), 4));
      }
      xmm_[ins.dst.reg].lo = bits_of(static_cast<double>(f32_of(src_bits)));
      break;
    }
    case Opcode::kCvtsi2sd:
      xmm_[ins.dst.reg].lo = bits_of(
          static_cast<double>(static_cast<std::int64_t>(gpr_[ins.src.reg])));
      break;
    case Opcode::kCvttsd2si: {
      const double v = f64_of(read_f64_bits(ins, ins.src, 0));
      if (!(v > -9.2e18 && v < 9.2e18)) {
        trap("cvttsd2si operand out of int64 range");
      }
      gpr_[ins.dst.reg] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(v));
      break;
    }

    case Opcode::kAddss: binss([](float a, float b) { return a + b; }); break;
    case Opcode::kSubss: binss([](float a, float b) { return a - b; }); break;
    case Opcode::kMulss: binss([](float a, float b) { return a * b; }); break;
    case Opcode::kDivss: binss([](float a, float b) { return a / b; }); break;
    case Opcode::kSqrtss: {
      std::uint32_t src_bits;
      if (ins.src.is_xmm()) {
        src_bits = static_cast<std::uint32_t>(xmm_[ins.src.reg].lo);
      } else {
        src_bits = static_cast<std::uint32_t>(
            load(effective_address(ins.src.mem), 4));
      }
      xmm_[ins.dst.reg].lo = with_low32(
          xmm_[ins.dst.reg].lo, bits_of(std::sqrt(f32_of(src_bits))));
      break;
    }
    case Opcode::kMinss: binss([](float a, float b) { return b < a ? b : a; }); break;
    case Opcode::kMaxss: binss([](float a, float b) { return a < b ? b : a; }); break;
    case Opcode::kUcomiss: {
      const float a = f32_of(static_cast<std::uint32_t>(xmm_[ins.dst.reg].lo));
      std::uint32_t src_bits;
      if (ins.src.is_xmm()) {
        src_bits = static_cast<std::uint32_t>(xmm_[ins.src.reg].lo);
      } else {
        src_bits = static_cast<std::uint32_t>(
            load(effective_address(ins.src.mem), 4));
      }
      const float b = f32_of(src_bits);
      flags_.eq = a == b;
      flags_.lt = flags_.ltu = a < b;
      break;
    }
    case Opcode::kCvtsi2ss:
      xmm_[ins.dst.reg].lo = with_low32(
          xmm_[ins.dst.reg].lo,
          bits_of(static_cast<float>(
              static_cast<std::int64_t>(gpr_[ins.src.reg]))));
      break;
    case Opcode::kCvttss2si: {
      const float v = f32_of(static_cast<std::uint32_t>(xmm_[ins.src.reg].lo));
      if (!(v > -9.2e18f && v < 9.2e18f)) {
        trap("cvttss2si operand out of int64 range");
      }
      gpr_[ins.dst.reg] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(v));
      break;
    }

    case Opcode::kAddpd: binpd([](double a, double b) { return a + b; }); break;
    case Opcode::kSubpd: binpd([](double a, double b) { return a - b; }); break;
    case Opcode::kMulpd: binpd([](double a, double b) { return a * b; }); break;
    case Opcode::kDivpd: binpd([](double a, double b) { return a / b; }); break;
    case Opcode::kSqrtpd: {
      const double b0 = f64_of(read_f64_bits(ins, ins.src, 0));
      const double b1 = f64_of(read_f64_bits(ins, ins.src, 1));
      xmm_[ins.dst.reg].lo = bits_of(std::sqrt(b0));
      xmm_[ins.dst.reg].hi = bits_of(std::sqrt(b1));
      break;
    }
    case Opcode::kAddps: binps([](float a, float b) { return a + b; }); break;
    case Opcode::kSubps: binps([](float a, float b) { return a - b; }); break;
    case Opcode::kMulps: binps([](float a, float b) { return a * b; }); break;
    case Opcode::kDivps: binps([](float a, float b) { return a / b; }); break;
    case Opcode::kSqrtps: {
      std::uint64_t slo, shi;
      if (ins.src.is_xmm()) {
        slo = xmm_[ins.src.reg].lo;
        shi = xmm_[ins.src.reg].hi;
      } else {
        const std::uint64_t ea = effective_address(ins.src.mem);
        slo = load(ea, 8);
        shi = load(ea + 8, 8);
      }
      const auto sqrt_half = [](std::uint64_t s) {
        const std::uint64_t r0 =
            bits_of(std::sqrt(f32_of(static_cast<std::uint32_t>(s))));
        const std::uint64_t r1 =
            bits_of(std::sqrt(f32_of(static_cast<std::uint32_t>(s >> 32))));
        return r0 | (r1 << 32);
      };
      xmm_[ins.dst.reg].lo = sqrt_half(slo);
      xmm_[ins.dst.reg].hi = sqrt_half(shi);
      break;
    }

    case Opcode::kAndpd: bitop([](std::uint64_t a, std::uint64_t b) { return a & b; }); break;
    case Opcode::kOrpd: bitop([](std::uint64_t a, std::uint64_t b) { return a | b; }); break;
    case Opcode::kXorpd: bitop([](std::uint64_t a, std::uint64_t b) { return a ^ b; }); break;

    case Opcode::kIntrin:
      exec_intrinsic(ins);
      break;

    default:
      trap(strformat("unimplemented opcode %s", arch::opcode_name(ins.op)));
  }

  pc_ = next;
}

void Machine::exec_intrinsic(const Instr& ins) {
  const auto id = static_cast<in::Id>(ins.src.imm);
  if (id >= in::Id::kNumIntrinsics) trap("invalid intrinsic id");

  // f64 math helpers --------------------------------------------------------
  const auto arg_f64 = [&](int i) {
    const std::uint64_t bits = xmm_[i].lo;
    check_not_tagged(ins, bits);
    return f64_of(bits);
  };
  const auto ret_f64 = [&](double v) { xmm_[0].lo = bits_of(v); };
  // f32 twins: argument and result in the low 32 bits. Each computes the
  // double-precision function on the widened argument, rounded once -- so an
  // all-single instrumented run matches a manual single conversion
  // bit-for-bit (Section 3.1).
  const auto arg_f32 = [&](int i) {
    return static_cast<double>(
        f32_of(static_cast<std::uint32_t>(xmm_[i].lo)));
  };
  const auto ret_f32 = [&](double v) {
    xmm_[0].lo = with_low32(xmm_[0].lo, bits_of(static_cast<float>(v)));
  };

  switch (id) {
    case in::Id::kSin: ret_f64(std::sin(arg_f64(0))); break;
    case in::Id::kCos: ret_f64(std::cos(arg_f64(0))); break;
    case in::Id::kTan: ret_f64(std::tan(arg_f64(0))); break;
    case in::Id::kExp: ret_f64(std::exp(arg_f64(0))); break;
    case in::Id::kLog: ret_f64(std::log(arg_f64(0))); break;
    case in::Id::kPow: ret_f64(std::pow(arg_f64(0), arg_f64(1))); break;
    case in::Id::kFloor: ret_f64(std::floor(arg_f64(0))); break;
    case in::Id::kCeil: ret_f64(std::ceil(arg_f64(0))); break;
    case in::Id::kFabs: ret_f64(std::fabs(arg_f64(0))); break;

    case in::Id::kSinF32: ret_f32(std::sin(arg_f32(0))); break;
    case in::Id::kCosF32: ret_f32(std::cos(arg_f32(0))); break;
    case in::Id::kTanF32: ret_f32(std::tan(arg_f32(0))); break;
    case in::Id::kExpF32: ret_f32(std::exp(arg_f32(0))); break;
    case in::Id::kLogF32: ret_f32(std::log(arg_f32(0))); break;
    case in::Id::kPowF32: ret_f32(std::pow(arg_f32(0), arg_f32(1))); break;
    case in::Id::kFloorF32: ret_f32(std::floor(arg_f32(0))); break;
    case in::Id::kCeilF32: ret_f32(std::ceil(arg_f32(0))); break;
    case in::Id::kFabsF32: ret_f32(std::fabs(arg_f32(0))); break;

    case in::Id::kOutputF64: {
      const std::uint64_t bits = xmm_[0].lo;
      check_not_tagged(ins, bits);
      output_f64_.push_back(f64_of(bits));
      break;
    }
    case in::Id::kOutputI64:
      output_i64_.push_back(static_cast<std::int64_t>(gpr_[1]));
      break;

    case in::Id::kPrintF64: {
      const std::uint64_t bits = xmm_[0].lo;
      check_not_tagged(ins, bits);
      std::printf("%.17g\n", f64_of(bits));
      break;
    }
    case in::Id::kPrintI64:
      std::printf("%lld\n", static_cast<long long>(gpr_[1]));
      break;
    case in::Id::kPrintStr: {
      const std::uint64_t addr = gpr_[1];
      const std::uint64_t len = gpr_[2];
      if (addr + len > memory_.size()) trap("print_str out of bounds");
      std::fwrite(memory_.data() + addr, 1, len, stdout);
      break;
    }

    case in::Id::kMpiRank:
      gpr_[0] = static_cast<std::uint64_t>(options_.rank);
      break;
    case in::Id::kMpiSize:
      gpr_[0] = static_cast<std::uint64_t>(
          options_.mpi != nullptr ? options_.mpi->size() : 1);
      break;
    case in::Id::kMpiBarrier:
      if (options_.mpi != nullptr) options_.mpi->barrier();
      break;
    case in::Id::kMpiAllreduceSum: {
      const std::uint64_t bits = xmm_[0].lo;
      check_not_tagged(ins, bits);
      double v = f64_of(bits);
      if (options_.mpi != nullptr) v = options_.mpi->allreduce_sum(v);
      xmm_[0].lo = bits_of(v);
      break;
    }
    case in::Id::kMpiAllreduceMax: {
      const std::uint64_t bits = xmm_[0].lo;
      check_not_tagged(ins, bits);
      double v = f64_of(bits);
      if (options_.mpi != nullptr) v = options_.mpi->allreduce_max(v);
      xmm_[0].lo = bits_of(v);
      break;
    }
    case in::Id::kMpiAllreduceVec: {
      const std::uint64_t addr = gpr_[1];
      const std::uint64_t count = gpr_[2];
      if (addr % 8 != 0) trap("mpi_allreduce_vec: unaligned buffer");
      if (addr + count * 8 > memory_.size()) {
        trap("mpi_allreduce_vec out of bounds");
      }
      auto* data = reinterpret_cast<double*>(memory_.data() + addr);
      if (options_.tag_trap) {
        for (std::uint64_t i = 0; i < count; ++i) {
          check_not_tagged(ins, std::bit_cast<std::uint64_t>(data[i]));
        }
      }
      if (options_.mpi != nullptr) {
        options_.mpi->allreduce_vec(std::span<double>(data, count));
      }
      break;
    }

    default:
      trap(strformat("unimplemented intrinsic %s", in::intrin_name(id)));
  }
}

std::vector<std::uint8_t> Machine::read_memory(std::uint64_t addr,
                                               std::size_t size) const {
  if (addr + size > memory_.size() || addr + size < addr) {
    throw VmError("read_memory out of bounds");
  }
  return std::vector<std::uint8_t>(memory_.begin() +
                                       static_cast<std::ptrdiff_t>(addr),
                                   memory_.begin() +
                                       static_cast<std::ptrdiff_t>(addr +
                                                                   size));
}

std::uint64_t Machine::read_memory_u64(std::uint64_t addr) const {
  if (addr + 8 > memory_.size()) throw VmError("read_memory out of bounds");
  std::uint64_t v = 0;
  std::memcpy(&v, memory_.data() + addr, 8);
  return v;
}

std::map<std::uint64_t, std::uint64_t> Machine::profile_by_address() const {
  std::map<std::uint64_t, std::uint64_t> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) out[exec_->code()[i].addr] = counts_[i];
  }
  return out;
}

std::map<std::uint64_t, std::uint64_t> Machine::profile_by_origin() const {
  std::map<std::uint64_t, std::uint64_t> out;
  const program::Image& image = exec_->image();
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) out[image.origin_of(exec_->code()[i].addr)] +=
        counts_[i];
  }
  return out;
}

// ---------------------------------------------------------------------------
// Micro-op engine.
//
// One static handler per MicroKind, dispatched through kMicroTable below.
// Handlers take the current instruction index and return the next one (or
// MicroExec::kStop), so the run loop keeps the pc and the retired count in
// registers across the indirect call. Semantics -- including the ORDER of tag checks vs. memory
// loads, which decides which trap fires first -- mirror step_switch exactly;
// tests/vm_engine_test.cpp holds the two engines bit-identical.
// ---------------------------------------------------------------------------

struct MicroExec {
  /// Returns the next instruction index, or kStop to stop the machine.
  using Handler = std::size_t (*)(Machine&, const MicroOp&, std::size_t);

  /// Next-pc sentinel meaning "stop cleanly": a halt, or a ret to the null
  /// return address pushed by run().
  static constexpr std::size_t kStop = ExecutableImage::kNoIndex;

  static const Instr& instr(const Machine& m, std::size_t pc) {
    return m.exec_->code()[pc];
  }

  /// Branch-free: absent base/index were redirected to the always-zero
  /// register slot at lowering time.
  static std::uint64_t ea(const Machine& m, const MicroOp& u) {
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(u.ea_disp)) +
           m.gpr_[u.ea_base] + (m.gpr_[u.ea_index] << u.ea_shift);
  }

  static void check_tag(Machine& m, std::uint64_t bits, std::size_t pc) {
    if (m.options_.tag_trap && arch::is_tagged(bits)) [[unlikely]] {
      m.check_not_tagged(instr(m, pc), bits);  // traps with the full diagnostic
    }
  }

  /// 8-byte load that is about to be interpreted as a double: bounds trap
  /// first (the load), then the tag trap -- same order as read_f64_bits.
  static std::uint64_t load_f64(Machine& m, std::uint64_t addr,
                                std::size_t pc) {
    const std::uint64_t bits = m.load(addr, 8);
    check_tag(m, bits, pc);
    return bits;
  }

  // --- control flow --------------------------------------------------------

  static std::size_t h_nop(Machine&, const MicroOp&, std::size_t pc) {
    return pc + 1;
  }
  static std::size_t h_halt(Machine&, const MicroOp&, std::size_t) {
    return kStop;
  }
  static std::size_t h_jmp(Machine&, const MicroOp& u, std::size_t) {
    return static_cast<std::size_t>(u.imm);
  }

#define FPMIX_H_JCC(NAME, COND)                               \
  static std::size_t NAME(Machine& m, const MicroOp& u,       \
                          std::size_t pc) {                   \
    return (COND) ? static_cast<std::size_t>(u.imm) : pc + 1; \
  }
  FPMIX_H_JCC(h_je, m.flags_.eq)
  FPMIX_H_JCC(h_jne, !m.flags_.eq)
  FPMIX_H_JCC(h_jl, m.flags_.lt)
  FPMIX_H_JCC(h_jle, m.flags_.lt || m.flags_.eq)
  FPMIX_H_JCC(h_jg, !m.flags_.lt && !m.flags_.eq)
  FPMIX_H_JCC(h_jge, !m.flags_.lt)
  FPMIX_H_JCC(h_jb, m.flags_.ltu)
  FPMIX_H_JCC(h_jbe, m.flags_.ltu || m.flags_.eq)
  FPMIX_H_JCC(h_ja, !m.flags_.ltu && !m.flags_.eq)
  FPMIX_H_JCC(h_jae, !m.flags_.ltu)
#undef FPMIX_H_JCC

  static std::size_t h_call(Machine& m, const MicroOp& u, std::size_t) {
    m.push64(u.aux);  // return address, precomputed at lowering time
    return static_cast<std::size_t>(u.imm);
  }
  static std::size_t h_ret(Machine& m, const MicroOp&, std::size_t) {
    const std::uint64_t ra = m.pop64();
    if (ra == 0) return kStop;  // the null frame pushed by run()
    const std::size_t idx = m.exec_->index_of(ra);
    if (idx == ExecutableImage::kNoIndex) {
      m.trap(strformat("ret to 0x%llx, not an instruction boundary",
                       static_cast<unsigned long long>(ra)));
    }
    return idx;
  }

  // --- integer file --------------------------------------------------------

  static std::size_t h_mov_rr(Machine& m, const MicroOp& u, std::size_t pc) {
    m.gpr_[u.a] = m.gpr_[u.b];
    return pc + 1;
  }
  static std::size_t h_mov_ri(Machine& m, const MicroOp& u, std::size_t pc) {
    m.gpr_[u.a] = static_cast<std::uint64_t>(u.imm);
    return pc + 1;
  }
  static std::size_t h_load(Machine& m, const MicroOp& u, std::size_t pc) {
    m.gpr_[u.a] = m.load(ea(m, u), 8);
    return pc + 1;
  }
  static std::size_t h_store(Machine& m, const MicroOp& u, std::size_t pc) {
    m.store(ea(m, u), m.gpr_[u.b], 8);
    return pc + 1;
  }
  static std::size_t h_lea(Machine& m, const MicroOp& u, std::size_t pc) {
    m.gpr_[u.a] = ea(m, u);
    return pc + 1;
  }

#define FPMIX_H_INT(NAME, EXPR)                                                \
  static std::size_t NAME##_rr(Machine& m, const MicroOp& u, std::size_t pc) { \
    const std::uint64_t a = m.gpr_[u.a];                                       \
    const std::uint64_t b = m.gpr_[u.b];                                       \
    m.gpr_[u.a] = (EXPR);                                                      \
    return pc + 1;                                                             \
  }                                                                            \
  static std::size_t NAME##_ri(Machine& m, const MicroOp& u, std::size_t pc) { \
    const std::uint64_t a = m.gpr_[u.a];                                       \
    const std::uint64_t b = static_cast<std::uint64_t>(u.imm);                 \
    m.gpr_[u.a] = (EXPR);                                                      \
    return pc + 1;                                                             \
  }
  FPMIX_H_INT(h_add, a + b)
  FPMIX_H_INT(h_sub, a - b)
  FPMIX_H_INT(h_imul, a * b)
  FPMIX_H_INT(h_and, a & b)
  FPMIX_H_INT(h_or, a | b)
  FPMIX_H_INT(h_xor, a ^ b)
  FPMIX_H_INT(h_shl, a << (b & 63))
  FPMIX_H_INT(h_shr, a >> (b & 63))
  FPMIX_H_INT(h_sar, static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(a) >> (b & 63)))
#undef FPMIX_H_INT

  static std::size_t do_idiv(Machine& m, const MicroOp& u, std::uint64_t bv,
                             std::size_t pc) {
    const auto a = static_cast<std::int64_t>(m.gpr_[u.a]);
    const auto b = static_cast<std::int64_t>(bv);
    if (b == 0) m.trap("integer division by zero");
    if (a == INT64_MIN && b == -1) m.trap("integer division overflow");
    m.gpr_[u.a] = static_cast<std::uint64_t>(a / b);
    return pc + 1;
  }
  static std::size_t do_irem(Machine& m, const MicroOp& u, std::uint64_t bv,
                             std::size_t pc) {
    const auto a = static_cast<std::int64_t>(m.gpr_[u.a]);
    const auto b = static_cast<std::int64_t>(bv);
    if (b == 0) m.trap("integer remainder by zero");
    if (a == INT64_MIN && b == -1) m.trap("integer remainder overflow");
    m.gpr_[u.a] = static_cast<std::uint64_t>(a % b);
    return pc + 1;
  }
  static std::size_t h_idiv_rr(Machine& m, const MicroOp& u, std::size_t pc) {
    return do_idiv(m, u, m.gpr_[u.b], pc);
  }
  static std::size_t h_idiv_ri(Machine& m, const MicroOp& u, std::size_t pc) {
    return do_idiv(m, u, static_cast<std::uint64_t>(u.imm), pc);
  }
  static std::size_t h_irem_rr(Machine& m, const MicroOp& u, std::size_t pc) {
    return do_irem(m, u, m.gpr_[u.b], pc);
  }
  static std::size_t h_irem_ri(Machine& m, const MicroOp& u, std::size_t pc) {
    return do_irem(m, u, static_cast<std::uint64_t>(u.imm), pc);
  }

  static std::size_t set_cmp_flags(Machine& m, std::uint64_t a,
                                   std::uint64_t b, std::size_t pc) {
    m.flags_.eq = a == b;
    m.flags_.lt = static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
    m.flags_.ltu = a < b;
    return pc + 1;
  }
  static std::size_t h_cmp_rr(Machine& m, const MicroOp& u, std::size_t pc) {
    return set_cmp_flags(m, m.gpr_[u.a], m.gpr_[u.b], pc);
  }
  static std::size_t h_cmp_ri(Machine& m, const MicroOp& u, std::size_t pc) {
    return set_cmp_flags(m, m.gpr_[u.a], static_cast<std::uint64_t>(u.imm), pc);
  }
  static std::size_t set_test_flags(Machine& m, std::uint64_t v,
                                    std::size_t pc) {
    m.flags_.eq = v == 0;
    m.flags_.lt = static_cast<std::int64_t>(v) < 0;
    m.flags_.ltu = false;
    return pc + 1;
  }
  static std::size_t h_test_rr(Machine& m, const MicroOp& u, std::size_t pc) {
    return set_test_flags(m, m.gpr_[u.a] & m.gpr_[u.b], pc);
  }
  static std::size_t h_test_ri(Machine& m, const MicroOp& u, std::size_t pc) {
    return set_test_flags(m, m.gpr_[u.a] & static_cast<std::uint64_t>(u.imm), pc);
  }

  static std::size_t h_push(Machine& m, const MicroOp& u, std::size_t pc) {
    m.push64(m.gpr_[u.a]);
    return pc + 1;
  }
  static std::size_t h_pop(Machine& m, const MicroOp& u, std::size_t pc) {
    m.gpr_[u.a] = m.pop64();
    return pc + 1;
  }

  // --- XMM data movement ---------------------------------------------------

  static std::size_t h_movq_xr(Machine& m, const MicroOp& u, std::size_t pc) {
    m.xmm_[u.a].lo = m.gpr_[u.b];  // upper lane preserved (see step_switch)
    return pc + 1;
  }
  static std::size_t h_movq_rx(Machine& m, const MicroOp& u, std::size_t pc) {
    m.gpr_[u.a] = m.xmm_[u.b].lo;
    return pc + 1;
  }
  static std::size_t h_movsd_xx(Machine& m, const MicroOp& u, std::size_t pc) {
    m.xmm_[u.a].lo = m.xmm_[u.b].lo;
    return pc + 1;
  }
  static std::size_t h_movsd_xm(Machine& m, const MicroOp& u, std::size_t pc) {
    m.xmm_[u.a].lo = m.load(ea(m, u), 8);
    m.xmm_[u.a].hi = 0;
    return pc + 1;
  }
  static std::size_t h_movsd_mx(Machine& m, const MicroOp& u, std::size_t pc) {
    m.store(ea(m, u), m.xmm_[u.b].lo, 8);
    return pc + 1;
  }
  static std::size_t h_movss_xm(Machine& m, const MicroOp& u, std::size_t pc) {
    m.xmm_[u.a].lo = m.load(ea(m, u), 4);
    m.xmm_[u.a].hi = 0;
    return pc + 1;
  }
  static std::size_t h_movss_mx(Machine& m, const MicroOp& u, std::size_t pc) {
    m.store(ea(m, u), m.xmm_[u.b].lo & 0xFFFFFFFFu, 4);
    return pc + 1;
  }
  static std::size_t h_movapd_xx(Machine& m, const MicroOp& u, std::size_t pc) {
    m.xmm_[u.a] = m.xmm_[u.b];
    return pc + 1;
  }
  static std::size_t h_movapd_xm(Machine& m, const MicroOp& u, std::size_t pc) {
    const std::uint64_t a = ea(m, u);
    m.xmm_[u.a].lo = m.load(a, 8);
    m.xmm_[u.a].hi = m.load(a + 8, 8);
    return pc + 1;
  }
  static std::size_t h_movapd_mx(Machine& m, const MicroOp& u, std::size_t pc) {
    const std::uint64_t a = ea(m, u);
    m.store(a, m.xmm_[u.b].lo, 8);
    m.store(a + 8, m.xmm_[u.b].hi, 8);
    return pc + 1;
  }
  static std::size_t h_push_x(Machine& m, const MicroOp& u, std::size_t pc) {
    m.gpr_[arch::kSpReg] -= 16;
    m.store(m.gpr_[arch::kSpReg], m.xmm_[u.a].lo, 8);
    m.store(m.gpr_[arch::kSpReg] + 8, m.xmm_[u.a].hi, 8);
    return pc + 1;
  }
  static std::size_t h_pop_x(Machine& m, const MicroOp& u, std::size_t pc) {
    m.xmm_[u.a].lo = m.load(m.gpr_[arch::kSpReg], 8);
    m.xmm_[u.a].hi = m.load(m.gpr_[arch::kSpReg] + 8, 8);
    m.gpr_[arch::kSpReg] += 16;
    return pc + 1;
  }

  // --- scalar f64 ----------------------------------------------------------
  // Tag-check order matches read_f64_bits in step_switch: dst first, then
  // src (for XM, the dst check precedes the src bounds check).

#define FPMIX_H_SD(NAME, EXPR)                                                 \
  static std::size_t NAME##_xx(Machine& m, const MicroOp& u, std::size_t pc) { \
    const std::uint64_t abits = m.xmm_[u.a].lo;                                \
    check_tag(m, abits, pc);                                                   \
    const std::uint64_t bbits = m.xmm_[u.b].lo;                                \
    check_tag(m, bbits, pc);                                                   \
    const double a = f64_of(abits);                                            \
    const double b = f64_of(bbits);                                            \
    m.xmm_[u.a].lo = bits_of(double(EXPR));                                    \
    return pc + 1;                                                             \
  }                                                                            \
  static std::size_t NAME##_xm(Machine& m, const MicroOp& u, std::size_t pc) { \
    const std::uint64_t abits = m.xmm_[u.a].lo;                                \
    check_tag(m, abits, pc);                                                   \
    const std::uint64_t bbits = load_f64(m, ea(m, u), pc);                     \
    const double a = f64_of(abits);                                            \
    const double b = f64_of(bbits);                                            \
    m.xmm_[u.a].lo = bits_of(double(EXPR));                                    \
    return pc + 1;                                                             \
  }
  FPMIX_H_SD(h_addsd, a + b)
  FPMIX_H_SD(h_subsd, a - b)
  FPMIX_H_SD(h_mulsd, a * b)
  FPMIX_H_SD(h_divsd, a / b)
  FPMIX_H_SD(h_minsd, b < a ? b : a)
  FPMIX_H_SD(h_maxsd, a < b ? b : a)
#undef FPMIX_H_SD

  static std::size_t h_sqrtsd_xx(Machine& m, const MicroOp& u, std::size_t pc) {
    const std::uint64_t bbits = m.xmm_[u.b].lo;
    check_tag(m, bbits, pc);
    m.xmm_[u.a].lo = bits_of(std::sqrt(f64_of(bbits)));
    return pc + 1;
  }
  static std::size_t h_sqrtsd_xm(Machine& m, const MicroOp& u, std::size_t pc) {
    const std::uint64_t bbits = load_f64(m, ea(m, u), pc);
    m.xmm_[u.a].lo = bits_of(std::sqrt(f64_of(bbits)));
    return pc + 1;
  }

  static std::size_t set_fcmp_flags(Machine& m, bool eq, bool lt,
                                    std::size_t pc) {
    m.flags_.eq = eq;
    m.flags_.lt = m.flags_.ltu = lt;
    return pc + 1;
  }
  static std::size_t h_ucomisd_xx(Machine& m, const MicroOp& u, std::size_t pc) {
    const std::uint64_t abits = m.xmm_[u.a].lo;
    check_tag(m, abits, pc);
    const std::uint64_t bbits = m.xmm_[u.b].lo;
    check_tag(m, bbits, pc);
    const double a = f64_of(abits);
    const double b = f64_of(bbits);
    return set_fcmp_flags(m, a == b, a < b, pc);
  }
  static std::size_t h_ucomisd_xm(Machine& m, const MicroOp& u, std::size_t pc) {
    const std::uint64_t abits = m.xmm_[u.a].lo;
    check_tag(m, abits, pc);
    const std::uint64_t bbits = load_f64(m, ea(m, u), pc);
    const double a = f64_of(abits);
    const double b = f64_of(bbits);
    return set_fcmp_flags(m, a == b, a < b, pc);
  }

  static std::size_t h_cvtsd2ss_xx(Machine& m, const MicroOp& u, std::size_t pc) {
    const std::uint64_t bbits = m.xmm_[u.b].lo;
    check_tag(m, bbits, pc);
    m.xmm_[u.a].lo = bits_of(static_cast<float>(f64_of(bbits)));
    return pc + 1;
  }
  static std::size_t h_cvtsd2ss_xm(Machine& m, const MicroOp& u, std::size_t pc) {
    const std::uint64_t bbits = load_f64(m, ea(m, u), pc);
    m.xmm_[u.a].lo = bits_of(static_cast<float>(f64_of(bbits)));
    return pc + 1;
  }
  static std::size_t h_cvtss2sd_xx(Machine& m, const MicroOp& u, std::size_t pc) {
    const auto src = static_cast<std::uint32_t>(m.xmm_[u.b].lo);
    m.xmm_[u.a].lo = bits_of(static_cast<double>(f32_of(src)));
    return pc + 1;
  }
  static std::size_t h_cvtss2sd_xm(Machine& m, const MicroOp& u, std::size_t pc) {
    const auto src = static_cast<std::uint32_t>(m.load(ea(m, u), 4));
    m.xmm_[u.a].lo = bits_of(static_cast<double>(f32_of(src)));
    return pc + 1;
  }
  static std::size_t h_cvtsi2sd(Machine& m, const MicroOp& u, std::size_t pc) {
    m.xmm_[u.a].lo = bits_of(
        static_cast<double>(static_cast<std::int64_t>(m.gpr_[u.b])));
    return pc + 1;
  }
  static std::size_t h_cvttsd2si(Machine& m, const MicroOp& u, std::size_t pc) {
    const std::uint64_t bbits = m.xmm_[u.b].lo;
    check_tag(m, bbits, pc);
    const double v = f64_of(bbits);
    if (!(v > -9.2e18 && v < 9.2e18)) {
      m.trap("cvttsd2si operand out of int64 range");
    }
    m.gpr_[u.a] = static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
    return pc + 1;
  }

  // --- scalar f32 (no tag checks: 32-bit lanes cannot carry the sentinel) --

#define FPMIX_H_SS(NAME, EXPR)                                                 \
  static std::size_t NAME##_xx(Machine& m, const MicroOp& u, std::size_t pc) { \
    const float a = f32_of(static_cast<std::uint32_t>(m.xmm_[u.a].lo));        \
    const float b = f32_of(static_cast<std::uint32_t>(m.xmm_[u.b].lo));        \
    m.xmm_[u.a].lo = with_low32(m.xmm_[u.a].lo, bits_of(float(EXPR)));         \
    return pc + 1;                                                             \
  }                                                                            \
  static std::size_t NAME##_xm(Machine& m, const MicroOp& u, std::size_t pc) { \
    const float a = f32_of(static_cast<std::uint32_t>(m.xmm_[u.a].lo));        \
    const float b = f32_of(static_cast<std::uint32_t>(m.load(ea(m, u), 4)));   \
    m.xmm_[u.a].lo = with_low32(m.xmm_[u.a].lo, bits_of(float(EXPR)));         \
    return pc + 1;                                                             \
  }
  FPMIX_H_SS(h_addss, a + b)
  FPMIX_H_SS(h_subss, a - b)
  FPMIX_H_SS(h_mulss, a * b)
  FPMIX_H_SS(h_divss, a / b)
  FPMIX_H_SS(h_minss, b < a ? b : a)
  FPMIX_H_SS(h_maxss, a < b ? b : a)
#undef FPMIX_H_SS

  static std::size_t h_sqrtss_xx(Machine& m, const MicroOp& u, std::size_t pc) {
    const auto src = static_cast<std::uint32_t>(m.xmm_[u.b].lo);
    m.xmm_[u.a].lo =
        with_low32(m.xmm_[u.a].lo, bits_of(std::sqrt(f32_of(src))));
    return pc + 1;
  }
  static std::size_t h_sqrtss_xm(Machine& m, const MicroOp& u, std::size_t pc) {
    const auto src = static_cast<std::uint32_t>(m.load(ea(m, u), 4));
    m.xmm_[u.a].lo =
        with_low32(m.xmm_[u.a].lo, bits_of(std::sqrt(f32_of(src))));
    return pc + 1;
  }
  static std::size_t h_ucomiss_xx(Machine& m, const MicroOp& u, std::size_t pc) {
    const float a = f32_of(static_cast<std::uint32_t>(m.xmm_[u.a].lo));
    const float b = f32_of(static_cast<std::uint32_t>(m.xmm_[u.b].lo));
    return set_fcmp_flags(m, a == b, a < b, pc);
  }
  static std::size_t h_ucomiss_xm(Machine& m, const MicroOp& u, std::size_t pc) {
    const float a = f32_of(static_cast<std::uint32_t>(m.xmm_[u.a].lo));
    const float b = f32_of(static_cast<std::uint32_t>(m.load(ea(m, u), 4)));
    return set_fcmp_flags(m, a == b, a < b, pc);
  }
  static std::size_t h_cvtsi2ss(Machine& m, const MicroOp& u, std::size_t pc) {
    m.xmm_[u.a].lo = with_low32(
        m.xmm_[u.a].lo,
        bits_of(static_cast<float>(static_cast<std::int64_t>(m.gpr_[u.b]))));
    return pc + 1;
  }
  static std::size_t h_cvttss2si(Machine& m, const MicroOp& u, std::size_t pc) {
    const float v = f32_of(static_cast<std::uint32_t>(m.xmm_[u.b].lo));
    if (!(v > -9.2e18f && v < 9.2e18f)) {
      m.trap("cvttss2si operand out of int64 range");
    }
    m.gpr_[u.a] = static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
    return pc + 1;
  }

  // --- packed f64 ----------------------------------------------------------
  // Read order (dst lane0, dst lane1, src lane0, src lane1) matches binpd,
  // so the first trap to fire is the same on both engines.

#define FPMIX_H_PD(NAME, EXPR)                                                 \
  static std::size_t NAME##_xx(Machine& m, const MicroOp& u, std::size_t pc) { \
    const std::uint64_t a0b = m.xmm_[u.a].lo;                                  \
    check_tag(m, a0b, pc);                                                     \
    const std::uint64_t a1b = m.xmm_[u.a].hi;                                  \
    check_tag(m, a1b, pc);                                                     \
    const std::uint64_t b0b = m.xmm_[u.b].lo;                                  \
    check_tag(m, b0b, pc);                                                     \
    const std::uint64_t b1b = m.xmm_[u.b].hi;                                  \
    check_tag(m, b1b, pc);                                                     \
    const double a0 = f64_of(a0b), a1 = f64_of(a1b);                           \
    const double b0 = f64_of(b0b), b1 = f64_of(b1b);                           \
    m.xmm_[u.a].lo = bits_of(double((EXPR)(a0, b0)));                          \
    m.xmm_[u.a].hi = bits_of(double((EXPR)(a1, b1)));                          \
    return pc + 1;                                                             \
  }                                                                            \
  static std::size_t NAME##_xm(Machine& m, const MicroOp& u, std::size_t pc) { \
    const std::uint64_t a0b = m.xmm_[u.a].lo;                                  \
    check_tag(m, a0b, pc);                                                     \
    const std::uint64_t a1b = m.xmm_[u.a].hi;                                  \
    check_tag(m, a1b, pc);                                                     \
    const std::uint64_t addr = ea(m, u);                                       \
    const std::uint64_t b0b = load_f64(m, addr, pc);                           \
    const std::uint64_t b1b = load_f64(m, addr + 8, pc);                       \
    const double a0 = f64_of(a0b), a1 = f64_of(a1b);                           \
    const double b0 = f64_of(b0b), b1 = f64_of(b1b);                           \
    m.xmm_[u.a].lo = bits_of(double((EXPR)(a0, b0)));                          \
    m.xmm_[u.a].hi = bits_of(double((EXPR)(a1, b1)));                          \
    return pc + 1;                                                             \
  }
  FPMIX_H_PD(h_addpd, [](double a, double b) { return a + b; })
  FPMIX_H_PD(h_subpd, [](double a, double b) { return a - b; })
  FPMIX_H_PD(h_mulpd, [](double a, double b) { return a * b; })
  FPMIX_H_PD(h_divpd, [](double a, double b) { return a / b; })
#undef FPMIX_H_PD

  static std::size_t h_sqrtpd_xx(Machine& m, const MicroOp& u, std::size_t pc) {
    const std::uint64_t b0b = m.xmm_[u.b].lo;
    check_tag(m, b0b, pc);
    const std::uint64_t b1b = m.xmm_[u.b].hi;
    check_tag(m, b1b, pc);
    m.xmm_[u.a].lo = bits_of(std::sqrt(f64_of(b0b)));
    m.xmm_[u.a].hi = bits_of(std::sqrt(f64_of(b1b)));
    return pc + 1;
  }
  static std::size_t h_sqrtpd_xm(Machine& m, const MicroOp& u, std::size_t pc) {
    const std::uint64_t addr = ea(m, u);
    const std::uint64_t b0b = load_f64(m, addr, pc);
    const std::uint64_t b1b = load_f64(m, addr + 8, pc);
    m.xmm_[u.a].lo = bits_of(std::sqrt(f64_of(b0b)));
    m.xmm_[u.a].hi = bits_of(std::sqrt(f64_of(b1b)));
    return pc + 1;
  }

  // --- packed f32 ----------------------------------------------------------
  // Src halves are read before any dst write so aliased src==dst (e.g.
  // `addps x0, x0`) behaves like binps.

#define FPMIX_H_PS(NAME, EXPR)                                                 \
  static std::uint64_t NAME##_half(std::uint64_t d, std::uint64_t s) {         \
    const auto f = [](float a, float b) { return float(EXPR); };               \
    const std::uint64_t r0 =                                                   \
        bits_of(f(f32_of(static_cast<std::uint32_t>(d)),                       \
                  f32_of(static_cast<std::uint32_t>(s))));                     \
    const std::uint64_t r1 =                                                   \
        bits_of(f(f32_of(static_cast<std::uint32_t>(d >> 32)),                 \
                  f32_of(static_cast<std::uint32_t>(s >> 32))));               \
    return r0 | (r1 << 32);                                                    \
  }                                                                            \
  static std::size_t NAME##_xx(Machine& m, const MicroOp& u, std::size_t pc) { \
    const std::uint64_t slo = m.xmm_[u.b].lo;                                  \
    const std::uint64_t shi = m.xmm_[u.b].hi;                                  \
    m.xmm_[u.a].lo = NAME##_half(m.xmm_[u.a].lo, slo);                         \
    m.xmm_[u.a].hi = NAME##_half(m.xmm_[u.a].hi, shi);                         \
    return pc + 1;                                                             \
  }                                                                            \
  static std::size_t NAME##_xm(Machine& m, const MicroOp& u, std::size_t pc) { \
    const std::uint64_t addr = ea(m, u);                                       \
    const std::uint64_t slo = m.load(addr, 8);                                 \
    const std::uint64_t shi = m.load(addr + 8, 8);                             \
    m.xmm_[u.a].lo = NAME##_half(m.xmm_[u.a].lo, slo);                         \
    m.xmm_[u.a].hi = NAME##_half(m.xmm_[u.a].hi, shi);                         \
    return pc + 1;                                                             \
  }
  FPMIX_H_PS(h_addps, a + b)
  FPMIX_H_PS(h_subps, a - b)
  FPMIX_H_PS(h_mulps, a * b)
  FPMIX_H_PS(h_divps, a / b)
#undef FPMIX_H_PS

  static std::uint64_t sqrt_half(std::uint64_t s) {
    const std::uint64_t r0 =
        bits_of(std::sqrt(f32_of(static_cast<std::uint32_t>(s))));
    const std::uint64_t r1 =
        bits_of(std::sqrt(f32_of(static_cast<std::uint32_t>(s >> 32))));
    return r0 | (r1 << 32);
  }
  static std::size_t h_sqrtps_xx(Machine& m, const MicroOp& u, std::size_t pc) {
    const std::uint64_t slo = m.xmm_[u.b].lo;
    const std::uint64_t shi = m.xmm_[u.b].hi;
    m.xmm_[u.a].lo = sqrt_half(slo);
    m.xmm_[u.a].hi = sqrt_half(shi);
    return pc + 1;
  }
  static std::size_t h_sqrtps_xm(Machine& m, const MicroOp& u, std::size_t pc) {
    const std::uint64_t addr = ea(m, u);
    const std::uint64_t slo = m.load(addr, 8);
    const std::uint64_t shi = m.load(addr + 8, 8);
    m.xmm_[u.a].lo = sqrt_half(slo);
    m.xmm_[u.a].hi = sqrt_half(shi);
    return pc + 1;
  }

  // --- 128-bit bitwise (no tag checks, like bitop) -------------------------

#define FPMIX_H_BIT(NAME, EXPR)                                                \
  static std::size_t NAME##_xx(Machine& m, const MicroOp& u, std::size_t pc) { \
    const std::uint64_t slo = m.xmm_[u.b].lo;                                  \
    const std::uint64_t shi = m.xmm_[u.b].hi;                                  \
    m.xmm_[u.a].lo = (m.xmm_[u.a].lo EXPR slo);                                \
    m.xmm_[u.a].hi = (m.xmm_[u.a].hi EXPR shi);                                \
    return pc + 1;                                                             \
  }                                                                            \
  static std::size_t NAME##_xm(Machine& m, const MicroOp& u, std::size_t pc) { \
    const std::uint64_t addr = ea(m, u);                                       \
    const std::uint64_t slo = m.load(addr, 8);                                 \
    const std::uint64_t shi = m.load(addr + 8, 8);                             \
    m.xmm_[u.a].lo = (m.xmm_[u.a].lo EXPR slo);                                \
    m.xmm_[u.a].hi = (m.xmm_[u.a].hi EXPR shi);                                \
    return pc + 1;                                                             \
  }
  FPMIX_H_BIT(h_andpd, &)
  FPMIX_H_BIT(h_orpd, |)
  FPMIX_H_BIT(h_xorpd, ^)
#undef FPMIX_H_BIT

  // --- intrinsics / fallback -----------------------------------------------

  static std::size_t h_intrin(Machine& m, const MicroOp&, std::size_t pc) {
    m.exec_intrinsic(instr(m, pc));
    return pc + 1;
  }
  /// Executes the original decoded instruction through the switch oracle
  /// (which owns the pc update). Keeps lowering total without duplicating
  /// rare forms.
  static std::size_t h_fallback(Machine& m, const MicroOp&, std::size_t pc) {
    m.pc_ = pc;  // step_switch computes its successor from pc_
    m.step_switch(instr(m, pc));
    return m.stopped_ ? kStop : m.pc_;
  }
};

namespace {

consteval std::array<MicroExec::Handler,
                     static_cast<std::size_t>(MicroKind::kNumMicroKinds)>
make_micro_table() {
  std::array<MicroExec::Handler,
             static_cast<std::size_t>(MicroKind::kNumMicroKinds)>
      t{};
  const auto set = [&t](MicroKind k, MicroExec::Handler h) {
    t[static_cast<std::size_t>(k)] = h;
  };
  using K = MicroKind;
  using E = MicroExec;
  set(K::kNop, &E::h_nop);
  set(K::kHalt, &E::h_halt);
  set(K::kJmp, &E::h_jmp);
  set(K::kJe, &E::h_je);
  set(K::kJne, &E::h_jne);
  set(K::kJl, &E::h_jl);
  set(K::kJle, &E::h_jle);
  set(K::kJg, &E::h_jg);
  set(K::kJge, &E::h_jge);
  set(K::kJb, &E::h_jb);
  set(K::kJbe, &E::h_jbe);
  set(K::kJa, &E::h_ja);
  set(K::kJae, &E::h_jae);
  set(K::kCall, &E::h_call);
  set(K::kRet, &E::h_ret);
  set(K::kMovRR, &E::h_mov_rr);
  set(K::kMovRI, &E::h_mov_ri);
  set(K::kLoad, &E::h_load);
  set(K::kStore, &E::h_store);
  set(K::kLea, &E::h_lea);
  set(K::kAddRR, &E::h_add_rr);
  set(K::kAddRI, &E::h_add_ri);
  set(K::kSubRR, &E::h_sub_rr);
  set(K::kSubRI, &E::h_sub_ri);
  set(K::kImulRR, &E::h_imul_rr);
  set(K::kImulRI, &E::h_imul_ri);
  set(K::kIdivRR, &E::h_idiv_rr);
  set(K::kIdivRI, &E::h_idiv_ri);
  set(K::kIremRR, &E::h_irem_rr);
  set(K::kIremRI, &E::h_irem_ri);
  set(K::kAndRR, &E::h_and_rr);
  set(K::kAndRI, &E::h_and_ri);
  set(K::kOrRR, &E::h_or_rr);
  set(K::kOrRI, &E::h_or_ri);
  set(K::kXorRR, &E::h_xor_rr);
  set(K::kXorRI, &E::h_xor_ri);
  set(K::kShlRR, &E::h_shl_rr);
  set(K::kShlRI, &E::h_shl_ri);
  set(K::kShrRR, &E::h_shr_rr);
  set(K::kShrRI, &E::h_shr_ri);
  set(K::kSarRR, &E::h_sar_rr);
  set(K::kSarRI, &E::h_sar_ri);
  set(K::kCmpRR, &E::h_cmp_rr);
  set(K::kCmpRI, &E::h_cmp_ri);
  set(K::kTestRR, &E::h_test_rr);
  set(K::kTestRI, &E::h_test_ri);
  set(K::kPush, &E::h_push);
  set(K::kPop, &E::h_pop);
  set(K::kMovqXR, &E::h_movq_xr);
  set(K::kMovqRX, &E::h_movq_rx);
  set(K::kMovsdXX, &E::h_movsd_xx);
  set(K::kMovsdXM, &E::h_movsd_xm);
  set(K::kMovsdMX, &E::h_movsd_mx);
  set(K::kMovssXM, &E::h_movss_xm);
  set(K::kMovssMX, &E::h_movss_mx);
  set(K::kMovapdXX, &E::h_movapd_xx);
  set(K::kMovapdXM, &E::h_movapd_xm);
  set(K::kMovapdMX, &E::h_movapd_mx);
  set(K::kPushX, &E::h_push_x);
  set(K::kPopX, &E::h_pop_x);
  set(K::kAddsdXX, &E::h_addsd_xx);
  set(K::kAddsdXM, &E::h_addsd_xm);
  set(K::kSubsdXX, &E::h_subsd_xx);
  set(K::kSubsdXM, &E::h_subsd_xm);
  set(K::kMulsdXX, &E::h_mulsd_xx);
  set(K::kMulsdXM, &E::h_mulsd_xm);
  set(K::kDivsdXX, &E::h_divsd_xx);
  set(K::kDivsdXM, &E::h_divsd_xm);
  set(K::kMinsdXX, &E::h_minsd_xx);
  set(K::kMinsdXM, &E::h_minsd_xm);
  set(K::kMaxsdXX, &E::h_maxsd_xx);
  set(K::kMaxsdXM, &E::h_maxsd_xm);
  set(K::kSqrtsdXX, &E::h_sqrtsd_xx);
  set(K::kSqrtsdXM, &E::h_sqrtsd_xm);
  set(K::kUcomisdXX, &E::h_ucomisd_xx);
  set(K::kUcomisdXM, &E::h_ucomisd_xm);
  set(K::kCvtsd2ssXX, &E::h_cvtsd2ss_xx);
  set(K::kCvtsd2ssXM, &E::h_cvtsd2ss_xm);
  set(K::kCvtss2sdXX, &E::h_cvtss2sd_xx);
  set(K::kCvtss2sdXM, &E::h_cvtss2sd_xm);
  set(K::kCvtsi2sd, &E::h_cvtsi2sd);
  set(K::kCvttsd2si, &E::h_cvttsd2si);
  set(K::kAddssXX, &E::h_addss_xx);
  set(K::kAddssXM, &E::h_addss_xm);
  set(K::kSubssXX, &E::h_subss_xx);
  set(K::kSubssXM, &E::h_subss_xm);
  set(K::kMulssXX, &E::h_mulss_xx);
  set(K::kMulssXM, &E::h_mulss_xm);
  set(K::kDivssXX, &E::h_divss_xx);
  set(K::kDivssXM, &E::h_divss_xm);
  set(K::kMinssXX, &E::h_minss_xx);
  set(K::kMinssXM, &E::h_minss_xm);
  set(K::kMaxssXX, &E::h_maxss_xx);
  set(K::kMaxssXM, &E::h_maxss_xm);
  set(K::kSqrtssXX, &E::h_sqrtss_xx);
  set(K::kSqrtssXM, &E::h_sqrtss_xm);
  set(K::kUcomissXX, &E::h_ucomiss_xx);
  set(K::kUcomissXM, &E::h_ucomiss_xm);
  set(K::kCvtsi2ss, &E::h_cvtsi2ss);
  set(K::kCvttss2si, &E::h_cvttss2si);
  set(K::kAddpdXX, &E::h_addpd_xx);
  set(K::kAddpdXM, &E::h_addpd_xm);
  set(K::kSubpdXX, &E::h_subpd_xx);
  set(K::kSubpdXM, &E::h_subpd_xm);
  set(K::kMulpdXX, &E::h_mulpd_xx);
  set(K::kMulpdXM, &E::h_mulpd_xm);
  set(K::kDivpdXX, &E::h_divpd_xx);
  set(K::kDivpdXM, &E::h_divpd_xm);
  set(K::kSqrtpdXX, &E::h_sqrtpd_xx);
  set(K::kSqrtpdXM, &E::h_sqrtpd_xm);
  set(K::kAddpsXX, &E::h_addps_xx);
  set(K::kAddpsXM, &E::h_addps_xm);
  set(K::kSubpsXX, &E::h_subps_xx);
  set(K::kSubpsXM, &E::h_subps_xm);
  set(K::kMulpsXX, &E::h_mulps_xx);
  set(K::kMulpsXM, &E::h_mulps_xm);
  set(K::kDivpsXX, &E::h_divps_xx);
  set(K::kDivpsXM, &E::h_divps_xm);
  set(K::kSqrtpsXX, &E::h_sqrtps_xx);
  set(K::kSqrtpsXM, &E::h_sqrtps_xm);
  set(K::kAndpdXX, &E::h_andpd_xx);
  set(K::kAndpdXM, &E::h_andpd_xm);
  set(K::kOrpdXX, &E::h_orpd_xx);
  set(K::kOrpdXM, &E::h_orpd_xm);
  set(K::kXorpdXX, &E::h_xorpd_xx);
  set(K::kXorpdXM, &E::h_xorpd_xm);
  set(K::kIntrin, &E::h_intrin);
  set(K::kFallback, &E::h_fallback);
  return t;
}

constexpr auto kMicroTable = make_micro_table();
// Every MicroKind must have a handler; a null entry here means the enum and
// the table drifted apart.
static_assert([] {
  for (const auto h : kMicroTable) {
    if (h == nullptr) return false;
  }
  return true;
}());

}  // namespace

// ---------------------------------------------------------------------------
// JIT engine driver.
//
// Compiled code (src/vm/jit/) keeps guest state in the Machine's own arrays
// -- the context block pins pointers to them -- so everything outside the
// inner dispatch (chunked supervision, fault injection, profile readout)
// works unchanged. This block supplies the policy the mechanism-only jit/
// layer leaves out: the helper callbacks compiled code reaches through the
// context, the per-segment / per-image compilation caches, and the exit
// translation back into RunResult with byte-identical trap messages.
// ---------------------------------------------------------------------------

struct JitExec {
  /// Machine-side state hung off JitContext::run_state for one entry: traps
  /// cannot unwind through JIT frames, so helpers park the message here and
  /// return through the epilogue.
  struct RunState {
    Machine* m = nullptr;
    std::string trap_message;
    bool sentinel = false;
  };

  static Machine& machine(jit::JitContext* ctx) {
    return *static_cast<RunState*>(ctx->run_state)->m;
  }

  // VM flags are mirrored as bytes in the context while JIT code runs; the
  // interpreter handlers (generic-exec) read/write Machine::flags_, so the
  // two views are synced around every helper call.
  static void flags_to_machine(const jit::JitContext* ctx, Machine& m) {
    m.flags_.eq = ctx->flag_eq != 0;
    m.flags_.lt = ctx->flag_lt != 0;
    m.flags_.ltu = ctx->flag_ltu != 0;
  }
  static void flags_to_ctx(jit::JitContext* ctx, const Machine& m) {
    ctx->flag_eq = m.flags_.eq ? 1 : 0;
    ctx->flag_lt = m.flags_.lt ? 1 : 0;
    ctx->flag_ltu = m.flags_.ltu ? 1 : 0;
  }

  static void record_trap(jit::JitContext* ctx, std::uint64_t pc,
                          std::string message, bool sentinel) {
    auto* rs = static_cast<RunState*>(ctx->run_state);
    rs->trap_message = std::move(message);
    rs->sentinel = sentinel;
    ctx->exit_pc = pc;
    ctx->exit_status = jit::kExitTrap;
  }

  // --- helpers entered from compiled code (through the context block) ------

  /// Bounds-check failure in a JIT'd memory template: same message as
  /// Machine::load/store.
  static void help_mem_trap(jit::JitContext* ctx, std::uint64_t addr,
                            std::uint64_t bytes, std::uint64_t pc,
                            std::uint64_t is_store) {
    record_trap(
        ctx, pc,
        strformat(is_store != 0
                      ? "memory write of %u bytes at 0x%llx out of bounds"
                      : "memory read of %u bytes at 0x%llx out of bounds",
                  static_cast<unsigned>(bytes),
                  static_cast<unsigned long long>(addr)),
        false);
  }

  /// Inline tag compare matched the sentinel: compose the full diagnostic
  /// through the interpreter's own path so the message is byte-identical.
  static void help_tag_trap(jit::JitContext* ctx, std::uint64_t bits,
                            std::uint64_t pc) {
    Machine& m = machine(ctx);
    try {
      m.check_not_tagged(m.exec_->code()[pc], bits);
      // The stub only fires on a sentinel match, so check_not_tagged always
      // throws; reaching here means the compare constant drifted.
      record_trap(ctx, pc, "tag stub fired without a tagged value", false);
    } catch (const Machine::Trap& t) {
      record_trap(ctx, pc, t.message, t.sentinel);
    }
  }

  /// Generic-exec: runs exactly one instruction through the micro-op
  /// handler table (unspecialised forms, intrinsics, the off-end stub).
  /// Returns the native address to continue at, or null to exit.
  static const void* help_exec(jit::JitContext* ctx, std::uint64_t pc) {
    Machine& m = machine(ctx);
    const auto* img = static_cast<const jit::JitImage*>(ctx->image);
    const auto& uops = m.exec_->uops();
    if (pc >= uops.size()) {
      record_trap(ctx, pc,
                  strformat("execution ran past the end of the code"), false);
      return nullptr;
    }
    flags_to_machine(ctx, m);
    try {
      const MicroOp& u = uops[pc];
      const std::size_t next =
          kMicroTable[u.kind](m, u, static_cast<std::size_t>(pc));
      flags_to_ctx(ctx, m);
      if (next == MicroExec::kStop) {
        ctx->exit_status = jit::kExitHalt;
        return nullptr;
      }
      return img->native_addr(next);
    } catch (const Machine::Trap& t) {
      flags_to_ctx(ctx, m);
      record_trap(ctx, pc, t.message, t.sentinel);
      return nullptr;
    }
  }

  /// Return-address resolution for the JIT'd kRet template (the pop and the
  /// null-frame check were already done inline). Returns the native address
  /// of the return target, or null to exit (trap recorded).
  static const void* help_ret(jit::JitContext* ctx, std::uint64_t ra,
                              std::uint64_t pc) {
    Machine& m = machine(ctx);
    const std::size_t idx = m.exec_->index_of(ra);
    if (idx == ExecutableImage::kNoIndex) {
      record_trap(ctx, pc,
                  strformat("ret to 0x%llx, not an instruction boundary",
                            static_cast<unsigned long long>(ra)),
                  false);
      return nullptr;
    }
    return static_cast<const jit::JitImage*>(ctx->image)->native_addr(idx);
  }

  /// Fast path for kIntrin: intrinsics touch neither the VM flags nor the
  /// pc, so this skips the generic path's flag syncs and native-address
  /// lookup. Returns 1 to fall through, 0 on trap.
  static std::uint64_t help_intrin(jit::JitContext* ctx, std::uint64_t pc) {
    Machine& m = machine(ctx);
    try {
      m.exec_intrinsic(m.exec_->code()[pc]);
      return 1;
    } catch (const Machine::Trap& t) {
      record_trap(ctx, pc, t.message, t.sentinel);
      return 0;
    }
  }

  /// Arithmetic trap from a specialised template (idiv/irem, cvtt*): the
  /// interpreter's message is selected by id so the text stays
  /// byte-identical without the generic-exec detour.
  static void help_op_trap(jit::JitContext* ctx, std::uint64_t pc,
                           std::uint64_t msg_id) {
    static const char* const kMsgs[] = {
        "integer division by zero",
        "integer remainder by zero",
        "integer division overflow",
        "integer remainder overflow",
        "cvttsd2si operand out of int64 range",
        "cvttss2si operand out of int64 range",
    };
    FPMIX_CHECK(msg_id < sizeof(kMsgs) / sizeof(kMsgs[0]));
    record_trap(ctx, pc, kMsgs[msg_id], false);
  }

  // --- inlined-intrinsic call targets --------------------------------------
  //
  // The JIT's hot-intrinsic tier calls these double(double) entries directly
  // from compiled code (arguments/results move through host xmm0). They call
  // the exact functions exec_intrinsic calls, so results are bit-identical;
  // F32 twins share the double-precision entry because compiled code widens
  // the argument and narrows the result exactly like arg_f32/ret_f32 above.
  // Null entries (pow's two-argument evaluation order, output/print/MPI)
  // keep the out-of-line help_intrin path.

  static double in_sin(double x) { return std::sin(x); }
  static double in_cos(double x) { return std::cos(x); }
  static double in_tan(double x) { return std::tan(x); }
  static double in_exp(double x) { return std::exp(x); }
  static double in_log(double x) { return std::log(x); }
  static double in_floor(double x) { return std::floor(x); }
  static double in_ceil(double x) { return std::ceil(x); }
  static double in_fabs(double x) { return std::fabs(x); }

  static const void* const* intrin_fn_table() {
    static const auto table = [] {
      std::array<const void*, static_cast<std::size_t>(in::Id::kNumIntrinsics)>
          t{};
      const auto set = [&](in::Id id, double (*fn)(double)) {
        t[static_cast<std::size_t>(id)] = reinterpret_cast<const void*>(fn);
      };
      set(in::Id::kSin, &in_sin);
      set(in::Id::kCos, &in_cos);
      set(in::Id::kTan, &in_tan);
      set(in::Id::kExp, &in_exp);
      set(in::Id::kLog, &in_log);
      set(in::Id::kFloor, &in_floor);
      set(in::Id::kCeil, &in_ceil);
      set(in::Id::kFabs, &in_fabs);
      set(in::Id::kSinF32, &in_sin);
      set(in::Id::kCosF32, &in_cos);
      set(in::Id::kTanF32, &in_tan);
      set(in::Id::kExpF32, &in_exp);
      set(in::Id::kLogF32, &in_log);
      set(in::Id::kFloorF32, &in_floor);
      set(in::Id::kCeilF32, &in_ceil);
      set(in::Id::kFabsF32, &in_fabs);
      // The compiler inlines exactly the ids this table covers; a mismatch
      // would send an id to a null slot (crash) or silently skip the tier.
      for (std::size_t i = 0; i < t.size(); ++i) {
        FPMIX_CHECK(jit::intrinsic_inlinable(static_cast<std::uint16_t>(i)) ==
                    (t[i] != nullptr));
      }
      return t;
    }();
    return table.data();
  }

  // --- timed helper variants (Options::time_jit_helpers) -------------------
  //
  // Same helpers wrapped in wall-clock accounting, installed in the context
  // instead of the plain ones so the common path pays nothing. Only the
  // helpers reachable on a non-trapping hot path are wrapped; trap helpers
  // end the run anyway.

  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  static void add_helper_ns(jit::JitContext* ctx, std::uint64_t t0) {
    Machine& m = machine(ctx);
    m.jit_helper_ns_ += now_ns() - t0;
    m.jit_helper_calls_ += 1;
  }

  static const void* help_exec_timed(jit::JitContext* ctx, std::uint64_t pc) {
    const std::uint64_t t0 = now_ns();
    const void* r = help_exec(ctx, pc);
    add_helper_ns(ctx, t0);
    return r;
  }
  static const void* help_ret_timed(jit::JitContext* ctx, std::uint64_t ra,
                                    std::uint64_t pc) {
    const std::uint64_t t0 = now_ns();
    const void* r = help_ret(ctx, ra, pc);
    add_helper_ns(ctx, t0);
    return r;
  }
  static std::uint64_t help_intrin_timed(jit::JitContext* ctx,
                                         std::uint64_t pc) {
    const std::uint64_t t0 = now_ns();
    const std::uint64_t r = help_intrin(ctx, pc);
    add_helper_ns(ctx, t0);
    return r;
  }

  // --- compilation caches --------------------------------------------------

  /// Compiles (or fetches) a segment's position-independent blob. Cached on
  /// the CodeSegment, so every image that splices it shares the code.
  static std::shared_ptr<const jit::SegmentBlob> blob_for(
      const CodeSegment& seg, bool profile) {
    jit::BlobCache& cache = seg.jit_cache();
    std::lock_guard<std::mutex> lock(cache.mu);
    auto& slot = cache.variant[profile ? 1 : 0];
    if (slot == nullptr) {
      slot = jit::compile_stream(seg.uops(),
                                 {/*local=*/true, /*profile=*/profile});
    }
    return slot;
  }

  /// Links (or fetches) the executable translation of a whole image. May
  /// return null when executable memory is unavailable at link time.
  static std::shared_ptr<const jit::JitImage> image_for(
      const ExecutableImage& exec, bool profile) {
    jit::ImageJitCache& cache = exec.jit_cache();
    std::lock_guard<std::mutex> lock(cache.mu);
    auto& slot = cache.variant[profile ? 1 : 0];
    if (slot != nullptr) return slot;

    std::vector<jit::LinkSegment> links;
    const auto& segs = exec.segments();
    if (!segs.empty()) {
      // Spliced image: link the per-segment blobs at their splice positions.
      // A segment's guest byte base is the rebased address of its first
      // instruction (segments store local addresses starting at 0).
      const auto& first = exec.segment_first_index();
      links.reserve(segs.size());
      for (std::size_t i = 0; i < segs.size(); ++i) {
        const CodeSegment& s = *segs[i];
        const std::uint64_t byte_base =
            s.instruction_count() == 0 ? 0 : exec.code()[first[i]].addr;
        links.push_back({blob_for(s, profile), first[i], byte_base});
      }
    } else {
      // Built from scratch (no segments): one monolithic blob in global
      // form, cached on the image itself.
      links.push_back({jit::compile_stream(
                           exec.uops(), {/*local=*/false, /*profile=*/profile}),
                       /*first_index=*/0, /*byte_base=*/0});
    }
    slot = jit::JitImage::link(links, exec.uops().size());
    return slot;
  }

  // --- the run loop glue ---------------------------------------------------

  /// Near-budget tail: a block-entry guard found the budget boundary inside
  /// its block and exited before running any of it. Interpret one
  /// instruction at a time (FPMIX_DISPATCH order: budget check, count,
  /// retire, handler) up to the exact boundary -- the interpreter is the
  /// semantic oracle, so the stop is bit-identical, including a stop
  /// between a fused compare/branch (the handler materialises the flags)
  /// and a fault applied at an exact retired count. Bounded work: strictly
  /// fewer instructions remain than the block would have retired.
  static std::uint32_t interp_near_tail(jit::JitContext* ctx, Machine& m) {
    const auto& uops = m.exec_->uops();
    std::size_t pc = static_cast<std::size_t>(ctx->exit_pc);
    flags_to_machine(ctx, m);
    while (true) {
      if (ctx->retired >= ctx->max_instructions) {
        ctx->exit_pc = pc;
        flags_to_ctx(ctx, m);
        return jit::kExitBudget;
      }
      if (pc >= uops.size()) {
        flags_to_ctx(ctx, m);
        record_trap(ctx, pc,
                    strformat("execution ran past the end of the code"),
                    false);
        return jit::kExitTrap;
      }
      if (ctx->counts != nullptr) ++ctx->counts[pc];
      ++ctx->retired;
      try {
        const MicroOp& u = uops[pc];
        const std::size_t next =
            kMicroTable[u.kind](m, u, pc);
        if (next == MicroExec::kStop) {
          flags_to_ctx(ctx, m);
          return jit::kExitHalt;
        }
        pc = next;
      } catch (const Machine::Trap& t) {
        flags_to_ctx(ctx, m);
        record_trap(ctx, pc, t.message, t.sentinel);
        return jit::kExitTrap;
      }
    }
  }

  static RunResult run(Machine& m) {
    const jit::Runtime* rt = jit::runtime();
    FPMIX_CHECK(rt != nullptr);  // run_engine verified jit_supported()
    const auto img = image_for(*m.exec_, m.options_.profile);
    if (img == nullptr) {
      // Executable memory vanished after the capability probe (hardened
      // kernel tightening mid-flight); degrade for this run.
      return m.options_.profile ? m.run_micro<true>() : m.run_micro<false>();
    }

    RunState rs;
    rs.m = &m;
    jit::JitContext ctx{};
    ctx.gpr = m.gpr_;
    ctx.mem_base = m.mem_base_;
    ctx.mem_size = m.mem_size_;
    ctx.xmm = m.xmm_;
    ctx.retired = m.retired_;
    ctx.max_instructions = m.options_.max_instructions;
    ctx.counts = m.options_.profile ? m.counts_.data() : nullptr;
    ctx.tag_cmp = m.options_.tag_trap
                      ? static_cast<std::uint64_t>(arch::kReplacedTag)
                      : jit::kTagCmpDisabled;
    ctx.exit_status = jit::kExitHalt;
    flags_to_ctx(&ctx, m);
    ctx.epilogue = rt->epilogue;
    ctx.help_mem_trap = reinterpret_cast<const void*>(&help_mem_trap);
    ctx.help_tag_trap = reinterpret_cast<const void*>(&help_tag_trap);
    if (m.options_.time_jit_helpers) {
      ctx.help_exec = reinterpret_cast<const void*>(&help_exec_timed);
      ctx.help_ret = reinterpret_cast<const void*>(&help_ret_timed);
      ctx.help_intrin = reinterpret_cast<const void*>(&help_intrin_timed);
    } else {
      ctx.help_exec = reinterpret_cast<const void*>(&help_exec);
      ctx.help_ret = reinterpret_cast<const void*>(&help_ret);
      ctx.help_intrin = reinterpret_cast<const void*>(&help_intrin);
    }
    ctx.help_op_trap = reinterpret_cast<const void*>(&help_op_trap);
    // Withholding the table forces every intrinsic through help_intrin, so
    // the Amdahl split sees intrinsic time too (the inline tier would
    // otherwise bypass the timed wrapper).
    ctx.intrin_fn =
        m.options_.time_jit_helpers ? nullptr : intrin_fn_table();
    ctx.mem_limit8 = m.mem_size_ >= 8 ? m.mem_size_ - 7 : 0;
    ctx.mem_limit4 = m.mem_size_ >= 4 ? m.mem_size_ - 3 : 0;
    ctx.run_state = &rs;
    ctx.image = img.get();

    std::uint32_t status = rt->entry(&ctx, img->native_addr(m.pc_));
    if (status == jit::kExitBudgetNear) status = interp_near_tail(&ctx, m);

    RunResult result;
    m.retired_ = ctx.retired;
    result.instructions_retired = ctx.retired;
    flags_to_machine(&ctx, m);
    switch (status) {
      case jit::kExitHalt:
        // Like the interpreters, a clean stop leaves pc_ untouched.
        m.stopped_ = true;
        result.status = RunResult::Status::kHalted;
        break;
      case jit::kExitBudget:
        m.pc_ = static_cast<std::size_t>(ctx.exit_pc);  // the unexecuted pc
        result.status = RunResult::Status::kOutOfBudget;
        result.trap_message = "instruction budget exhausted";
        break;
      default:  // jit::kExitTrap
        m.pc_ = static_cast<std::size_t>(ctx.exit_pc);
        result.status = RunResult::Status::kTrapped;
        result.trap_message =
            rs.trap_message + m.trap_context(m.pc_, ctx.retired);
        result.sentinel_escape = rs.sentinel;
        break;
    }
    return result;
  }
};

RunResult Machine::run_jit() { return JitExec::run(*this); }

// Hot fall-through pairs fused into one token: the first op must be a plain
// fall-through (never a branch), the second may be anything. A fused block
// is the literal concatenation of the two per-op sequences with the middle
// indirect dispatch removed, so retired counts, profile counts, the budget
// check and trap pcs are identical to the unfused path. Pairs chosen from
// executed-pair frequencies on the NAS kernel suite.
#define FPMIX_FUSED_PAIRS(X) \
  X(kLoad, kMovRI, h_load, h_mov_ri) \
  X(kLoad, kMovsdXM, h_load, h_movsd_xm) \
  X(kLoad, kLoad, h_load, h_load) \
  X(kLoad, kAddRR, h_load, h_add_rr) \
  X(kLoad, kAddRI, h_load, h_add_ri) \
  X(kMovsdXM, kMulsdXX, h_movsd_xm, h_mulsd_xx) \
  X(kMovsdXM, kMovsdXM, h_movsd_xm, h_movsd_xm) \
  X(kMovsdXM, kLoad, h_movsd_xm, h_load) \
  X(kMovsdXM, kSubsdXX, h_movsd_xm, h_subsd_xx) \
  X(kMovsdXM, kMovsdMX, h_movsd_xm, h_movsd_mx) \
  X(kMovsdXM, kAddsdXX, h_movsd_xm, h_addsd_xx) \
  X(kMovsdMX, kLoad, h_movsd_mx, h_load) \
  X(kMovsdMX, kMovsdXM, h_movsd_mx, h_movsd_xm) \
  X(kMovRI, kAddRR, h_mov_ri, h_add_rr) \
  X(kMovRI, kImulRR, h_mov_ri, h_imul_rr) \
  X(kMovRI, kCmpRR, h_mov_ri, h_cmp_rr) \
  X(kAddRR, kMovsdXM, h_add_rr, h_movsd_xm) \
  X(kAddRR, kLoad, h_add_rr, h_load) \
  X(kAddRI, kStore, h_add_ri, h_store) \
  X(kImulRR, kLoad, h_imul_rr, h_load) \
  X(kStore, kJmp, h_store, h_jmp) \
  X(kCmpRR, kJge, h_cmp_rr, h_jge) \
  X(kCmpRR, kJl, h_cmp_rr, h_jl) \
  X(kCmpRR, kJne, h_cmp_rr, h_jne) \
  X(kCmpRI, kJge, h_cmp_ri, h_jge) \
  X(kCmpRI, kJl, h_cmp_ri, h_jl) \
  X(kCmpRI, kJne, h_cmp_ri, h_jne) \
  X(kAddsdXX, kMovsdMX, h_addsd_xx, h_movsd_mx) \
  X(kSubsdXX, kMovsdMX, h_subsd_xx, h_movsd_mx) \
  X(kMulsdXX, kAddsdXX, h_mulsd_xx, h_addsd_xx) \
  X(kMulsdXX, kSubsdXX, h_mulsd_xx, h_subsd_xx)

template <bool Profile>
RunResult Machine::run_micro() {
  const MicroOp* const uops = exec_->uops().data();
  const std::uint64_t max_instructions = options_.max_instructions;
  // The pc and the retired count live in locals: handler code is opaque to
  // the register allocator only at the memory level, so member state would
  // otherwise be spilled and reloaded on every instruction.
  std::size_t pc = pc_;
  std::uint64_t retired = retired_;
  std::uint64_t* const counts = Profile ? counts_.data() : nullptr;
  RunResult result;

#if defined(__GNUC__) || defined(__clang__)
  // Token-threaded core. Each op body ends with its own dispatch (computed
  // goto), so the branch predictor sees one indirect jump per opcode site
  // instead of a single shared dispatch point, and the handler functions --
  // direct calls here, unlike the function-pointer table below -- inline
  // into the label blocks. kMicroTable's static_assert guarantees the set
  // of labels is total over MicroKind.
  const void* labels[static_cast<std::size_t>(MicroKind::kNumMicroKinds)] = {};
#define FPMIX_LABEL(KIND) \
  labels[static_cast<std::size_t>(MicroKind::KIND)] = &&L_##KIND
  FPMIX_LABEL(kNop);
  FPMIX_LABEL(kHalt);
  FPMIX_LABEL(kJmp);
  FPMIX_LABEL(kJe);
  FPMIX_LABEL(kJne);
  FPMIX_LABEL(kJl);
  FPMIX_LABEL(kJle);
  FPMIX_LABEL(kJg);
  FPMIX_LABEL(kJge);
  FPMIX_LABEL(kJb);
  FPMIX_LABEL(kJbe);
  FPMIX_LABEL(kJa);
  FPMIX_LABEL(kJae);
  FPMIX_LABEL(kCall);
  FPMIX_LABEL(kRet);
  FPMIX_LABEL(kMovRR);
  FPMIX_LABEL(kMovRI);
  FPMIX_LABEL(kLoad);
  FPMIX_LABEL(kStore);
  FPMIX_LABEL(kLea);
  FPMIX_LABEL(kAddRR);
  FPMIX_LABEL(kAddRI);
  FPMIX_LABEL(kSubRR);
  FPMIX_LABEL(kSubRI);
  FPMIX_LABEL(kImulRR);
  FPMIX_LABEL(kImulRI);
  FPMIX_LABEL(kIdivRR);
  FPMIX_LABEL(kIdivRI);
  FPMIX_LABEL(kIremRR);
  FPMIX_LABEL(kIremRI);
  FPMIX_LABEL(kAndRR);
  FPMIX_LABEL(kAndRI);
  FPMIX_LABEL(kOrRR);
  FPMIX_LABEL(kOrRI);
  FPMIX_LABEL(kXorRR);
  FPMIX_LABEL(kXorRI);
  FPMIX_LABEL(kShlRR);
  FPMIX_LABEL(kShlRI);
  FPMIX_LABEL(kShrRR);
  FPMIX_LABEL(kShrRI);
  FPMIX_LABEL(kSarRR);
  FPMIX_LABEL(kSarRI);
  FPMIX_LABEL(kCmpRR);
  FPMIX_LABEL(kCmpRI);
  FPMIX_LABEL(kTestRR);
  FPMIX_LABEL(kTestRI);
  FPMIX_LABEL(kPush);
  FPMIX_LABEL(kPop);
  FPMIX_LABEL(kMovqXR);
  FPMIX_LABEL(kMovqRX);
  FPMIX_LABEL(kMovsdXX);
  FPMIX_LABEL(kMovsdXM);
  FPMIX_LABEL(kMovsdMX);
  FPMIX_LABEL(kMovssXM);
  FPMIX_LABEL(kMovssMX);
  FPMIX_LABEL(kMovapdXX);
  FPMIX_LABEL(kMovapdXM);
  FPMIX_LABEL(kMovapdMX);
  FPMIX_LABEL(kPushX);
  FPMIX_LABEL(kPopX);
  FPMIX_LABEL(kAddsdXX);
  FPMIX_LABEL(kAddsdXM);
  FPMIX_LABEL(kSubsdXX);
  FPMIX_LABEL(kSubsdXM);
  FPMIX_LABEL(kMulsdXX);
  FPMIX_LABEL(kMulsdXM);
  FPMIX_LABEL(kDivsdXX);
  FPMIX_LABEL(kDivsdXM);
  FPMIX_LABEL(kMinsdXX);
  FPMIX_LABEL(kMinsdXM);
  FPMIX_LABEL(kMaxsdXX);
  FPMIX_LABEL(kMaxsdXM);
  FPMIX_LABEL(kSqrtsdXX);
  FPMIX_LABEL(kSqrtsdXM);
  FPMIX_LABEL(kUcomisdXX);
  FPMIX_LABEL(kUcomisdXM);
  FPMIX_LABEL(kCvtsd2ssXX);
  FPMIX_LABEL(kCvtsd2ssXM);
  FPMIX_LABEL(kCvtss2sdXX);
  FPMIX_LABEL(kCvtss2sdXM);
  FPMIX_LABEL(kCvtsi2sd);
  FPMIX_LABEL(kCvttsd2si);
  FPMIX_LABEL(kAddssXX);
  FPMIX_LABEL(kAddssXM);
  FPMIX_LABEL(kSubssXX);
  FPMIX_LABEL(kSubssXM);
  FPMIX_LABEL(kMulssXX);
  FPMIX_LABEL(kMulssXM);
  FPMIX_LABEL(kDivssXX);
  FPMIX_LABEL(kDivssXM);
  FPMIX_LABEL(kMinssXX);
  FPMIX_LABEL(kMinssXM);
  FPMIX_LABEL(kMaxssXX);
  FPMIX_LABEL(kMaxssXM);
  FPMIX_LABEL(kSqrtssXX);
  FPMIX_LABEL(kSqrtssXM);
  FPMIX_LABEL(kUcomissXX);
  FPMIX_LABEL(kUcomissXM);
  FPMIX_LABEL(kCvtsi2ss);
  FPMIX_LABEL(kCvttss2si);
  FPMIX_LABEL(kAddpdXX);
  FPMIX_LABEL(kAddpdXM);
  FPMIX_LABEL(kSubpdXX);
  FPMIX_LABEL(kSubpdXM);
  FPMIX_LABEL(kMulpdXX);
  FPMIX_LABEL(kMulpdXM);
  FPMIX_LABEL(kDivpdXX);
  FPMIX_LABEL(kDivpdXM);
  FPMIX_LABEL(kSqrtpdXX);
  FPMIX_LABEL(kSqrtpdXM);
  FPMIX_LABEL(kAddpsXX);
  FPMIX_LABEL(kAddpsXM);
  FPMIX_LABEL(kSubpsXX);
  FPMIX_LABEL(kSubpsXM);
  FPMIX_LABEL(kMulpsXX);
  FPMIX_LABEL(kMulpsXM);
  FPMIX_LABEL(kDivpsXX);
  FPMIX_LABEL(kDivpsXM);
  FPMIX_LABEL(kSqrtpsXX);
  FPMIX_LABEL(kSqrtpsXM);
  FPMIX_LABEL(kAndpdXX);
  FPMIX_LABEL(kAndpdXM);
  FPMIX_LABEL(kOrpdXX);
  FPMIX_LABEL(kOrpdXM);
  FPMIX_LABEL(kXorpdXX);
  FPMIX_LABEL(kXorpdXM);
  FPMIX_LABEL(kIntrin);
  FPMIX_LABEL(kFallback);
#undef FPMIX_LABEL

  // Resolve each op's token to its label address once per run; dispatch then
  // needs a single load indexed by pc (issued in parallel with the uop load)
  // instead of uop.kind followed by a table lookup -- two dependent loads on
  // the critical path.
  const std::size_t code_len = exec_->uops().size();
  std::vector<const void*> threaded(code_len);
  for (std::size_t i = 0; i < code_len; ++i) {
    const void* t = labels[uops[i].kind];
#define FPMIX_RESOLVE(KA, KB, HA, HB)                                   \
    if (uops[i].kind == static_cast<std::uint16_t>(MicroKind::KA) &&    \
        i + 1 < code_len &&                                             \
        uops[i + 1].kind == static_cast<std::uint16_t>(MicroKind::KB))  \
      t = &&L2_##KA##_##KB;
    FPMIX_FUSED_PAIRS(FPMIX_RESOLVE)
#undef FPMIX_RESOLVE
    threaded[i] = t;
  }
  const void* const* const tokens = threaded.data();

#define FPMIX_DISPATCH()                                       \
  do {                                                         \
    if (retired >= max_instructions) [[unlikely]] goto budget; \
    if constexpr (Profile) ++counts[pc];                       \
    ++retired;                                                 \
    u = &uops[pc];                                             \
    goto* tokens[pc];                                          \
  } while (0)
  // Ops that can stop the machine (halt, ret-to-null, a fallback that
  // executed one of those) check for the sentinel; the rest skip it.
#define FPMIX_OP(KIND, HANDLER)             \
  L_##KIND:                                 \
  pc = MicroExec::HANDLER(*this, *u, pc);   \
  FPMIX_DISPATCH();
#define FPMIX_OP_STOP(KIND, HANDLER)        \
  L_##KIND:                                 \
  pc = MicroExec::HANDLER(*this, *u, pc);   \
  if (pc == MicroExec::kStop) goto halted;  \
  FPMIX_DISPATCH();

  const MicroOp* u = nullptr;
  try {
    FPMIX_DISPATCH();

    FPMIX_OP(kNop, h_nop)
    FPMIX_OP_STOP(kHalt, h_halt)
    FPMIX_OP(kJmp, h_jmp)
    FPMIX_OP(kJe, h_je)
    FPMIX_OP(kJne, h_jne)
    FPMIX_OP(kJl, h_jl)
    FPMIX_OP(kJle, h_jle)
    FPMIX_OP(kJg, h_jg)
    FPMIX_OP(kJge, h_jge)
    FPMIX_OP(kJb, h_jb)
    FPMIX_OP(kJbe, h_jbe)
    FPMIX_OP(kJa, h_ja)
    FPMIX_OP(kJae, h_jae)
    FPMIX_OP(kCall, h_call)
    FPMIX_OP_STOP(kRet, h_ret)
    FPMIX_OP(kMovRR, h_mov_rr)
    FPMIX_OP(kMovRI, h_mov_ri)
    FPMIX_OP(kLoad, h_load)
    FPMIX_OP(kStore, h_store)
    FPMIX_OP(kLea, h_lea)
    FPMIX_OP(kAddRR, h_add_rr)
    FPMIX_OP(kAddRI, h_add_ri)
    FPMIX_OP(kSubRR, h_sub_rr)
    FPMIX_OP(kSubRI, h_sub_ri)
    FPMIX_OP(kImulRR, h_imul_rr)
    FPMIX_OP(kImulRI, h_imul_ri)
    FPMIX_OP(kIdivRR, h_idiv_rr)
    FPMIX_OP(kIdivRI, h_idiv_ri)
    FPMIX_OP(kIremRR, h_irem_rr)
    FPMIX_OP(kIremRI, h_irem_ri)
    FPMIX_OP(kAndRR, h_and_rr)
    FPMIX_OP(kAndRI, h_and_ri)
    FPMIX_OP(kOrRR, h_or_rr)
    FPMIX_OP(kOrRI, h_or_ri)
    FPMIX_OP(kXorRR, h_xor_rr)
    FPMIX_OP(kXorRI, h_xor_ri)
    FPMIX_OP(kShlRR, h_shl_rr)
    FPMIX_OP(kShlRI, h_shl_ri)
    FPMIX_OP(kShrRR, h_shr_rr)
    FPMIX_OP(kShrRI, h_shr_ri)
    FPMIX_OP(kSarRR, h_sar_rr)
    FPMIX_OP(kSarRI, h_sar_ri)
    FPMIX_OP(kCmpRR, h_cmp_rr)
    FPMIX_OP(kCmpRI, h_cmp_ri)
    FPMIX_OP(kTestRR, h_test_rr)
    FPMIX_OP(kTestRI, h_test_ri)
    FPMIX_OP(kPush, h_push)
    FPMIX_OP(kPop, h_pop)
    FPMIX_OP(kMovqXR, h_movq_xr)
    FPMIX_OP(kMovqRX, h_movq_rx)
    FPMIX_OP(kMovsdXX, h_movsd_xx)
    FPMIX_OP(kMovsdXM, h_movsd_xm)
    FPMIX_OP(kMovsdMX, h_movsd_mx)
    FPMIX_OP(kMovssXM, h_movss_xm)
    FPMIX_OP(kMovssMX, h_movss_mx)
    FPMIX_OP(kMovapdXX, h_movapd_xx)
    FPMIX_OP(kMovapdXM, h_movapd_xm)
    FPMIX_OP(kMovapdMX, h_movapd_mx)
    FPMIX_OP(kPushX, h_push_x)
    FPMIX_OP(kPopX, h_pop_x)
    FPMIX_OP(kAddsdXX, h_addsd_xx)
    FPMIX_OP(kAddsdXM, h_addsd_xm)
    FPMIX_OP(kSubsdXX, h_subsd_xx)
    FPMIX_OP(kSubsdXM, h_subsd_xm)
    FPMIX_OP(kMulsdXX, h_mulsd_xx)
    FPMIX_OP(kMulsdXM, h_mulsd_xm)
    FPMIX_OP(kDivsdXX, h_divsd_xx)
    FPMIX_OP(kDivsdXM, h_divsd_xm)
    FPMIX_OP(kMinsdXX, h_minsd_xx)
    FPMIX_OP(kMinsdXM, h_minsd_xm)
    FPMIX_OP(kMaxsdXX, h_maxsd_xx)
    FPMIX_OP(kMaxsdXM, h_maxsd_xm)
    FPMIX_OP(kSqrtsdXX, h_sqrtsd_xx)
    FPMIX_OP(kSqrtsdXM, h_sqrtsd_xm)
    FPMIX_OP(kUcomisdXX, h_ucomisd_xx)
    FPMIX_OP(kUcomisdXM, h_ucomisd_xm)
    FPMIX_OP(kCvtsd2ssXX, h_cvtsd2ss_xx)
    FPMIX_OP(kCvtsd2ssXM, h_cvtsd2ss_xm)
    FPMIX_OP(kCvtss2sdXX, h_cvtss2sd_xx)
    FPMIX_OP(kCvtss2sdXM, h_cvtss2sd_xm)
    FPMIX_OP(kCvtsi2sd, h_cvtsi2sd)
    FPMIX_OP(kCvttsd2si, h_cvttsd2si)
    FPMIX_OP(kAddssXX, h_addss_xx)
    FPMIX_OP(kAddssXM, h_addss_xm)
    FPMIX_OP(kSubssXX, h_subss_xx)
    FPMIX_OP(kSubssXM, h_subss_xm)
    FPMIX_OP(kMulssXX, h_mulss_xx)
    FPMIX_OP(kMulssXM, h_mulss_xm)
    FPMIX_OP(kDivssXX, h_divss_xx)
    FPMIX_OP(kDivssXM, h_divss_xm)
    FPMIX_OP(kMinssXX, h_minss_xx)
    FPMIX_OP(kMinssXM, h_minss_xm)
    FPMIX_OP(kMaxssXX, h_maxss_xx)
    FPMIX_OP(kMaxssXM, h_maxss_xm)
    FPMIX_OP(kSqrtssXX, h_sqrtss_xx)
    FPMIX_OP(kSqrtssXM, h_sqrtss_xm)
    FPMIX_OP(kUcomissXX, h_ucomiss_xx)
    FPMIX_OP(kUcomissXM, h_ucomiss_xm)
    FPMIX_OP(kCvtsi2ss, h_cvtsi2ss)
    FPMIX_OP(kCvttss2si, h_cvttss2si)
    FPMIX_OP(kAddpdXX, h_addpd_xx)
    FPMIX_OP(kAddpdXM, h_addpd_xm)
    FPMIX_OP(kSubpdXX, h_subpd_xx)
    FPMIX_OP(kSubpdXM, h_subpd_xm)
    FPMIX_OP(kMulpdXX, h_mulpd_xx)
    FPMIX_OP(kMulpdXM, h_mulpd_xm)
    FPMIX_OP(kDivpdXX, h_divpd_xx)
    FPMIX_OP(kDivpdXM, h_divpd_xm)
    FPMIX_OP(kSqrtpdXX, h_sqrtpd_xx)
    FPMIX_OP(kSqrtpdXM, h_sqrtpd_xm)
    FPMIX_OP(kAddpsXX, h_addps_xx)
    FPMIX_OP(kAddpsXM, h_addps_xm)
    FPMIX_OP(kSubpsXX, h_subps_xx)
    FPMIX_OP(kSubpsXM, h_subps_xm)
    FPMIX_OP(kMulpsXX, h_mulps_xx)
    FPMIX_OP(kMulpsXM, h_mulps_xm)
    FPMIX_OP(kDivpsXX, h_divps_xx)
    FPMIX_OP(kDivpsXM, h_divps_xm)
    FPMIX_OP(kSqrtpsXX, h_sqrtps_xx)
    FPMIX_OP(kSqrtpsXM, h_sqrtps_xm)
    FPMIX_OP(kAndpdXX, h_andpd_xx)
    FPMIX_OP(kAndpdXM, h_andpd_xm)
    FPMIX_OP(kOrpdXX, h_orpd_xx)
    FPMIX_OP(kOrpdXM, h_orpd_xm)
    FPMIX_OP(kXorpdXX, h_xorpd_xx)
    FPMIX_OP(kXorpdXM, h_xorpd_xm)
    FPMIX_OP(kIntrin, h_intrin)
    FPMIX_OP_STOP(kFallback, h_fallback)

#define FPMIX_OP2(KA, KB, HA, HB)                                \
  L2_##KA##_##KB:                                                \
  pc = MicroExec::HA(*this, *u, pc);                             \
  if (retired >= max_instructions) [[unlikely]] goto budget;     \
  if constexpr (Profile) ++counts[pc];                           \
  ++retired;                                                     \
  u = &uops[pc];                                                 \
  pc = MicroExec::HB(*this, *u, pc);                             \
  FPMIX_DISPATCH();
    FPMIX_FUSED_PAIRS(FPMIX_OP2)
#undef FPMIX_OP2

  halted:
    stopped_ = true;
    result.status = RunResult::Status::kHalted;
  } catch (const Trap& t) {
    pc_ = pc;  // the index of the instruction that trapped
    result.status = RunResult::Status::kTrapped;
    result.trap_message = t.message + trap_context(pc, retired);
    result.sentinel_escape = t.sentinel;
  }
  retired_ = retired;
  result.instructions_retired = retired;
  return result;

budget:
  pc_ = pc;
  retired_ = retired;
  result.status = RunResult::Status::kOutOfBudget;
  result.trap_message = "instruction budget exhausted";
  result.instructions_retired = retired;
  return result;

#undef FPMIX_OP_STOP
#undef FPMIX_OP
#undef FPMIX_DISPATCH
#undef FPMIX_FUSED_PAIRS

#else  // portable call-threaded loop through kMicroTable
  try {
    while (true) {
      if (retired >= max_instructions) [[unlikely]] {
        pc_ = pc;
        retired_ = retired;
        result.status = RunResult::Status::kOutOfBudget;
        result.trap_message = "instruction budget exhausted";
        result.instructions_retired = retired;
        return result;
      }
      if constexpr (Profile) ++counts[pc];
      ++retired;  // the trapping instruction counts as retired, like switch
      const MicroOp& u = uops[pc];
      pc = kMicroTable[u.kind](*this, u, pc);
      if (pc == MicroExec::kStop) break;
    }
    stopped_ = true;
    result.status = RunResult::Status::kHalted;
  } catch (const Trap& t) {
    pc_ = pc;  // the index of the instruction that trapped
    result.status = RunResult::Status::kTrapped;
    result.trap_message = t.message + trap_context(pc, retired);
    result.sentinel_escape = t.sentinel;
  }
  retired_ = retired;
  result.instructions_retired = retired;
  return result;
#endif
}

template RunResult Machine::run_micro<true>();
template RunResult Machine::run_micro<false>();

}  // namespace fpmix::vm