
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/program/image.cpp" "src/program/CMakeFiles/fpmix_program.dir/image.cpp.o" "gcc" "src/program/CMakeFiles/fpmix_program.dir/image.cpp.o.d"
  "/root/repo/src/program/layout.cpp" "src/program/CMakeFiles/fpmix_program.dir/layout.cpp.o" "gcc" "src/program/CMakeFiles/fpmix_program.dir/layout.cpp.o.d"
  "/root/repo/src/program/program.cpp" "src/program/CMakeFiles/fpmix_program.dir/program.cpp.o" "gcc" "src/program/CMakeFiles/fpmix_program.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/fpmix_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fpmix_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
