// A loadable binary image: encoded code, initialized data, symbols.
//
// This is the framework's equivalent of an ELF executable. Everything the
// analysis system does -- CFG recovery, patching, rewriting, execution --
// starts from and returns to this byte-level representation, mirroring how
// the paper's tool consumes and emits real binaries.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fpmix::program {

/// Function symbol. `module` models the object file / library the function
/// came from; the search descends module -> function -> block -> instruction.
struct Symbol {
  std::string name;
  std::string module;
  std::uint64_t addr = 0;  // entry address in the code segment
  std::uint64_t size = 0;  // bytes of code
};

/// Provenance record emitted by the rewriter: instruction at `addr` in this
/// image derives from the instruction at `origin` in the original binary
/// (the analogue of a debug-info line table). Sorted by `addr`.
struct OriginEntry {
  std::uint64_t addr = 0;
  std::uint64_t origin = 0;
};

class Image {
 public:
  static constexpr std::uint64_t kDefaultCodeBase = 0x400000;  // 4 MiB
  static constexpr std::uint64_t kDefaultDataBase = 0x500000;  // 5 MiB
  static constexpr std::uint64_t kDefaultBssBase = 0xA00000;   // 10 MiB
  static constexpr std::uint64_t kDefaultMemorySize = 1ull << 24;  // 16 MiB

  std::uint64_t code_base = kDefaultCodeBase;
  std::vector<std::uint8_t> code;

  std::uint64_t data_base = kDefaultDataBase;
  std::vector<std::uint8_t> data;   // initialized data segment

  /// Zero-initialized region. When bss_base is 0, bss begins immediately
  /// after the data segment; the assembler places it at a fixed address so
  /// bss slots can be handed out while the data segment is still growing.
  std::uint64_t bss_base = 0;
  std::uint64_t bss_size = 0;

  std::uint64_t effective_bss_base() const {
    return bss_base != 0 ? bss_base : data_base + data.size();
  }

  std::uint64_t entry = 0;          // address of the program entry point
  std::uint64_t memory_size = kDefaultMemorySize;  // VM address-space size

  /// Sorted by address, non-overlapping, covering all of `code`.
  std::vector<Symbol> symbols;

  /// Optional provenance table (empty for images that were never patched).
  std::vector<OriginEntry> origins;

  /// Maps an address in this image to its original-program address; returns
  /// `addr` itself when no provenance is recorded.
  std::uint64_t origin_of(std::uint64_t addr) const;

  /// Returns the function containing `addr`, or nullptr.
  const Symbol* find_function_at(std::uint64_t addr) const;

  /// Returns the function named `name`, or nullptr.
  const Symbol* find_function(std::string_view name) const;

  /// End address of the code segment (exclusive).
  std::uint64_t code_end() const { return code_base + code.size(); }

  /// Bytes of one function's body.
  std::span<const std::uint8_t> function_bytes(const Symbol& sym) const;

  /// Validates structural invariants (symbol coverage, ordering, entry in
  /// range). Throws ProgramError on violation.
  void validate() const;
};

}  // namespace fpmix::program
