#include "arch/opcode.hpp"

#include "support/error.hpp"

namespace fpmix::arch {
namespace {

using O = Opcode;

constexpr OpcodeInfo kInfo[] = {
    // name        br     cond   call   ret    halt   rD     rS     wD     ln  twin
    {"nop",        false, false, false, false, false, false, false, false, 0, O::kNop},
    {"halt",       false, false, false, false, true,  false, false, false, 0, O::kNop},

    {"jmp",        true,  false, false, false, false, false, false, false, 0, O::kNop},
    {"je",         true,  true,  false, false, false, false, false, false, 0, O::kNop},
    {"jne",        true,  true,  false, false, false, false, false, false, 0, O::kNop},
    {"jl",         true,  true,  false, false, false, false, false, false, 0, O::kNop},
    {"jle",        true,  true,  false, false, false, false, false, false, 0, O::kNop},
    {"jg",         true,  true,  false, false, false, false, false, false, 0, O::kNop},
    {"jge",        true,  true,  false, false, false, false, false, false, 0, O::kNop},
    {"jb",         true,  true,  false, false, false, false, false, false, 0, O::kNop},
    {"jbe",        true,  true,  false, false, false, false, false, false, 0, O::kNop},
    {"ja",         true,  true,  false, false, false, false, false, false, 0, O::kNop},
    {"jae",        true,  true,  false, false, false, false, false, false, 0, O::kNop},
    {"call",       false, false, true,  false, false, false, false, false, 0, O::kNop},
    {"ret",        false, false, false, true,  false, false, false, false, 0, O::kNop},

    {"mov",        false, false, false, false, false, false, false, false, 0, O::kNop},
    {"load",       false, false, false, false, false, false, false, false, 0, O::kNop},
    {"store",      false, false, false, false, false, false, false, false, 0, O::kNop},
    {"lea",        false, false, false, false, false, false, false, false, 0, O::kNop},
    {"add",        false, false, false, false, false, false, false, false, 0, O::kNop},
    {"sub",        false, false, false, false, false, false, false, false, 0, O::kNop},
    {"imul",       false, false, false, false, false, false, false, false, 0, O::kNop},
    {"idiv",       false, false, false, false, false, false, false, false, 0, O::kNop},
    {"irem",       false, false, false, false, false, false, false, false, 0, O::kNop},
    {"and",        false, false, false, false, false, false, false, false, 0, O::kNop},
    {"or",         false, false, false, false, false, false, false, false, 0, O::kNop},
    {"xor",        false, false, false, false, false, false, false, false, 0, O::kNop},
    {"shl",        false, false, false, false, false, false, false, false, 0, O::kNop},
    {"shr",        false, false, false, false, false, false, false, false, 0, O::kNop},
    {"sar",        false, false, false, false, false, false, false, false, 0, O::kNop},
    {"cmp",        false, false, false, false, false, false, false, false, 0, O::kNop},
    {"test",       false, false, false, false, false, false, false, false, 0, O::kNop},
    {"push",       false, false, false, false, false, false, false, false, 0, O::kNop},
    {"pop",        false, false, false, false, false, false, false, false, 0, O::kNop},

    {"movq_xr",    false, false, false, false, false, false, false, false, 0, O::kNop},
    {"movq_rx",    false, false, false, false, false, false, false, false, 0, O::kNop},
    {"movsd_xx",   false, false, false, false, false, false, false, false, 0, O::kNop},
    {"movsd_xm",   false, false, false, false, false, false, false, false, 0, O::kNop},
    {"movsd_mx",   false, false, false, false, false, false, false, false, 0, O::kNop},
    {"movss_xm",   false, false, false, false, false, false, false, false, 0, O::kNop},
    {"movss_mx",   false, false, false, false, false, false, false, false, 0, O::kNop},
    {"movapd_xx",  false, false, false, false, false, false, false, false, 0, O::kNop},
    {"movapd_xm",  false, false, false, false, false, false, false, false, 0, O::kNop},
    {"movapd_mx",  false, false, false, false, false, false, false, false, 0, O::kNop},
    {"pushx",      false, false, false, false, false, false, false, false, 0, O::kNop},
    {"popx",       false, false, false, false, false, false, false, false, 0, O::kNop},

    {"addsd",      false, false, false, false, false, true,  true,  true,  1, O::kAddss},
    {"subsd",      false, false, false, false, false, true,  true,  true,  1, O::kSubss},
    {"mulsd",      false, false, false, false, false, true,  true,  true,  1, O::kMulss},
    {"divsd",      false, false, false, false, false, true,  true,  true,  1, O::kDivss},
    {"sqrtsd",     false, false, false, false, false, false, true,  true,  1, O::kSqrtss},
    {"minsd",      false, false, false, false, false, true,  true,  true,  1, O::kMinss},
    {"maxsd",      false, false, false, false, false, true,  true,  true,  1, O::kMaxss},
    {"ucomisd",    false, false, false, false, false, true,  true,  false, 1, O::kUcomiss},
    {"cvtsd2ss",   false, false, false, false, false, false, true,  false, 1, O::kNop},
    {"cvtss2sd",   false, false, false, false, false, false, false, true,  1, O::kNop},
    {"cvtsi2sd",   false, false, false, false, false, false, false, true,  1, O::kCvtsi2ss},
    {"cvttsd2si",  false, false, false, false, false, false, true,  false, 1, O::kCvttss2si},

    {"addss",      false, false, false, false, false, false, false, false, 0, O::kNop},
    {"subss",      false, false, false, false, false, false, false, false, 0, O::kNop},
    {"mulss",      false, false, false, false, false, false, false, false, 0, O::kNop},
    {"divss",      false, false, false, false, false, false, false, false, 0, O::kNop},
    {"sqrtss",     false, false, false, false, false, false, false, false, 0, O::kNop},
    {"minss",      false, false, false, false, false, false, false, false, 0, O::kNop},
    {"maxss",      false, false, false, false, false, false, false, false, 0, O::kNop},
    {"ucomiss",    false, false, false, false, false, false, false, false, 0, O::kNop},
    {"cvtsi2ss",   false, false, false, false, false, false, false, false, 0, O::kNop},
    {"cvttss2si",  false, false, false, false, false, false, false, false, 0, O::kNop},

    {"addpd",      false, false, false, false, false, true,  true,  true,  2, O::kAddps},
    {"subpd",      false, false, false, false, false, true,  true,  true,  2, O::kSubps},
    {"mulpd",      false, false, false, false, false, true,  true,  true,  2, O::kMulps},
    {"divpd",      false, false, false, false, false, true,  true,  true,  2, O::kDivps},
    {"sqrtpd",     false, false, false, false, false, false, true,  true,  2, O::kSqrtps},
    {"addps",      false, false, false, false, false, false, false, false, 0, O::kNop},
    {"subps",      false, false, false, false, false, false, false, false, 0, O::kNop},
    {"mulps",      false, false, false, false, false, false, false, false, 0, O::kNop},
    {"divps",      false, false, false, false, false, false, false, false, 0, O::kNop},
    {"sqrtps",     false, false, false, false, false, false, false, false, 0, O::kNop},

    {"andpd",      false, false, false, false, false, false, false, false, 0, O::kNop},
    {"orpd",       false, false, false, false, false, false, false, false, 0, O::kNop},
    {"xorpd",      false, false, false, false, false, false, false, false, 0, O::kNop},

    {"intrin",     false, false, false, false, false, false, false, false, 0, O::kNop},
};

static_assert(sizeof(kInfo) / sizeof(kInfo[0]) ==
                  static_cast<std::size_t>(Opcode::kNumOpcodes),
              "every opcode must have an OpcodeInfo row");

}  // namespace

const OpcodeInfo& opcode_info(Opcode op) {
  FPMIX_CHECK(op < Opcode::kNumOpcodes);
  return kInfo[static_cast<std::size_t>(op)];
}

const char* opcode_name(Opcode op) { return opcode_info(op).name; }

bool is_replacement_candidate(Opcode op) {
  const OpcodeInfo& info = opcode_info(op);
  return info.single_twin != Opcode::kNop;
}

bool touches_f64(Opcode op) {
  const OpcodeInfo& info = opcode_info(op);
  return info.reads_dst_f64 || info.reads_src_f64 || info.writes_dst_f64;
}

bool ends_basic_block(Opcode op) {
  const OpcodeInfo& info = opcode_info(op);
  return info.is_branch || info.is_ret || info.is_halt;
}

}  // namespace fpmix::arch
