#include "support/journal.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define FPMIX_JOURNAL_HAS_FSYNC 1
#endif

#include "support/strings.hpp"

namespace fpmix {

namespace {

/// Reflected CRC-32 table for polynomial 0xEDB88320, built once.
struct Crc32Table {
  std::uint32_t t[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const Crc32Table table;
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table.t[(c ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string seal_record(std::string_view json_object, std::uint64_t seq) {
  // `{"a":1}` + seq 7 -> `{"a":1,"seq":7,"crc":"xxxxxxxx"}` with the CRC
  // taken over `{"a":1,"seq":7` -- every byte that precedes the crc field,
  // so damage anywhere in the line (seal included) fails verification.
  std::string out(json_object.substr(0, json_object.size() - 1));
  out += strformat(",\"seq\":%llu", static_cast<unsigned long long>(seq));
  const std::uint32_t crc = crc32(out);
  out += strformat(",\"crc\":\"%08x\"}", crc);
  return out;
}

SealCheck check_seal(std::string_view line) {
  const std::size_t pos = line.rfind(",\"crc\":\"");
  if (pos == std::string_view::npos) return SealCheck::kUnsealed;
  // Expect exactly `,"crc":"HHHHHHHH"}` at the tail.
  const std::string_view tail = line.substr(pos);
  if (tail.size() != 8 + 8 + 2 || tail.substr(16) != "\"}") {
    return SealCheck::kCorrupt;
  }
  std::uint64_t stored = 0;
  if (!parse_hex_u64(tail.substr(8, 8), &stored)) return SealCheck::kCorrupt;
  return crc32(line.substr(0, pos)) == static_cast<std::uint32_t>(stored)
             ? SealCheck::kOk
             : SealCheck::kCorrupt;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Parses a JSON string literal starting at s[*pos] == '"'; advances *pos
/// past the closing quote and appends the unescaped text to *out.
bool parse_string(std::string_view s, std::size_t* pos, std::string* out) {
  if (*pos >= s.size() || s[*pos] != '"') return false;
  ++*pos;
  while (*pos < s.size()) {
    const char c = s[*pos];
    if (c == '"') {
      ++*pos;
      return true;
    }
    if (c == '\\') {
      if (*pos + 1 >= s.size()) return false;
      const char e = s[*pos + 1];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (*pos + 5 >= s.size()) return false;
          std::uint64_t cp = 0;
          if (!parse_hex_u64(s.substr(*pos + 2, 4), &cp) || cp > 0xFF) {
            return false;  // journal strings only ever escape control bytes
          }
          *out += static_cast<char>(cp);
          *pos += 4;
          break;
        }
        default:
          return false;
      }
      *pos += 2;
      continue;
    }
    *out += c;
    ++*pos;
  }
  return false;  // unterminated
}

void skip_ws(std::string_view s, std::size_t* pos) {
  while (*pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[*pos]))) {
    ++*pos;
  }
}

/// Parses a bare scalar token (number / true / false / null) as literal
/// text. Nested arrays/objects fail.
bool parse_scalar(std::string_view s, std::size_t* pos, std::string* out) {
  const std::size_t start = *pos;
  while (*pos < s.size() && s[*pos] != ',' && s[*pos] != '}' &&
         !std::isspace(static_cast<unsigned char>(s[*pos]))) {
    const char c = s[*pos];
    if (c == '{' || c == '[' || c == '"') return false;
    ++*pos;
  }
  if (*pos == start) return false;
  *out = std::string(s.substr(start, *pos - start));
  return true;
}

}  // namespace

bool parse_flat_json(std::string_view line, JsonRecord* out) {
  out->clear();
  std::size_t pos = 0;
  skip_ws(line, &pos);
  if (pos >= line.size() || line[pos] != '{') return false;
  ++pos;
  skip_ws(line, &pos);
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
  } else {
    while (true) {
      std::string key, value;
      skip_ws(line, &pos);
      if (!parse_string(line, &pos, &key)) return false;
      skip_ws(line, &pos);
      if (pos >= line.size() || line[pos] != ':') return false;
      ++pos;
      skip_ws(line, &pos);
      if (pos < line.size() && line[pos] == '"') {
        if (!parse_string(line, &pos, &value)) return false;
      } else {
        if (!parse_scalar(line, &pos, &value)) return false;
      }
      (*out)[key] = std::move(value);
      skip_ws(line, &pos);
      if (pos >= line.size()) return false;
      if (line[pos] == ',') {
        ++pos;
        continue;
      }
      if (line[pos] == '}') {
        ++pos;
        break;
      }
      return false;
    }
  }
  skip_ws(line, &pos);
  return pos == line.size();
}

bool sealed_seq(const std::string& line, std::uint64_t* seq) {
  JsonRecord rec;
  if (!parse_flat_json(line, &rec)) return false;
  const auto it = rec.find("seq");
  if (it == rec.end()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') return false;
  *seq = v;
  return true;
}

bool atomic_replace(const std::string& path, std::string_view contents,
                    std::string* error) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = strformat("open %s: %s", tmp.c_str(), std::strerror(errno));
    }
    return false;
  }
  bool ok = contents.empty() ||
            std::fwrite(contents.data(), 1, contents.size(), f) ==
                contents.size();
  if (ok) ok = std::fflush(f) == 0;
#if FPMIX_JOURNAL_HAS_FSYNC
  // The replacement contents must be durable *before* the rename: renaming
  // first could leave the directory pointing at a file whose bytes never
  // reached disk.
  if (ok) ok = ::fsync(::fileno(f)) == 0;
#endif
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    if (error != nullptr) {
      *error = strformat("write %s: %s", tmp.c_str(), std::strerror(errno));
    }
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = strformat("rename %s -> %s: %s", tmp.c_str(), path.c_str(),
                         std::strerror(errno));
    }
    std::remove(tmp.c_str());
    return false;
  }
#if FPMIX_JOURNAL_HAS_FSYNC
  // rename(2) is atomic but not durable: the directory entry lives in its
  // own metadata block, so fsync the directory or a power cut can resurrect
  // the old file.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : slash == 0 ? "/" : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
#endif
  return true;
}

Journal::~Journal() { close(); }

bool Journal::open(const std::string& path) {
  close();
  const std::lock_guard<std::mutex> lock(mutex_);
  // A crash mid-append can leave the file without a final newline. Appending
  // onto that torn tail would glue the new record to it and corrupt both, so
  // terminate the tail first (readers drop the now-complete junk line by its
  // failed parse / CRC, exactly like any other damaged record).
  bool needs_newline = false;
  if (std::FILE* probe = std::fopen(path.c_str(), "rb")) {
    if (std::fseek(probe, -1, SEEK_END) == 0) {
      const int last = std::fgetc(probe);
      needs_newline = last != EOF && last != '\n';
    }
    std::fclose(probe);
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) return false;
  if (needs_newline) std::fputc('\n', file_);
  path_ = path;
  next_seq_ = 1;
  return true;
}

void Journal::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  path_.clear();
}

std::string Journal::append_sealed(const std::string& json_object) {
  // Sequence assignment and the write happen under one lock, so concurrent
  // sealed appends can neither interleave bytes nor reuse a sequence number.
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string line = seal_record(json_object, next_seq_++);
  append_locked(line);
  return line;
}

void Journal::append(const std::string& json_object) {
  const std::lock_guard<std::mutex> lock(mutex_);
  append_locked(json_object);
}

void Journal::append_locked(const std::string& json_object) {
  if (file_ == nullptr) return;
  // One line per record: write + '\n' in a single buffered stream op, then
  // flush so the record survives this process dying right after.
  std::fwrite(json_object.data(), 1, json_object.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
#if FPMIX_JOURNAL_HAS_FSYNC
  // Durability past the OS: fflush only reaches the page cache, so a power
  // loss (or container kill) can still drop sealed records. fsync pushes
  // them to stable storage before the append returns.
  if (fsync_) ::fsync(::fileno(file_));
#else
  (void)fsync_;
#endif
}

std::vector<std::string> Journal::read_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return lines;
  std::string current;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (buf[i] == '\n') {
        lines.push_back(std::move(current));
        current.clear();
      } else {
        current += buf[i];
      }
    }
  }
  std::fclose(f);
  // `current` holds a chunk with no terminating newline: an append that was
  // cut short by a crash. Drop it -- resume re-evaluates that trial.
  return lines;
}

}  // namespace fpmix
