// Baseline template JIT: lowers predecoded MicroOp streams to x86-64.
//
// Shape of the pipeline (mirrors the predecode layer one level down):
//
//   CodeSegment uops (local form) --compile_stream--> SegmentBlob
//     position-independent native code + relocation list, cached on the
//     segment (jit::BlobCache) so delta trials re-JIT only dirty functions;
//   SegmentBlobs --link_image--> JitImage
//     blobs copied into one W^X buffer with all relocations resolved
//     against the image's segment bases, plus a per-instruction native
//     address table for resume/ret/fallback re-entry. Cached on the
//     ExecutableImage, so a warm ImageCache hit carries compiled code.
//
// Compiled code keeps VM state in host registers by role, not by copy: the
// register file, xmm file and memory stay in the Machine's own arrays, and
// the JIT pins *pointers* to them (plus the retired counter and budget) in
// callee-saved registers. That makes the chunked-supervision contract free:
// between chunks the supervisor reads and mutates Machine state directly,
// and re-entry just jumps to the native address of pc_.
//
//   r15 = JitContext*        r12 = gpr file base     r13 = VM memory base
//   rbx = xmm file base      r14 = retired counter   rbp = max_instructions
//
// Every guest instruction begins with the interpreter's exact sequencing:
// budget check, (profiled: counter bump), retire. Trapping paths jump to
// per-site out-of-line stubs that call C++ helpers through the context
// block; helpers compose byte-identical trap messages and never unwind into
// JIT frames. Unspecialised or rare operand forms call the generic-exec
// helper, which runs the micro-op interpreter's own handler for exactly one
// instruction -- lowering never fails, and the two engines cannot drift.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "arch/intrinsics.hpp"
#include "vm/exec_image.hpp"

namespace fpmix::vm::jit {

// ---------------------------------------------------------------------------
// Runtime context shared between compiled code and the C++ helpers.
// Compiled code addresses every field as [r15 + offset], so the layout is
// fixed and static_asserted; keep all offsets within disp8 range.
// ---------------------------------------------------------------------------

/// entry() return values (also JitContext::exit_status).
enum : std::uint32_t {
  kExitHalt = 0,    // clean stop: halt, or ret to the null frame
  kExitBudget = 1,  // retired reached max_instructions (exit_pc = resume pc)
  kExitTrap = 2,    // helper composed a trap (exit_pc = faulting pc)
  kExitBudgetNear = 3,  // a block-entry guard found the budget boundary
                        // inside the block: fewer than the block's retire
                        // count remain. Nothing was executed; the driver
                        // interprets from exit_pc to the exact boundary.
};

struct JitContext {
  std::uint64_t* gpr;              // +0   Machine gpr file (17 slots)
  std::uint8_t* mem_base;          // +8   VM memory
  std::uint64_t mem_size;          // +16
  void* xmm;                       // +24  Machine xmm file (16-byte stride)
  std::uint64_t retired;           // +32  synced with r14 at entry/exit/helpers
  std::uint64_t max_instructions;  // +40
  std::uint64_t* counts;           // +48  profile counters (null when off)
  std::uint64_t tag_cmp;           // +56  sentinel high word, or unmatchable
  std::uint64_t exit_pc;           // +64
  std::uint32_t exit_status;       // +72
  std::uint8_t flag_eq;            // +76  VM flags, mirrored while in JIT code
  std::uint8_t flag_lt;            // +77
  std::uint8_t flag_ltu;           // +78
  std::uint8_t pad_ = 0;           // +79
  const void* epilogue;            // +80  jmp target: restore host state, ret
  const void* help_mem_trap;       // +88  (ctx, addr, bytes, pc, is_store)
  const void* help_tag_trap;       // +96  (ctx, bits, pc)
  const void* help_exec;           // +104 (ctx, pc) -> next native addr | 0
  const void* help_ret;            // +112 (ctx, ra, pc) -> native addr | 0
  const void* help_intrin;         // +120 (ctx, pc) -> 1 | 0 on trap
  void* run_state;                 // +128 Machine-side state (trap sink)
  const void* image;               // +136 owning JitImage
  const void* help_op_trap;        // +144 (ctx, pc, msg_id) divide/cvtt traps
  const void* const* intrin_fn;    // +152 per-id double(*)(double) | null
  // One-compare bounds limits: addr >= mem_limitN  ⟺  addr + N > mem_size,
  // with no wrap possible because the address itself is compared. 0 when
  // mem_size < N (every address faults).
  std::uint64_t mem_limit8;        // +160 mem_size - 7, saturated to 0
  std::uint64_t mem_limit4;        // +168 mem_size - 3, saturated to 0
};
static_assert(offsetof(JitContext, retired) == 32);
static_assert(offsetof(JitContext, tag_cmp) == 56);
static_assert(offsetof(JitContext, exit_status) == 72);
static_assert(offsetof(JitContext, flag_eq) == 76);
static_assert(offsetof(JitContext, epilogue) == 80);
static_assert(offsetof(JitContext, help_intrin) == 120);
static_assert(offsetof(JitContext, image) == 136);
static_assert(offsetof(JitContext, help_op_trap) == 144);
static_assert(offsetof(JitContext, intrin_fn) == 152);
static_assert(offsetof(JitContext, mem_limit8) == 160);
static_assert(offsetof(JitContext, mem_limit4) == 168);

/// help_op_trap message selectors (kept in one place so the helper composes
/// byte-identical interpreter trap text).
enum : std::uint32_t {
  kOpTrapDivZero = 0,       // "integer division by zero"
  kOpTrapRemZero = 1,       // "integer remainder by zero"
  kOpTrapDivOverflow = 2,   // "integer division overflow"
  kOpTrapRemOverflow = 3,   // "integer remainder overflow"
  kOpTrapCvttSdRange = 4,   // "cvttsd2si operand out of int64 range"
  kOpTrapCvttSsRange = 5,   // "cvttss2si operand out of int64 range"
};

/// tag_cmp value when the tag trap is disabled: compiled code compares
/// `bits >> 32` (always < 2^32) against this, so it can never match and no
/// separate no-trap compilation variant is needed.
inline constexpr std::uint64_t kTagCmpDisabled = 1ull << 40;

/// True for intrinsic ids whose bodies compiled code may invoke directly
/// through JitContext::intrin_fn (the hot unary math set: one f64 in, one
/// f64 out, no machine-state side effects). Must agree with the non-null
/// entries of the machine's intrin_fn table -- checked at table build time.
constexpr bool intrinsic_inlinable(std::uint16_t id) {
  using arch::intrinsics::Id;
  switch (static_cast<Id>(id)) {
    case Id::kSin: case Id::kCos: case Id::kTan:
    case Id::kExp: case Id::kLog:
    case Id::kFloor: case Id::kCeil: case Id::kFabs:
    case Id::kSinF32: case Id::kCosF32: case Id::kTanF32:
    case Id::kExpF32: case Id::kLogF32:
    case Id::kFloorF32: case Id::kCeilF32: case Id::kFabsF32:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Position-independent segment blobs.
// ---------------------------------------------------------------------------

/// Link-time patch against a blob copied to its final image position. Every
/// kind is an "add the image-assigned base" fix, so one compiled blob
/// serves any splice position -- the native analogue of CodeSegment's
/// branch_sites_/call_sites_.
struct Reloc {
  enum class Kind : std::uint8_t {
    kRel32Target,   // rel32 -> native address of instruction (ibase + value)
    kRel32Call,     // rel32 -> native entry of function index `value`
    kAbs64RetAddr,  // imm64 return address: value + segment byte base
    kImm32Pc,       // imm32 global pc: value + ibase
    kDisp32Counts,  // disp32 into the profile array: (value + ibase) * 8
  };
  Kind kind;
  std::uint32_t offset;  // byte offset of the patch site within the blob
  std::uint64_t value;
};

/// How each micro-op was lowered, tallied per op family: "native" = inline
/// host code, "helper" = out-of-line C++ helper on the hot path
/// (intrinsic/ret), "generic" = one-instruction micro-op interpreter
/// fallback. Surfaced by bench_jit_compile and --metrics-json so
/// specialisation gaps are visible instead of silent.
struct LoweringStats {
  enum Family : int {
    kInt = 0,    // mov/lea/alu/shift/cmp/test
    kMem,        // load/store/push/pop (gpr + xmm)
    kBranch,     // jmp/jcc (incl. the branch half of fused pairs)
    kCallRet,
    kF64,        // scalar double arithmetic/compare/minmax/sqrt
    kF32,        // scalar float arithmetic/compare/minmax/sqrt
    kPacked,     // pd/ps packed arithmetic
    kBitwise,    // andpd/orpd/xorpd
    kConvert,    // cvt* conversions
    kDivRem,     // idiv/irem
    kIntrin,
    kOther,      // nop/halt/fallback
    kNumFamilies,
  };
  std::uint64_t native[kNumFamilies] = {};
  std::uint64_t generic[kNumFamilies] = {};
  std::uint64_t helper[kNumFamilies] = {};
  std::uint64_t fused_pairs = 0;  // cmp/test+jcc pairs with flags elided
  std::uint64_t reg_alloc_blocks = 0;  // blocks that got host registers
  std::uint64_t reg_alloc_slots = 0;   // guest slots promoted across blocks

  void add(const LoweringStats& o) {
    for (int f = 0; f < kNumFamilies; ++f) {
      native[f] += o.native[f];
      generic[f] += o.generic[f];
      helper[f] += o.helper[f];
    }
    fused_pairs += o.fused_pairs;
    reg_alloc_blocks += o.reg_alloc_blocks;
    reg_alloc_slots += o.reg_alloc_slots;
  }
  std::uint64_t total(const std::uint64_t* a) const {
    std::uint64_t s = 0;
    for (int f = 0; f < kNumFamilies; ++f) s += a[f];
    return s;
  }
  std::uint64_t total_native() const { return total(native); }
  std::uint64_t total_generic() const { return total(generic); }
  std::uint64_t total_helper() const { return total(helper); }
};

/// Human-readable name for a LoweringStats::Family index.
const char* lowering_family_name(int family);

/// Process-wide lowering totals accumulated by every compile_stream call
/// (internally synchronised), for --metrics-json; reset for benchmarks.
LoweringStats lowering_totals();
void reset_lowering_totals();

/// Native code compiled from one micro-op stream in local form. Immutable
/// and position-independent: link_image copies it anywhere and applies the
/// relocations.
class SegmentBlob {
 public:
  std::vector<std::uint8_t> code;
  std::vector<Reloc> relocs;
  /// Byte offset of each instruction's native entry (size = uop count).
  std::vector<std::uint32_t> instr_off;
  /// Per-blob lowering census (also accumulated into lowering_totals()).
  LoweringStats stats;
};

/// Compilation mode for a stream's control-transfer immediates.
struct CompileMode {
  /// Local form (CodeSegment): call imm = callee function index, call aux =
  /// local return byte offset, branch imm may equal the uop count (branch
  /// to the function's end). Global form (ExecutableImage::build output):
  /// call imm = callee's global instruction index, aux = absolute address.
  bool local = false;
  bool profile = false;
};

/// Compiles one micro-op stream to a position-independent blob. Pure
/// translation -- never fails (unspecialised forms lower to generic-exec
/// helper calls).
std::shared_ptr<const SegmentBlob> compile_stream(
    const std::vector<MicroOp>& uops, CompileMode mode);

// ---------------------------------------------------------------------------
// Linked executable images.
// ---------------------------------------------------------------------------

/// An executable W^X code buffer (mmap RW -> fill -> mprotect RX).
class CodeBuffer {
 public:
  CodeBuffer() = default;
  ~CodeBuffer();
  CodeBuffer(const CodeBuffer&) = delete;
  CodeBuffer& operator=(const CodeBuffer&) = delete;

  /// Maps a writable buffer of at least `size` bytes. Returns false when
  /// the platform refuses (the capability probe normally catches this
  /// first, but a hardened kernel can start refusing at any time).
  bool map(std::size_t size);
  /// Flips the mapping to read+execute. Must be called exactly once, after
  /// the code is final.
  bool seal();

  std::uint8_t* data() { return data_; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Per-segment placement input to link_image.
struct LinkSegment {
  std::shared_ptr<const SegmentBlob> blob;
  std::size_t first_index;  // global index of the segment's first instruction
  std::uint64_t byte_base;  // guest byte address of the segment
};

/// A fully linked, executable translation of one ExecutableImage variant.
class JitImage {
 public:
  /// Native entry address for a global instruction index; index == count
  /// (execution fell off the end of the code) resolves to a stub that
  /// reports the condition through the generic-exec helper.
  const void* native_addr(std::size_t index) const {
    return buf_.data() + native_off_[index];
  }
  std::size_t instruction_count() const { return native_off_.size() - 1; }

  /// Links blobs (in program order, matching the image's instruction
  /// numbering) into one executable buffer. `total` is the image's
  /// instruction count; `funcs[f].first_index` resolves kRel32Call. Returns
  /// nullptr when executable memory is unavailable.
  static std::shared_ptr<const JitImage> link(
      const std::vector<LinkSegment>& segments, std::size_t total);

 private:
  JitImage() = default;
  CodeBuffer buf_;
  std::vector<std::uint32_t> native_off_;  // size = total + 1
};

// ---------------------------------------------------------------------------
// Host runtime.
// ---------------------------------------------------------------------------

/// Host-state save/restore trampolines, emitted once per process into a
/// small executable buffer.
struct Runtime {
  /// Enters JIT code at `start` with the context loaded; returns the exit
  /// status (kExit*).
  std::uint32_t (*entry)(JitContext*, const void* start);
  /// Address compiled code jumps to in order to leave (via ctx->epilogue).
  const void* epilogue;
};

/// The process-wide runtime, built on first use. Null when jit_supported()
/// is false.
const Runtime* runtime();

/// True when this host can run JIT-compiled trials: x86-64, not a sanitizer
/// build, and the kernel grants a writable-then-executable mapping (probed
/// once by emitting and running a trivial stub). Cached after the first
/// call; thread-safe.
bool jit_supported();

/// Human-readable reason jit_supported() is false ("" when supported).
const char* jit_unsupported_reason();

}  // namespace fpmix::vm::jit
