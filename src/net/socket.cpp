#include "net/socket.hpp"

#include <atomic>

#include "support/fault.hpp"
#include "support/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FPMIX_NET_POSIX 1
#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define FPMIX_NET_POSIX 0
#endif

namespace fpmix::net {

bool supported() { return FPMIX_NET_POSIX != 0; }

namespace {
/// Process-wide chaos source (test harness only; see set_socket_chaos).
const fault::NetChaos* g_socket_chaos = nullptr;
/// Distinct per-connection chaos ids, assigned on first chaos-visible op.
std::atomic<std::uint64_t> g_chaos_conn_ids{1};
}  // namespace

void set_socket_chaos(const fault::NetChaos* chaos) {
  g_socket_chaos = chaos;
}

std::string Endpoint::str() const {
  return strformat("%s:%u", host.c_str(), static_cast<unsigned>(port));
}

bool parse_endpoint(std::string_view s, Endpoint* out) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string_view::npos) return false;
  const std::string_view host = s.substr(0, colon);
  std::uint64_t port = 0;
  if (!parse_u64(std::string(s.substr(colon + 1)), &port) || port == 0 ||
      port > 65535) {
    return false;
  }
  out->host = host.empty() ? std::string("127.0.0.1") : std::string(host);
  out->port = static_cast<std::uint16_t>(port);
  return true;
}

#if FPMIX_NET_POSIX

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  // Trial frames are small request/response pairs; Nagle would add 40ms
  // stalls to every one of them.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Resolves host to an IPv4 sockaddr. Numeric addresses and "localhost"
/// are all the service uses, but getaddrinfo handles real names too.
bool resolve(const std::string& host, std::uint16_t port, sockaddr_in* out,
             std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    if (error != nullptr) {
      *error = strformat("cannot resolve '%s': %s", host.c_str(),
                         ::gai_strerror(rc));
    }
    return false;
  }
  *out = *reinterpret_cast<sockaddr_in*>(res->ai_addr);
  out->sin_port = htons(port);
  ::freeaddrinfo(res);
  return true;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), chaos_id_(other.chaos_id_), chaos_op_(other.chaos_op_),
      held_(std::move(other.held_)),
      held_after_next_(other.held_after_next_) {
  other.fd_ = -1;
  other.chaos_id_ = 0;
  other.chaos_op_ = 0;
  other.held_.clear();
  other.held_after_next_ = false;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    chaos_id_ = other.chaos_id_;
    chaos_op_ = other.chaos_op_;
    held_ = std::move(other.held_);
    held_after_next_ = other.held_after_next_;
    other.fd_ = -1;
    other.chaos_id_ = 0;
    other.chaos_op_ = 0;
    other.held_.clear();
    other.held_after_next_ = false;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

IoStatus Socket::read_available(std::string* buf) {
  if (fd_ < 0) return IoStatus::kError;
  char chunk[65536];
  bool got_any = false;
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf->append(chunk, static_cast<std::size_t>(n));
      got_any = true;
      continue;
    }
    if (n == 0) {
      // Orderly shutdown. Bytes drained this call still count as progress;
      // the next call reports the EOF.
      return got_any ? IoStatus::kOk : IoStatus::kEof;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return got_any ? IoStatus::kOk : IoStatus::kWouldBlock;
    }
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
}

bool Socket::send_all(std::string_view data, int timeout_ms) {
  const fault::NetChaos* chaos = g_socket_chaos;
  if (chaos == nullptr) {
    // No chaos installed (production): a frame held by a since-cleared
    // chaos source still flushes first, preserving stream order.
    if (held_.empty()) return send_plain(data, timeout_ms);
    std::string buf = std::move(held_);
    held_.clear();
    held_after_next_ = false;
    buf.append(data);
    return send_plain(buf, timeout_ms);
  }
  if (chaos_id_ == 0) {
    chaos_id_ = g_chaos_conn_ids.fetch_add(1, std::memory_order_relaxed);
  }
  const fault::NetFault f = chaos->for_op(chaos_id_, chaos_op_++);
  if (f == fault::NetFault::kConnReset) {
    close();
    return false;
  }
  if (f == fault::NetFault::kStall) {
    // A stalled link / short partition window: the frame arrives, late.
    ::poll(nullptr, 0, static_cast<int>(chaos->stall_ms()));
  }
  if (held_.empty() && (f == fault::NetFault::kDelayFrame ||
                        f == fault::NetFault::kReorderFrames)) {
    // Hold the whole frame; it rides the wire around the *next* send on
    // this socket (before it for delay, after it for reorder). At most one
    // frame is held at a time -- a second hold draw flushes instead.
    held_.assign(data.data(), data.size());
    held_after_next_ = f == fault::NetFault::kReorderFrames;
    return true;
  }
  std::string buf;
  if (!held_.empty() && !held_after_next_) {
    buf.append(held_);
    held_.clear();
  }
  buf.append(data);
  if (f == fault::NetFault::kDupFrame) buf.append(data);
  if (!held_.empty()) {
    buf.append(held_);
    held_.clear();
    held_after_next_ = false;
  }
  return send_plain(buf, timeout_ms);
}

bool Socket::send_plain(std::string_view data, int timeout_ms) {
  if (fd_ < 0) return false;
  std::size_t off = 0;
  while (off < data.size()) {
#if defined(MSG_NOSIGNAL)
    const int flags = MSG_NOSIGNAL;  // EPIPE, not SIGPIPE, on a dead peer
#else
    const int flags = 0;
#endif
    const ssize_t n =
        ::send(fd_, data.data() + off, data.size() - off, flags);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc <= 0) return false;  // timeout or poll error
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  port_ = 0;
}

bool Listener::listen_on(const std::string& host, std::uint16_t port,
                         std::string* error) {
  close();
  sockaddr_in addr{};
  if (!resolve(host, port, &addr, error)) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = strformat("socket: %s", ::strerror(errno));
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0 || !set_nonblocking(fd)) {
    if (error != nullptr) {
      *error = strformat("bind/listen %s:%u: %s", host.c_str(),
                         static_cast<unsigned>(port), ::strerror(errno));
    }
    ::close(fd);
    return false;
  }
  // Read back the bound port (meaningful when the caller asked for 0).
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  fd_ = fd;
  return true;
}

Socket Listener::accept_connection() {
  if (fd_ < 0) return Socket();
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      if (!set_nonblocking(fd)) {
        ::close(fd);
        return Socket();
      }
      set_nodelay(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Socket();  // EAGAIN and real errors both: nothing to accept
  }
}

Socket connect_to(const Endpoint& ep, int timeout_ms, std::string* error) {
  sockaddr_in addr{};
  if (!resolve(ep.host, ep.port, &addr, error)) return Socket();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = strformat("socket: %s", ::strerror(errno));
    return Socket();
  }
  if (!set_nonblocking(fd)) {
    if (error != nullptr) *error = "cannot set O_NONBLOCK";
    ::close(fd);
    return Socket();
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      if (error != nullptr) {
        *error = strformat("connect %s: %s", ep.str().c_str(),
                           ::strerror(errno));
      }
      ::close(fd);
      return Socket();
    }
    // Non-blocking connect: wait (bounded) for the handshake to settle,
    // then read the verdict from SO_ERROR.
    pollfd pfd{fd, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (rc <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
        soerr != 0) {
      if (error != nullptr) {
        *error = rc <= 0
                     ? strformat("connect %s: timeout after %d ms",
                                 ep.str().c_str(), timeout_ms)
                     : strformat("connect %s: %s", ep.str().c_str(),
                                 ::strerror(soerr));
      }
      ::close(fd);
      return Socket();
    }
  }
  set_nodelay(fd);
  return Socket(fd);
}

#else  // !FPMIX_NET_POSIX

Socket::~Socket() = default;
Socket::Socket(Socket&&) noexcept {}
Socket& Socket::operator=(Socket&&) noexcept { return *this; }
void Socket::close() {}
IoStatus Socket::read_available(std::string*) { return IoStatus::kError; }
bool Socket::send_all(std::string_view, int) { return false; }
bool Socket::send_plain(std::string_view, int) { return false; }

Listener::~Listener() = default;
Listener::Listener(Listener&&) noexcept {}
Listener& Listener::operator=(Listener&&) noexcept { return *this; }
void Listener::close() {}
bool Listener::listen_on(const std::string&, std::uint16_t,
                         std::string* error) {
  if (error != nullptr) *error = "sockets unsupported on this platform";
  return false;
}
Socket Listener::accept_connection() { return Socket(); }

Socket connect_to(const Endpoint&, int, std::string* error) {
  if (error != nullptr) *error = "sockets unsupported on this platform";
  return Socket();
}

#endif  // FPMIX_NET_POSIX

}  // namespace fpmix::net
