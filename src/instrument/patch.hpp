// Basic-block patching and binary rewriting (Section 2.4, Figure 7).
//
// For every floating-point instruction selected by the configuration, the
// patcher splits the containing basic block into (1) the instructions before
// it, (2) the instruction itself and (3) the instructions after it, then
// replaces the middle with the snippet chain produced by the mini-compiler
// and rewires the surrounding edges. The layout engine (program::relayout)
// finally emits a fresh executable image -- the analogue of Dyninst's binary
// rewriter producing a new executable.
//
// The generic splice engine is shared with the cancellation-detection
// instrumenter (instrument/cancellation.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "config/config.hpp"
#include "config/structure.hpp"
#include "instrument/snippet.hpp"
#include "program/image.hpp"
#include "program/program.hpp"

namespace fpmix::instrument {

struct InstrumentStats {
  std::size_t wrapped = 0;          // instructions replaced by snippets
  std::size_t replaced_single = 0;  // of which executed in single precision
  std::size_t ignored = 0;          // flagged `ignore` and left untouched
  std::size_t snippet_instrs = 0;   // total instructions across all snippets
  std::size_t checks_elided = 0;    // sentinel tests removed by dataflow

  /// Every counter is a per-instruction sum, so whole-program stats are the
  /// sum of per-function stats -- the invariant instrument_delta relies on.
  void add(const InstrumentStats& s) {
    wrapped += s.wrapped;
    replaced_single += s.replaced_single;
    ignored += s.ignored;
    snippet_instrs += s.snippet_instrs;
    checks_elided += s.checks_elided;
  }
};

struct InstrumentOptions {
  SnippetOptions snippet;
  /// Intra-block tag-state dataflow (the paper's Section 2.5: "static data
  /// flow analysis could improve overheads by detecting instructions that
  /// never encounter replaced double-precision numbers"): when a register's
  /// boxed/plain state is statically known, the snippet's sentinel test for
  /// that operand is elided or strength-reduced.
  bool dataflow_optimize = false;
};

struct InstrumentResult {
  program::Program patched;
  InstrumentStats stats;
  /// Per-function breakdown (same order as patched.functions); stats is the
  /// element-wise sum. instrument_delta() copies entries for clean functions.
  std::vector<InstrumentStats> per_function;
};

/// Patches a lifted program according to `cfg`. The structure index must
/// have been built from this same program (instruction addresses are the
/// join key). Throws ProgramError when the program violates the
/// instrumentation preconditions (flags or scratch registers live across an
/// instrumented instruction).
InstrumentResult instrument(const program::Program& prog,
                            const config::StructureIndex& index,
                            const config::PrecisionConfig& cfg,
                            const InstrumentOptions& options = {});

/// End-to-end convenience: lift the image, patch it, rewrite it. This is the
/// paper's whole pipeline: binary in, mixed-precision binary out.
program::Image instrument_image(const program::Image& image,
                                const config::StructureIndex& index,
                                const config::PrecisionConfig& cfg,
                                InstrumentStats* stats = nullptr,
                                const InstrumentOptions& options = {});

// ---------------------------------------------------------------------------
// Incremental patching.

/// Patches ONE function against a whole-program address -> effective
/// precision map (see PrecisionConfig::address_map; the map needs entries
/// only for this function's instructions). Per-instruction decisions are
/// identical to instrument()'s -- the tag-state dataflow is intra-block, so
/// patching functions independently is equivalent by construction. `*stats`
/// receives counters for this function alone.
program::Function instrument_function(
    const program::Function& fn,
    const std::map<std::uint64_t, config::Precision>& pmap,
    InstrumentStats* stats, const InstrumentOptions& options = {});

/// Function ids whose effective precision assignment may differ between `a`
/// and `b`. Conservative by subtree: a differing module flag dirties every
/// function of that module; differing function/block/instruction flags dirty
/// the containing function. Ids out of range for `index` are ignored (they
/// cannot affect any function).
std::vector<std::size_t> dirty_functions(const config::StructureIndex& index,
                                         const config::PrecisionConfig& a,
                                         const config::PrecisionConfig& b);

/// Incremental instrument(): re-patches only the functions that
/// dirty_functions(index, base_cfg, cfg) reports, reusing `base_result`'s
/// patched functions and per-function stats everywhere else. `base_result`
/// must come from instrument(prog, index, base_cfg, options) with this same
/// prog/index/options. The result is equivalent to
/// instrument(prog, index, cfg, options) -- clean functions resolve to the
/// same effective precisions under both configs, and patching is
/// function-local.
InstrumentResult instrument_delta(const program::Program& prog,
                                  const config::StructureIndex& index,
                                  const config::PrecisionConfig& base_cfg,
                                  const InstrumentResult& base_result,
                                  const config::PrecisionConfig& cfg,
                                  const InstrumentOptions& options = {});

// ---------------------------------------------------------------------------
// Generic splice engine.

/// Returns the snippet chain replacing `ins`, or nullopt to keep the
/// instruction untouched. Called exactly once per instruction, in program
/// order within each block.
using SnippetFactory =
    std::function<std::optional<SnippetChain>(const arch::Instr& ins)>;

/// Predicate used for the flags-liveness precondition check ("would this
/// instruction be wrapped?").
using WrapPredicate = std::function<bool(const arch::Instr& ins)>;

/// Rebuilds every function of `prog`, replacing instructions selected by
/// `factory` with their snippet chains (block split + edge rewire). Also
/// enforces that condition flags are not live across any wrapped
/// instruction.
program::Program splice_snippets(const program::Program& prog,
                                 const WrapPredicate& would_wrap,
                                 const SnippetFactory& factory,
                                 InstrumentStats* stats,
                                 const std::function<void()>& on_block_start =
                                     nullptr);

/// Single-function core of splice_snippets: liveness precondition check for
/// the function's blocks, then the block split/splice rebuild.
program::Function splice_function(const program::Function& fn,
                                  const WrapPredicate& would_wrap,
                                  const SnippetFactory& factory,
                                  InstrumentStats* stats,
                                  const std::function<void()>& on_block_start =
                                      nullptr);

}  // namespace fpmix::instrument
