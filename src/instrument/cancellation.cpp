#include "instrument/cancellation.hpp"

#include "arch/tag.hpp"
#include "instrument/chain_builder.hpp"
#include "instrument/patch.hpp"
#include "program/layout.hpp"
#include "support/error.hpp"

namespace fpmix::instrument {

using arch::Instr;
using arch::Opcode;
using arch::Operand;

namespace {

constexpr std::uint8_t kScratchA = 0;
constexpr std::uint8_t kScratchB = 1;

bool is_cancellation_site(const Instr& ins) {
  return ins.op == Opcode::kAddsd || ins.op == Opcode::kSubsd;
}

/// Emits "r = biased_exponent(bits in r)": shr 52, and 0x7FF.
void exponent_of(ChainBuilder& b, std::uint8_t reg) {
  b.emit(Opcode::kShr, Operand::gpr(reg), Operand::make_imm(52));
  b.emit(Opcode::kAnd, Operand::gpr(reg), Operand::make_imm(0x7FF));
}

SnippetChain build_cancel_snippet(const Instr& ins,
                                  const CancellationOptions& opts,
                                  const CancellationLayout& layout,
                                  std::size_t slot) {
  const std::uint64_t origin =
      ins.origin != arch::kNoAddr ? ins.origin : ins.addr;
  ChainBuilder b(origin);

  b.emit(Opcode::kPush, Operand::gpr(kScratchA));
  b.emit(Opcode::kPush, Operand::gpr(kScratchB));

  // e_a = exponent(dst).
  b.emit(Opcode::kMovqRX, Operand::gpr(kScratchA), Operand::xmm(ins.dst.reg));
  exponent_of(b, kScratchA);
  // e_b = exponent(src); memory operands are read directly (values are not
  // modified by this analysis, so no hoisting is needed).
  if (ins.src.is_xmm()) {
    b.emit(Opcode::kMovqRX, Operand::gpr(kScratchB),
           Operand::xmm(ins.src.reg));
  } else {
    b.emit(Opcode::kLoad, Operand::gpr(kScratchB), ins.src);
  }
  exponent_of(b, kScratchB);
  // r0 = max(e_a, e_b).
  b.emit(Opcode::kCmp, Operand::gpr(kScratchA), Operand::gpr(kScratchB));
  const auto no_swap = b.branch_fwd(Opcode::kJge);
  b.emit(Opcode::kMov, Operand::gpr(kScratchA), Operand::gpr(kScratchB));
  b.land(no_swap);

  // The original operation, untouched.
  b.emit(ins.op, ins.dst, ins.src);

  // e_r = exponent(result); cancelled bits = max_in - e_r.
  b.emit(Opcode::kMovqRX, Operand::gpr(kScratchB),
         Operand::xmm(ins.dst.reg));
  exponent_of(b, kScratchB);
  b.emit(Opcode::kSub, Operand::gpr(kScratchA), Operand::gpr(kScratchB));

  // Record when cancelled bits >= threshold.
  b.emit(Opcode::kCmp, Operand::gpr(kScratchA),
         Operand::make_imm(opts.min_cancel_bits));
  const auto skip_record = b.branch_fwd(Opcode::kJl);
  {
    // Per-instruction event counter.
    const auto slot_mem = Operand::mem_abs(static_cast<std::int32_t>(
        layout.counter_base + 8 * slot));
    b.emit(Opcode::kLoad, Operand::gpr(kScratchB), slot_mem);
    b.emit(Opcode::kAdd, Operand::gpr(kScratchB), Operand::make_imm(1));
    b.emit(Opcode::kStore, slot_mem, Operand::gpr(kScratchB));
    // Histogram bin min(bits, 63).
    b.emit(Opcode::kCmp, Operand::gpr(kScratchA), Operand::make_imm(63));
    const auto in_range = b.branch_fwd(Opcode::kJle);
    b.emit(Opcode::kMov, Operand::gpr(kScratchA), Operand::make_imm(63));
    b.land(in_range);
    const auto hist_mem = Operand::mem_bisd(
        arch::kNoReg, kScratchA, 8,
        static_cast<std::int32_t>(layout.histogram_base));
    b.emit(Opcode::kLoad, Operand::gpr(kScratchB), hist_mem);
    b.emit(Opcode::kAdd, Operand::gpr(kScratchB), Operand::make_imm(1));
    b.emit(Opcode::kStore, hist_mem, Operand::gpr(kScratchB));
  }
  b.land(skip_record);

  // Shadow-value maintenance loop (every operation): the expensive part of
  // the cited tools. An LCG step per iteration on the shadow cell.
  if (opts.shadow_iters > 0) {
    const auto shadow_mem = Operand::mem_abs(
        static_cast<std::int32_t>(layout.shadow_base));
    b.emit(Opcode::kMov, Operand::gpr(kScratchB),
           Operand::make_imm(opts.shadow_iters));
    const auto loop = b.mark();
    b.emit(Opcode::kLoad, Operand::gpr(kScratchA), shadow_mem);
    b.emit(Opcode::kImul, Operand::gpr(kScratchA),
           Operand::make_imm(static_cast<std::int64_t>(
               6364136223846793005ull)));
    b.emit(Opcode::kAdd, Operand::gpr(kScratchA),
           Operand::make_imm(static_cast<std::int64_t>(
               1442695040888963407ull)));
    b.emit(Opcode::kStore, shadow_mem, Operand::gpr(kScratchA));
    b.emit(Opcode::kSub, Operand::gpr(kScratchB), Operand::make_imm(1));
    b.emit(Opcode::kCmp, Operand::gpr(kScratchB), Operand::make_imm(0));
    b.branch_back(Opcode::kJg, loop);
  }

  b.emit(Opcode::kPop, Operand::gpr(kScratchB));
  b.emit(Opcode::kPop, Operand::gpr(kScratchA));
  return b.finish();
}

}  // namespace

CancellationResult instrument_cancellation(
    const program::Image& image, const CancellationOptions& options) {
  program::Program prog = program::lift(image);

  // Pass 1: count sites and lay out the analysis area after bss.
  std::size_t sites = 0;
  for (const auto& fn : prog.functions) {
    for (const auto& blk : fn.blocks) {
      for (const auto& ins : blk.instrs) {
        if (is_cancellation_site(ins)) ++sites;
      }
    }
  }
  CancellationResult out;
  CancellationLayout& lay = out.layout;
  const std::uint64_t bss_base =
      prog.bss_base != 0 ? prog.bss_base : prog.data_base + prog.data.size();
  std::uint64_t cursor = (bss_base + prog.bss_size + 63) & ~63ull;
  lay.counter_base = cursor;
  lay.num_slots = sites;
  cursor += 8 * sites;
  lay.histogram_base = cursor;
  cursor += 8 * 64;
  lay.shadow_base = cursor;
  cursor += 8;
  prog.bss_size = cursor - bss_base;
  constexpr std::uint64_t kStackReserve = 1ull << 20;
  while (bss_base + prog.bss_size + kStackReserve > prog.memory_size) {
    prog.memory_size *= 2;
  }

  // Pass 2: splice the analysis snippets.
  std::size_t next_slot = 0;
  const auto would_wrap = [](const Instr& ins) {
    return is_cancellation_site(ins);
  };
  const auto factory =
      [&](const Instr& ins) -> std::optional<SnippetChain> {
    if (!is_cancellation_site(ins)) return std::nullopt;
    const std::size_t slot = next_slot++;
    lay.slot_origin.push_back(ins.origin != arch::kNoAddr ? ins.origin
                                                          : ins.addr);
    return build_cancel_snippet(ins, options, lay, slot);
  };
  InstrumentStats stats;
  const program::Program patched =
      splice_snippets(prog, would_wrap, factory, &stats);
  FPMIX_CHECK(next_slot == sites);
  out.image = program::relayout(patched);
  return out;
}

CancellationReport read_cancellation_report(
    const vm::Machine& machine, const CancellationLayout& layout) {
  CancellationReport rep;
  for (std::size_t s = 0; s < layout.num_slots; ++s) {
    const std::uint64_t count =
        machine.read_memory_u64(layout.counter_base + 8 * s);
    if (count != 0) {
      rep.events_by_addr[layout.slot_origin[s]] += count;
      rep.total_events += count;
    }
  }
  for (std::size_t bin = 0; bin < 64; ++bin) {
    rep.bits_histogram[bin] =
        machine.read_memory_u64(layout.histogram_base + 8 * bin);
  }
  return rep;
}

}  // namespace fpmix::instrument
