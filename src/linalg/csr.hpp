// Compressed-sparse-row matrices, generators, and the iterative solvers the
// kernels are modelled on (CG and an algebraic-multigrid-style V-cycle with
// Jacobi smoothing). Templated on the scalar so the double/float speedup
// twins (Sections 3.2/3.3) share one implementation.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace fpmix::linalg {

template <typename T>
struct Csr {
  std::size_t n = 0;                 // square
  std::vector<std::int64_t> rowptr;  // n+1
  std::vector<std::int64_t> col;     // nnz
  std::vector<T> val;                // nnz

  std::size_t nnz() const { return val.size(); }

  std::vector<T> matvec(const std::vector<T>& x) const {
    FPMIX_CHECK(x.size() == n);
    std::vector<T> y(n, T(0));
    for (std::size_t i = 0; i < n; ++i) {
      T acc = T(0);
      for (std::int64_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
        acc += val[static_cast<std::size_t>(k)] *
               x[static_cast<std::size_t>(col[static_cast<std::size_t>(k)])];
      }
      y[i] = acc;
    }
    return y;
  }

  template <typename U>
  Csr<U> cast() const {
    Csr<U> out;
    out.n = n;
    out.rowptr = rowptr;
    out.col = col;
    out.val.resize(val.size());
    for (std::size_t i = 0; i < val.size(); ++i) {
      out.val[i] = static_cast<U>(val[i]);
    }
    return out;
  }
};

/// 2D 5-point Poisson operator on an m x m grid (n = m*m), Dirichlet.
Csr<double> make_poisson2d(std::size_t m);

/// Random sparse SPD matrix in the spirit of NAS CG's makea: a banded-random
/// sparsity pattern, symmetric, with a dominant diagonal shift.
Csr<double> make_random_spd(std::size_t n, std::size_t nnz_per_row,
                            double shift, std::uint64_t seed);

/// Conjugate gradient. Returns the final residual 2-norm; x is in/out.
template <typename T>
double cg_solve(const Csr<T>& a, const std::vector<T>& b, std::vector<T>* x,
                std::size_t max_iters);

/// Weighted-Jacobi relaxation sweeps: x <- x + w D^-1 (b - A x).
template <typename T>
void jacobi(const Csr<T>& a, const std::vector<T>& b, std::vector<T>* x,
            double weight, std::size_t sweeps);

/// Geometric two-grid hierarchy for make_poisson2d operators: full-weighting
/// restriction and bilinear prolongation on nested m x m grids.
struct MgLevelSizes {
  std::vector<std::size_t> m_per_level;  // finest first
};

/// V-cycle multigrid solver for the 2D Poisson operator. `m` must be
/// (2^k - 1)-shaped so grids nest (m -> (m-1)/2). Returns the residual
/// 2-norm after `cycles` V-cycles.
template <typename T>
double poisson_vcycle_solve(std::size_t m, const std::vector<T>& b,
                            std::vector<T>* x, std::size_t cycles,
                            std::size_t pre_sweeps = 2,
                            std::size_t post_sweeps = 1);

/// Reusable multigrid hierarchy: build once, cycle many times. This is the
/// shape of the AMG microkernel's timed region (setup excluded), used by
/// bench_amg to measure the double-vs-single arithmetic speedup.
template <typename T>
class PoissonMg {
 public:
  explicit PoissonMg(std::size_t m);

  /// Runs `cycles` V-cycles on x (in/out); returns the residual 2-norm.
  double cycle(const std::vector<T>& b, std::vector<T>* x,
               std::size_t cycles, std::size_t pre_sweeps = 2,
               std::size_t post_sweeps = 1) const;

  std::size_t n() const { return ms_.front() * ms_.front(); }

 private:
  std::vector<std::size_t> ms_;
  std::vector<Csr<T>> ops_;
};

extern template class PoissonMg<double>;
extern template class PoissonMg<float>;

extern template double cg_solve<double>(const Csr<double>&,
                                        const std::vector<double>&,
                                        std::vector<double>*, std::size_t);
extern template double cg_solve<float>(const Csr<float>&,
                                       const std::vector<float>&,
                                       std::vector<float>*, std::size_t);
extern template void jacobi<double>(const Csr<double>&,
                                    const std::vector<double>&,
                                    std::vector<double>*, double, std::size_t);
extern template void jacobi<float>(const Csr<float>&, const std::vector<float>&,
                                   std::vector<float>*, double, std::size_t);
extern template double poisson_vcycle_solve<double>(std::size_t,
                                                    const std::vector<double>&,
                                                    std::vector<double>*,
                                                    std::size_t, std::size_t,
                                                    std::size_t);
extern template double poisson_vcycle_solve<float>(std::size_t,
                                                   const std::vector<float>&,
                                                   std::vector<float>*,
                                                   std::size_t, std::size_t,
                                                   std::size_t);

}  // namespace fpmix::linalg
