// Append-only JSONL journaling for crash-safe incremental tools.
//
// A journal is a plain-text file of one JSON object per line. Records are
// appended with a single buffered write followed by a flush, so an
// interrupted process loses at most the line it was writing -- and readers
// ignore an unterminated final line, which makes truncated journals (crash,
// kill -9, full disk) safe to resume from.
//
// Beyond the torn-tail case, journals written through append_sealed are
// self-healing against *interior* damage: every sealed record carries a
// sequence number and a CRC32 of everything before the checksum field, so a
// reader can detect a corrupted, truncated-in-place, or replayed line and
// skip exactly that record instead of abandoning the file. Unsealed lines
// still parse (mixed-version journals stay readable); they simply get no
// integrity guarantee.
//
// Only flat objects with string / integer / boolean values are supported;
// that is all the trial journal needs, and it keeps the parser small enough
// to audit.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fpmix {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum used
/// to seal journal records. Stable across platforms and builds.
std::uint32_t crc32(std::string_view data);

/// Seals a flat JSON object (must end in '}') by splicing
/// `,"seq":<seq>,"crc":"<8 hex>"` before the closing brace, where the CRC
/// covers every byte of the line before the crc field itself.
std::string seal_record(std::string_view json_object, std::uint64_t seq);

/// Outcome of integrity-checking one journal line.
enum class SealCheck {
  kOk,        // sealed and the CRC matches
  kUnsealed,  // no crc field: a legacy (version-1) or foreign record
  kCorrupt,   // sealed but damaged: CRC mismatch or mangled seal framing
};
SealCheck check_seal(std::string_view line);

/// Escapes `s` for use inside a JSON string literal (quotes not included).
std::string json_escape(std::string_view s);

/// A flat JSON object, decoded: values are unescaped strings for string
/// fields and the literal token text for numbers / booleans.
using JsonRecord = std::map<std::string, std::string, std::less<>>;

/// Parses one flat JSON object line. Returns false (leaving *out
/// unspecified) on malformed input, nesting, or non-scalar values.
bool parse_flat_json(std::string_view line, JsonRecord* out);

/// Extracts the sequence number of a sealed record. Returns false for
/// unsealed or damaged lines (callers should check_seal first when they
/// need integrity, not just a seq).
bool sealed_seq(const std::string& line, std::uint64_t* seq);

/// Atomically replaces `path` with `contents`: writes `path` + ".tmp",
/// flushes and fsyncs it, renames over `path`, then fsyncs the containing
/// directory so the rename itself survives power loss (rename alone only
/// guarantees the *file* contents are durable, not the directory entry
/// pointing at them). Returns false -- with the tmp file removed and `path`
/// untouched -- on any failure.
bool atomic_replace(const std::string& path, std::string_view contents,
                    std::string* error = nullptr);

/// Append-only JSONL writer. Appends are mutex-guarded, so a supervisor
/// thread and pool workers can journal concurrently: each record is written
/// whole (line + seal + flush under one lock), never interleaved.
class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens `path` for appending, creating it if absent.
  /// Returns false (and stays closed) when the file cannot be opened.
  bool open(const std::string& path);
  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  void close();

  /// Appends one record as a single line ('\n' added here) and flushes.
  void append(const std::string& json_object);

  /// Appends `json_object` sealed with the next sequence number and its
  /// CRC32 (see seal_record). Sequence numbers restart at 1 per journal
  /// session unless set_next_seq was called after a replay. Returns the
  /// sealed line exactly as written (no trailing newline) so callers can
  /// replicate the committed record elsewhere -- the distributed scheduler
  /// streams it to every live endpoint.
  std::string append_sealed(const std::string& json_object);

  /// When on, every append is followed by fsync(2), so a sealed record
  /// survives power loss, not just process death (fflush alone only moves
  /// bytes into the kernel page cache). Costs one disk round-trip per
  /// record; the search enables it for isolated (crash-expected) runs.
  void set_fsync(bool on) { fsync_ = on; }
  bool fsync_enabled() const { return fsync_; }

  /// Continues sequence numbering after a replay (pass highest-seen + 1).
  void set_next_seq(std::uint64_t seq) { next_seq_ = seq; }
  std::uint64_t next_seq() const { return next_seq_; }

  /// Reads every complete line of `path`. A trailing chunk without a final
  /// newline -- the signature of a crash mid-append -- is dropped. A missing
  /// file yields an empty vector.
  static std::vector<std::string> read_lines(const std::string& path);

 private:
  void append_locked(const std::string& json_object);

  mutable std::mutex mutex_;  // guards file_, next_seq_ across appenders
  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t next_seq_ = 1;
  bool fsync_ = false;
};

}  // namespace fpmix
