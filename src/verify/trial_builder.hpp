// TrialBuilder: the shared patch+predecode front end of the evaluation
// pipeline.
//
// Wraps an instrument::IncrementalPatcher (per-function variant reuse) and
// an ImageCache (whole-image reuse for repeated configs: retries,
// majority-vote rounds, fault campaigns) behind one thread-safe build()
// call. verify::evaluate_config uses it when EvalOptions::builder is set --
// both the in-process search path and each long-lived sandboxed worker keep
// one TrialBuilder alive across trials, which is where the cross-trial
// savings come from.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "config/config.hpp"
#include "config/structure.hpp"
#include "instrument/incremental.hpp"
#include "program/image.hpp"
#include "verify/image_cache.hpp"

namespace fpmix::verify {

class TrialBuilder {
 public:
  struct Options {
    instrument::InstrumentOptions instrument;
    std::size_t image_cache_capacity = 64;
  };

  /// One built trial plus its cost/savings accounting. `*_saved_ns` are
  /// estimates against the first (cold) build's stage times; an image-cache
  /// hit is credited the full cold baselines.
  struct Built {
    std::shared_ptr<const vm::ExecutableImage> exec;
    instrument::InstrumentStats stats;
    bool cache_hit = false;
    std::uint64_t patch_ns = 0;
    std::uint64_t predecode_ns = 0;
    std::uint64_t patch_saved_ns = 0;
    std::uint64_t predecode_saved_ns = 0;
    std::uint32_t funcs_reused = 0;
    std::uint32_t funcs_total = 0;
  };

  /// Aggregate counters across all build() calls.
  struct Stats {
    std::uint64_t image_cache_hits = 0;
    std::uint64_t image_cache_misses = 0;
    std::uint64_t variant_hits = 0;
    std::uint64_t variant_misses = 0;
    std::uint64_t patch_saved_ns = 0;
    std::uint64_t predecode_saved_ns = 0;
    std::uint64_t funcs_reused = 0;
    std::uint64_t funcs_patched = 0;
  };

  /// `index` must have been built from `original` and outlive the builder.
  TrialBuilder(const program::Image& original,
               const config::StructureIndex& index);
  TrialBuilder(const program::Image& original,
               const config::StructureIndex& index, Options options);

  /// Patches + predecodes `cfg`, reusing whatever the caches hold.
  /// Bit-identical to the from-scratch instrument_image +
  /// ExecutableImage::build pipeline. Thread-safe; throws exactly where the
  /// from-scratch path would (callers already treat those as trial
  /// outcomes).
  Built build(const config::PrecisionConfig& cfg);

  Stats stats() const;

 private:
  mutable std::mutex mu_;
  instrument::IncrementalPatcher patcher_;
  ImageCache cache_;
  std::uint64_t fingerprint_;

  // First-build stage times: the cold baseline the savings estimates are
  // measured against.
  bool have_cold_ = false;
  std::uint64_t cold_patch_ns_ = 0;
  std::uint64_t cold_predecode_ns_ = 0;

  Stats totals_;
};

}  // namespace fpmix::verify
