#include "program/layout.hpp"

#include <vector>

#include "arch/encode.hpp"
#include "support/error.hpp"

namespace fpmix::program {
namespace {

/// True when block `bi`'s fall-through edge needs an explicit jmp because
/// its successor will not be laid out immediately after it.
bool needs_explicit_jump(const Function& fn, std::size_t bi) {
  const BasicBlock& b = fn.blocks[bi];
  if (b.ends_with_stop()) return false;
  if (b.ends_with_branch() && !b.ends_with_cond_branch()) return false;
  FPMIX_CHECK(b.fallthrough != kNoIndex);
  return static_cast<std::size_t>(b.fallthrough) != bi + 1;
}

// Size of an emitted jmp (opcode + form + 8-byte imm).
std::uint32_t jmp_size() {
  static const std::uint32_t size = arch::encoded_size(
      arch::make2(arch::Opcode::kJmp, arch::Operand::none(),
                  arch::Operand::make_imm(0)));
  return size;
}

void write_le64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu);
  }
}

}  // namespace

FuncLayout layout_function(const Function& fn) {
  FuncLayout out;
  out.name = fn.name;
  out.module = fn.module;

  // Pass 1: local block offsets. Instruction encodings have a fixed size
  // that does not depend on operand values, so one forward pass suffices.
  std::vector<std::uint64_t> block_off(fn.blocks.size());
  std::uint64_t size = 0;
  for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
    block_off[bi] = size;
    for (const arch::Instr& ins : fn.blocks[bi].instrs) {
      size += arch::encoded_size(ins);
    }
    if (needs_explicit_jump(fn, bi)) size += jmp_size();
  }
  out.bytes.reserve(size);

  // Pass 2: emit with local targets plus relocation/provenance records.
  for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
    const BasicBlock& blk = fn.blocks[bi];
    // Raw origin and offset of the last instruction emitted for this block,
    // feeding the explicit-jmp origin-inheritance rule.
    std::uint64_t last_origin_raw = arch::kNoAddr;
    std::uint32_t last_off = 0;
    bool has_last = false;
    for (std::size_t ii = 0; ii < blk.instrs.size(); ++ii) {
      arch::Instr ins = blk.instrs[ii];
      const auto& info = arch::opcode_info(ins.op);
      const auto off = static_cast<std::uint32_t>(out.bytes.size());
      if (info.is_branch) {
        FPMIX_CHECK(ii + 1 == blk.instrs.size());
        const std::uint64_t target =
            block_off[static_cast<std::size_t>(blk.taken)];
        ins.src.imm = static_cast<std::int64_t>(target);
        out.relocs.push_back(
            {off + arch::encoded_size(ins) - 8, target, /*is_call=*/false});
      } else if (info.is_call) {
        out.relocs.push_back({off + arch::encoded_size(ins) - 8,
                              static_cast<std::uint64_t>(ins.src.imm),
                              /*is_call=*/true});
      }
      if (ins.origin != arch::kNoAddr) {
        out.origins.push_back({off, ins.origin, 0, /*from_jmp=*/false});
      }
      last_origin_raw = ins.origin;
      last_off = off;
      has_last = true;
      arch::encode(ins, &out.bytes);
    }
    if (needs_explicit_jump(fn, bi)) {
      const std::uint64_t target =
          block_off[static_cast<std::size_t>(blk.fallthrough)];
      const arch::Instr jmp = arch::make2(
          arch::Opcode::kJmp, arch::Operand::none(),
          arch::Operand::make_imm(static_cast<std::int64_t>(target)));
      const auto off = static_cast<std::uint32_t>(out.bytes.size());
      out.relocs.push_back(
          {off + arch::encoded_size(jmp) - 8, target, /*is_call=*/false});
      if (has_last) {
        out.origins.push_back({off, last_origin_raw, last_off,
                               /*from_jmp=*/true});
      }
      arch::encode(jmp, &out.bytes);
    }
  }
  return out;
}

Image assemble(const Program& meta,
               const std::vector<const FuncLayout*>& funcs) {
  FPMIX_CHECK(funcs.size() == meta.functions.size());

  std::vector<std::uint64_t> func_base(funcs.size());
  std::uint64_t pc = meta.code_base;
  for (std::size_t fi = 0; fi < funcs.size(); ++fi) {
    func_base[fi] = pc;
    pc += funcs[fi]->bytes.size();
  }

  Image img;
  img.code_base = meta.code_base;
  img.data_base = meta.data_base;
  img.data = meta.data;
  img.bss_base = meta.bss_base;
  img.bss_size = meta.bss_size;
  img.memory_size = meta.memory_size;
  img.code.reserve(pc - meta.code_base);

  for (std::size_t fi = 0; fi < funcs.size(); ++fi) {
    const FuncLayout& fl = *funcs[fi];
    const std::uint64_t base = func_base[fi];
    const std::size_t off0 = img.code.size();
    img.code.insert(img.code.end(), fl.bytes.begin(), fl.bytes.end());
    for (const FuncLayout::Reloc& rel : fl.relocs) {
      const std::uint64_t abs =
          rel.is_call ? func_base[static_cast<std::size_t>(rel.value)]
                      : base + rel.value;
      write_le64(img.code.data() + off0 + rel.imm_off, abs);
    }
    for (const FuncLayout::OriginRec& rec : fl.origins) {
      const std::uint64_t at = base + rec.off;
      // A jmp inherits the origin of the instruction it follows; an origin
      // of kNoAddr there means "the previous instruction's own address".
      const std::uint64_t origin =
          rec.from_jmp && rec.origin == arch::kNoAddr ? base + rec.prev_off
                                                      : rec.origin;
      if (origin != at) img.origins.push_back({at, origin});
    }
    Symbol sym;
    sym.name = fl.name;
    sym.module = fl.module;
    sym.addr = base;
    sym.size = (fi + 1 < funcs.size() ? func_base[fi + 1] : pc) - base;
    img.symbols.push_back(std::move(sym));
  }

  img.entry = func_base[static_cast<std::size_t>(meta.entry_function)];
  img.validate();
  return img;
}

Image relayout(const Program& prog) {
  prog.validate();
  std::vector<FuncLayout> layouts;
  layouts.reserve(prog.functions.size());
  for (const Function& fn : prog.functions) {
    layouts.push_back(layout_function(fn));
  }
  std::vector<const FuncLayout*> ptrs;
  ptrs.reserve(layouts.size());
  for (const FuncLayout& fl : layouts) ptrs.push_back(&fl);
  return assemble(prog, ptrs);
}

Image rewrite_identity(const Image& image) { return relayout(lift(image)); }

}  // namespace fpmix::program
