// Matrix Market I/O (coordinate format), the exchange format of the paper's
// SuperLU experiment ("the memplus memory circuit design data set from the
// Matrix Market").
#pragma once

#include <string>

#include "linalg/csr.hpp"

namespace fpmix::linalg {

/// Parses a Matrix Market coordinate-format `matrix` with `real` or
/// `integer` fields, `general` or `symmetric` symmetry. Throws Error on
/// malformed input.
Csr<double> read_matrix_market(std::string_view text);

/// Serializes a CSR matrix as coordinate general real.
std::string write_matrix_market(const Csr<double>& a);

/// File variants.
Csr<double> read_matrix_market_file(const std::string& path);
void write_matrix_market_file(const Csr<double>& a, const std::string& path);

}  // namespace fpmix::linalg
