// Tests for the breadth-first configuration search: descent semantics,
// optimizations, stop levels, final-composition behaviour, and the paper's
// key claims (coarsest-granularity results, pruning effectiveness).
#include <gtest/gtest.h>

#include "config/textio.hpp"
#include "kernels/workload.hpp"
#include "lang/builder.hpp"
#include "lang/compile.hpp"
#include "program/layout.hpp"
#include "program/program.hpp"
#include "search/search.hpp"
#include "verify/evaluate.hpp"

namespace fpmix::search {
namespace {

using config::Precision;
using lang::Builder;
using lang::Expr;

struct Prepared {
  program::Image image;
  config::StructureIndex index;
  std::unique_ptr<verify::Verifier> verifier;
};

/// A program with engineered sensitivity: module `soft` tolerates single
/// precision (its contribution is rounded to 1e-2), module `hard` does not
/// (its exact value feeds the tightly-checked output).
lang::ProgramModel two_module_program() {
  Builder b;
  auto soft_out = b.var_f64("soft_out");
  auto hard_out = b.var_f64("hard_out");

  b.begin_func("soft_work", "soft");
  {
    auto i = b.var_i64("s_i");
    auto acc = b.var_f64("s_acc");
    b.set(acc, b.cf(0.0));
    b.for_(i, b.ci(0), b.ci(50), [&] {
      b.set(acc, Expr(acc) + sqrt_(to_f64(Expr(i) + b.ci(1))));
    });
    // Quantize so float rounding cannot show (acc ~ 238; float error ~1e-5).
    b.set(soft_out, floor_(Expr(acc) * b.cf(100.0)));
  }
  b.end_func();

  b.begin_func("hard_work", "hard");
  {
    auto i = b.var_i64("h_i");
    auto acc = b.var_f64("h_acc");
    b.set(acc, b.cf(0.0));
    b.for_(i, b.ci(0), b.ci(50), [&] {
      b.set(acc, Expr(acc) + b.cf(1.0) / to_f64(Expr(i) + b.ci(3)));
    });
    b.set(hard_out, acc);
  }
  b.end_func();

  b.begin_func("main", "main_mod");
  b.call("soft_work");
  b.call("hard_work");
  b.output(soft_out);
  b.output(hard_out);
  b.end_func();
  return b.take_model();
}

Prepared prepare(const lang::ProgramModel& model, double rel_tol) {
  Prepared p{program::relayout(lang::compile(model, lang::Mode::kDouble)),
             {}, nullptr};
  p.index = config::StructureIndex::build(program::lift(p.image));
  std::vector<double> ref = verify::reference_outputs(p.image);
  p.verifier =
      std::make_unique<verify::RelativeErrorVerifier>(std::move(ref),
                                                      rel_tol);
  return p;
}

TEST(Search, FindsModuleLevelReplacement) {
  Prepared p = prepare(two_module_program(), 1e-12);
  SearchOptions opts;
  SearchResult res = run_search(p.image, &p.index, *p.verifier, opts);

  // Module `soft` passes whole; module `hard` must be refused at every
  // granularity that matters dynamically.
  const std::size_t soft_mod = p.index.module_named("soft");
  EXPECT_EQ(res.final_config.module_flag(soft_mod), Precision::kSingle);
  EXPECT_TRUE(res.final_passed);
  EXPECT_GT(res.stats.replaced_static, 0u);

  // The hard module's accumulation instructions stay double.
  const std::size_t hard_fn = p.index.func_named("hard_work");
  std::size_t hard_replaced = 0;
  for (std::size_t i : p.index.funcs()[hard_fn].candidates) {
    if (res.final_config.resolve(p.index, i) == Precision::kSingle) {
      ++hard_replaced;
    }
  }
  EXPECT_LT(hard_replaced, p.index.funcs()[hard_fn].candidates.size());
}

TEST(Search, CoarsestGranularityIsPreferred) {
  // When a whole module passes, no finer structure of it is ever tested.
  Prepared p = prepare(two_module_program(), 1e-12);
  SearchOptions opts;
  SearchResult res = run_search(p.image, &p.index, *p.verifier, opts);
  for (const TestRecord& rec : res.trace) {
    if (rec.unit.find("module soft") != std::string::npos) {
      EXPECT_TRUE(rec.passed);
    }
    // No sub-structure of soft was tested: soft_work never appears.
    EXPECT_EQ(rec.unit.find("func soft_work"), std::string::npos)
        << rec.unit;
  }
}

TEST(Search, StopLevelLimitsDescent) {
  Prepared p = prepare(two_module_program(), 1e-12);
  SearchOptions opts;
  opts.stop_level = StopLevel::kFunction;
  SearchResult res = run_search(p.image, &p.index, *p.verifier, opts);
  for (const TestRecord& rec : res.trace) {
    EXPECT_EQ(rec.unit.find("block"), std::string::npos) << rec.unit;
    EXPECT_EQ(rec.unit.find("insn"), std::string::npos) << rec.unit;
  }

  Prepared p2 = prepare(two_module_program(), 1e-12);
  opts.stop_level = StopLevel::kModule;
  SearchResult res2 = run_search(p2.image, &p2.index, *p.verifier, opts);
  // Modules only: one test per module that has candidates (main_mod has
  // none) plus the final composition.
  std::size_t modules_with_candidates = 0;
  for (const auto& m : p2.index.modules()) {
    if (!m.candidates.empty()) ++modules_with_candidates;
  }
  EXPECT_EQ(res2.configs_tested, modules_with_candidates + 1);
}

TEST(Search, BinarySplitHelpsOnSprinkledFailures) {
  // The paper's stated case for binary splitting: "a large number of
  // replaceable sections sprinkled with a few non-replaceable sections."
  // One big straight-line block of 24 independent narrowable adds plus a
  // single sensitive chain: splitting isolates the bad region in O(log n)
  // tests instead of testing every instruction.
  Builder b;
  b.begin_func("main", "m");
  auto good = b.var_f64("good");
  auto bad = b.var_f64("bad");
  b.set(good, b.cf(0.0));
  // 24 independently harmless candidates (results quantized via floor).
  for (int k = 0; k < 24; ++k) {
    b.set(good, floor_(Expr(good) + b.cf(1.0 + k)));
  }
  // A precision-critical tail in the same block.
  b.set(bad, b.cf(1.0) / b.cf(3.0) + b.cf(1.0) / b.cf(7.0));
  b.output(good);
  b.output(bad);
  b.end_func();
  const lang::ProgramModel model = b.take_model();

  Prepared p1 = prepare(model, 1e-12);
  SearchOptions with_split;
  with_split.binary_split = true;
  const SearchResult r1 =
      run_search(p1.image, &p1.index, *p1.verifier, with_split);

  Prepared p2 = prepare(model, 1e-12);
  SearchOptions no_split;
  no_split.binary_split = false;
  const SearchResult r2 =
      run_search(p2.image, &p2.index, *p2.verifier, no_split);

  // Identical replacement outcome, fewer configurations with splitting.
  EXPECT_EQ(r1.stats.replaced_static, r2.stats.replaced_static);
  EXPECT_LT(r1.configs_tested, r2.configs_tested);
}

TEST(Search, PrioritizationTestsHotUnitsFirst) {
  Prepared p = prepare(two_module_program(), 1e-12);
  SearchOptions opts;
  opts.prioritize_by_profile = true;
  SearchResult res = run_search(p.image, &p.index, *p.verifier, opts);
  ASSERT_GE(res.trace.size(), 2u);
  // First tested unit must be the heaviest module by candidate executions.
  std::uint64_t best = 0;
  std::size_t best_m = 0;
  for (std::size_t m = 0; m < p.index.modules().size(); ++m) {
    const std::uint64_t wgt = p.index.candidate_weight_of_module(m);
    if (wgt > best) {
      best = wgt;
      best_m = m;
    }
  }
  EXPECT_NE(res.trace[0].unit.find(p.index.modules()[best_m].name),
            std::string::npos)
      << res.trace[0].unit;
}

TEST(Search, ParallelEvaluationMatchesSerial) {
  kernels::Workload w = kernels::make_ep('S');
  const program::Image img = kernels::build_image(w);
  auto verifier = kernels::make_verifier(w, img);

  SearchOptions serial;
  serial.num_threads = 1;
  auto ix1 = config::StructureIndex::build(program::lift(img));
  const SearchResult r1 = run_search(img, &ix1, *verifier, serial);

  SearchOptions parallel;
  parallel.num_threads = 4;
  auto ix2 = config::StructureIndex::build(program::lift(img));
  const SearchResult r2 = run_search(img, &ix2, *verifier, parallel);

  EXPECT_EQ(r1.stats.replaced_static, r2.stats.replaced_static);
  EXPECT_EQ(r1.final_passed, r2.final_passed);
}

TEST(Search, AllReplaceableWorkloadNeedsFewTests) {
  // The paper's AMG result: the whole kernel passes at module level, so the
  // search needs only #modules + 1 runs.
  kernels::Workload w = kernels::make_amg();
  const program::Image img = kernels::build_image(w);
  auto verifier = kernels::make_verifier(w, img);
  auto ix = config::StructureIndex::build(program::lift(img));
  const SearchResult res = run_search(img, &ix, *verifier, {});
  EXPECT_TRUE(res.final_passed);
  EXPECT_NEAR(res.stats.static_pct, 100.0, 1e-9);
  EXPECT_NEAR(res.stats.dynamic_pct, 100.0, 1e-9);
  EXPECT_EQ(res.configs_tested, ix.modules().size() + 1);
}

TEST(Search, FinalConfigSerializesToFigure3Format) {
  Prepared p = prepare(two_module_program(), 1e-12);
  const SearchResult res = run_search(p.image, &p.index, *p.verifier, {});
  const std::string text = config::to_text(p.index, res.final_config);
  const config::PrecisionConfig parsed = config::from_text(p.index, text);
  EXPECT_EQ(parsed, res.final_config);
}

}  // namespace
}  // namespace fpmix::search
