// MG: the NAS multigrid benchmark analogue.
//
// A 2D Poisson V-cycle on nested (2^k - 1)-sized grids with matrix-free
// 5-point stencils: Gauss-Seidel smoothing, residual computation,
// full-weighting restriction and bilinear prolongation, one set of functions
// generated per level (Fortran MG similarly specializes per level via array
// arguments). Multigrid's self-correcting structure makes much of the
// arithmetic tolerant of narrowing -- the paper measures ~84% static / ~25%
// dynamic replacement for MG.
#include "kernels/workload.hpp"

#include "lang/builder.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::kernels {

using lang::Arr;
using lang::Builder;
using lang::Expr;
using lang::Var;

namespace {

struct MgParams {
  std::size_t m;        // finest interior size, (2^k - 1)
  std::size_t cycles;   // V-cycles
};

MgParams mg_params(char cls) {
  switch (cls) {
    case 'S': return {15, 3};
    case 'W': return {31, 4};
    case 'A': return {63, 4};
    case 'C': return {127, 4};
    default: throw Error(strformat("mg: unknown class %c", cls));
  }
}

}  // namespace

Workload make_mg(char cls, int ranks) {
  const MgParams p = mg_params(cls);
  FPMIX_CHECK(ranks >= 1);

  // Level sizes (interior points per side); grids padded with a zero ring.
  std::vector<std::size_t> ms;
  for (std::size_t m = p.m; m >= 3; m = (m - 1) / 2) {
    ms.push_back(m);
    if (m == 3) break;
  }
  const std::size_t levels = ms.size();

  Builder b;
  std::vector<Arr> u(levels), f(levels), r(levels);
  for (std::size_t l = 0; l < levels; ++l) {
    const std::size_t side = ms[l] + 2;  // zero boundary ring
    u[l] = b.array_f64(strformat("u%zu", l), side * side);
    f[l] = b.array_f64(strformat("f%zu", l), side * side);
    r[l] = b.array_f64(strformat("r%zu", l), side * side);
  }

  const auto stride = [&](std::size_t l) {
    return static_cast<std::int64_t>(ms[l] + 2);
  };
  const auto interior = [&](std::size_t l) {
    return static_cast<std::int64_t>(ms[l]);
  };

  // --- module mg_smooth: Gauss-Seidel sweeps, one function per level --------
  for (std::size_t l = 0; l < levels; ++l) {
    b.begin_func(strformat("smooth%zu", l), "mg_smooth");
    auto i = b.var_i64(strformat("sm_i%zu", l));
    auto j = b.var_i64(strformat("sm_j%zu", l));
    auto id = b.var_i64(strformat("sm_id%zu", l));
    const std::int64_t s = stride(l);
    // MPI variant: ranks sweep disjoint row bands, then share the grid.
    Var lo = b.var_i64(strformat("sm_lo%zu", l));
    Var hi = b.var_i64(strformat("sm_hi%zu", l));
    if (ranks > 1) {
      auto rows = b.var_i64(strformat("sm_rows%zu", l));
      b.set(rows, (b.ci(interior(l)) + b.mpi_size() - b.ci(1)) /
                      b.mpi_size());
      b.set(lo, b.ci(1) + b.mpi_rank() * Expr(rows));
      b.set(hi, Expr(lo) + Expr(rows));
      b.if_(Expr(hi) > b.ci(interior(l) + 1),
            [&] { b.set(hi, b.ci(interior(l) + 1)); });
    } else {
      b.set(lo, b.ci(1));
      b.set(hi, b.ci(interior(l) + 1));
    }
    b.for_(i, Expr(lo), Expr(hi), [&] {
      b.for_(j, b.ci(1), b.ci(interior(l) + 1), [&] {
        b.set(id, Expr(i) * b.ci(s) + Expr(j));
        b.store(u[l], Expr(id),
                (f[l][Expr(id)] + u[l][Expr(id) - b.ci(1)] +
                 u[l][Expr(id) + b.ci(1)] + u[l][Expr(id) - b.ci(s)] +
                 u[l][Expr(id) + b.ci(s)]) /
                    b.cf(4.0));
      });
    });
    if (ranks > 1) {
      const auto total = static_cast<std::int64_t>((ms[l] + 2) * (ms[l] + 2));
      // Bands were computed on disjoint rows of a zeroed copy union; for the
      // overhead study a full-grid average keeps ranks consistent: each rank
      // contributes its band, others contribute zeros via masking is
      // overkill -- we simply reduce the whole grid and divide by ranks
      // where every rank computed every row (lo..hi covers all rows when
      // ranks == 1). To stay simple and deterministic, MPI smoothing
      // reduces the updated grid by taking the element-wise sum of bands:
      // ranks write only their own rows, other rows hold pre-sweep values,
      // so we cannot naively sum. Instead ranks synchronize by exchanging
      // the full grid: every rank zeroes the rows it does not own first.
      b.allreduce_vec(u[l], b.ci(total));
    }
    b.end_func();
  }

  // For the MPI variant the smoothing above requires non-owned rows to be
  // zero before the reduction; a helper clears them.
  if (ranks > 1) {
    for (std::size_t l = 0; l < levels; ++l) {
      b.begin_func(strformat("clear_other_rows%zu", l), "mg_smooth");
      auto i = b.var_i64(strformat("cl_i%zu", l));
      auto j = b.var_i64(strformat("cl_j%zu", l));
      auto lo = b.var_i64(strformat("cl_lo%zu", l));
      auto hi = b.var_i64(strformat("cl_hi%zu", l));
      auto rows = b.var_i64(strformat("cl_rows%zu", l));
      const std::int64_t s = stride(l);
      b.set(rows, (b.ci(interior(l)) + b.mpi_size() - b.ci(1)) /
                      b.mpi_size());
      b.set(lo, b.ci(1) + b.mpi_rank() * Expr(rows));
      b.set(hi, Expr(lo) + Expr(rows));
      b.if_(Expr(hi) > b.ci(interior(l) + 1),
            [&] { b.set(hi, b.ci(interior(l) + 1)); });
      b.for_(i, b.ci(0), b.ci(s), [&] {
        b.if_(Expr(i) < Expr(lo), [&] {
          b.for_(j, b.ci(0), b.ci(s), [&] {
            b.store(u[l], Expr(i) * b.ci(s) + Expr(j), b.cf(0.0));
          });
        });
        b.if_(Expr(i) >= Expr(hi), [&] {
          b.for_(j, b.ci(0), b.ci(s), [&] {
            b.store(u[l], Expr(i) * b.ci(s) + Expr(j), b.cf(0.0));
          });
        });
      });
      b.end_func();
    }
  }

  // --- module mg_transfer: residual / restriction / prolongation ------------
  for (std::size_t l = 0; l < levels; ++l) {
    b.begin_func(strformat("resid%zu", l), "mg_transfer");
    auto i = b.var_i64(strformat("rs_i%zu", l));
    auto j = b.var_i64(strformat("rs_j%zu", l));
    auto id = b.var_i64(strformat("rs_id%zu", l));
    const std::int64_t s = stride(l);
    b.for_(i, b.ci(1), b.ci(interior(l) + 1), [&] {
      b.for_(j, b.ci(1), b.ci(interior(l) + 1), [&] {
        b.set(id, Expr(i) * b.ci(s) + Expr(j));
        b.store(r[l], Expr(id),
                f[l][Expr(id)] -
                    (b.cf(4.0) * u[l][Expr(id)] - u[l][Expr(id) - b.ci(1)] -
                     u[l][Expr(id) + b.ci(1)] - u[l][Expr(id) - b.ci(s)] -
                     u[l][Expr(id) + b.ci(s)]));
      });
    });
    b.end_func();
  }

  for (std::size_t l = 0; l + 1 < levels; ++l) {
    // Restriction: full weighting of r_l into f_{l+1}; u_{l+1} cleared.
    b.begin_func(strformat("restrict%zu", l), "mg_transfer");
    auto ic = b.var_i64(strformat("rt_ic%zu", l));
    auto jc = b.var_i64(strformat("rt_jc%zu", l));
    auto fi = b.var_i64(strformat("rt_fi%zu", l));
    auto fj = b.var_i64(strformat("rt_fj%zu", l));
    auto idc = b.var_i64(strformat("rt_idc%zu", l));
    auto idf = b.var_i64(strformat("rt_idf%zu", l));
    const std::int64_t sc = stride(l + 1);
    const std::int64_t sf = stride(l);
    b.for_(ic, b.ci(1), b.ci(interior(l + 1) + 1), [&] {
      b.for_(jc, b.ci(1), b.ci(interior(l + 1) + 1), [&] {
        b.set(fi, b.ci(2) * Expr(ic));
        b.set(fj, b.ci(2) * Expr(jc));
        b.set(idf, Expr(fi) * b.ci(sf) + Expr(fj));
        b.set(idc, Expr(ic) * b.ci(sc) + Expr(jc));
        // Full weighting scaled by 4: the unscaled 5-point stencil absorbs
        // h^2, so the coarse equation needs the h_c^2/h_f^2 = 4 factor.
        b.store(
            f[l + 1], Expr(idc),
            b.cf(1.0) * r[l][Expr(idf)] +
                b.cf(0.5) * (r[l][Expr(idf) - b.ci(1)] +
                             r[l][Expr(idf) + b.ci(1)] +
                             r[l][Expr(idf) - b.ci(sf)] +
                             r[l][Expr(idf) + b.ci(sf)]) +
                b.cf(0.25) * (r[l][Expr(idf) - b.ci(sf) - b.ci(1)] +
                              r[l][Expr(idf) - b.ci(sf) + b.ci(1)] +
                              r[l][Expr(idf) + b.ci(sf) - b.ci(1)] +
                              r[l][Expr(idf) + b.ci(sf) + b.ci(1)]));
        b.store(u[l + 1], Expr(idc), b.cf(0.0));
      });
    });
    b.end_func();

    // Prolongation: bilinear scatter of u_{l+1} added into u_l.
    b.begin_func(strformat("prolong%zu", l), "mg_transfer");
    auto pic = b.var_i64(strformat("pl_ic%zu", l));
    auto pjc = b.var_i64(strformat("pl_jc%zu", l));
    auto pidc = b.var_i64(strformat("pl_idc%zu", l));
    auto pidf = b.var_i64(strformat("pl_idf%zu", l));
    auto v = b.var_f64(strformat("pl_v%zu", l));
    b.for_(pic, b.ci(1), b.ci(interior(l + 1) + 1), [&] {
      b.for_(pjc, b.ci(1), b.ci(interior(l + 1) + 1), [&] {
        b.set(pidc, Expr(pic) * b.ci(sc) + Expr(pjc));
        b.set(pidf, b.ci(2) * Expr(pic) * b.ci(sf) + b.ci(2) * Expr(pjc));
        b.set(v, u[l + 1][Expr(pidc)]);
        b.store(u[l], Expr(pidf), u[l][Expr(pidf)] + Expr(v));
        b.store(u[l], Expr(pidf) - b.ci(1),
                u[l][Expr(pidf) - b.ci(1)] + b.cf(0.5) * Expr(v));
        b.store(u[l], Expr(pidf) + b.ci(1),
                u[l][Expr(pidf) + b.ci(1)] + b.cf(0.5) * Expr(v));
        b.store(u[l], Expr(pidf) - b.ci(sf),
                u[l][Expr(pidf) - b.ci(sf)] + b.cf(0.5) * Expr(v));
        b.store(u[l], Expr(pidf) + b.ci(sf),
                u[l][Expr(pidf) + b.ci(sf)] + b.cf(0.5) * Expr(v));
        b.store(u[l], Expr(pidf) - b.ci(sf) - b.ci(1),
                u[l][Expr(pidf) - b.ci(sf) - b.ci(1)] +
                    b.cf(0.25) * Expr(v));
        b.store(u[l], Expr(pidf) - b.ci(sf) + b.ci(1),
                u[l][Expr(pidf) - b.ci(sf) + b.ci(1)] +
                    b.cf(0.25) * Expr(v));
        b.store(u[l], Expr(pidf) + b.ci(sf) - b.ci(1),
                u[l][Expr(pidf) + b.ci(sf) - b.ci(1)] +
                    b.cf(0.25) * Expr(v));
        b.store(u[l], Expr(pidf) + b.ci(sf) + b.ci(1),
                u[l][Expr(pidf) + b.ci(sf) + b.ci(1)] +
                    b.cf(0.25) * Expr(v));
      });
    });
    b.end_func();
  }

  // --- module mg_main ---------------------------------------------------------
  b.begin_func("main", "mg_main");
  {
    auto c = b.var_i64("mn_c");
    auto i = b.var_i64("mn_i");
    auto acc = b.var_f64("mn_acc");
    auto usum = b.var_f64("mn_usum");

    // Point sources, NAS style: a few +1/-1 charges in the interior.
    const std::int64_t s0 = stride(0);
    const std::int64_t m0 = interior(0);
    b.store(f[0], b.ci((m0 / 3 + 1) * s0 + m0 / 4 + 1), b.cf(1.0));
    b.store(f[0], b.ci((m0 / 2 + 1) * s0 + 2 * m0 / 3 + 1), b.cf(-1.0));
    b.store(f[0], b.ci((2 * m0 / 3 + 1) * s0 + m0 / 2 + 1), b.cf(1.0));
    b.store(f[0], b.ci((m0 / 5 + 1) * s0 + 4 * m0 / 5 + 1), b.cf(-1.0));

    b.for_(c, b.ci(0), b.ci(static_cast<std::int64_t>(p.cycles)), [&] {
      // Down-sweep.
      for (std::size_t l = 0; l + 1 < levels; ++l) {
        if (ranks > 1) b.call(strformat("clear_other_rows%zu", l));
        b.call(strformat("smooth%zu", l));
        if (ranks > 1) b.call(strformat("clear_other_rows%zu", l));
        b.call(strformat("smooth%zu", l));
        b.call(strformat("resid%zu", l));
        b.call(strformat("restrict%zu", l));
      }
      // Coarsest solve by repeated smoothing.
      for (int k = 0; k < 8; ++k) {
        if (ranks > 1) {
          b.call(strformat("clear_other_rows%zu", levels - 1));
        }
        b.call(strformat("smooth%zu", levels - 1));
      }
      // Up-sweep.
      for (std::size_t l = levels - 1; l-- > 0;) {
        b.call(strformat("prolong%zu", l));
        if (ranks > 1) b.call(strformat("clear_other_rows%zu", l));
        b.call(strformat("smooth%zu", l));
      }
    });

    // Final residual L2 norm (figure of merit) + solution checksum (aux).
    b.call("resid0");
    b.set(acc, b.cf(0.0));
    b.set(usum, b.cf(0.0));
    const auto total0 = static_cast<std::int64_t>((ms[0] + 2) * (ms[0] + 2));
    b.for_(i, b.ci(0), b.ci(total0), [&] {
      b.set(acc, Expr(acc) + r[0][Expr(i)] * r[0][Expr(i)]);
      b.set(usum, Expr(usum) + u[0][Expr(i)]);
    });
    b.output(sqrt_(acc));
    b.output(usum);
  }
  b.end_func();

  Workload w;
  w.name = strformat("mg.%c%s", cls, ranks > 1 ? ".mpi" : "");
  w.model = b.take_model();
  // Residual norm: moderately tight (it sits well above the single-precision
  // noise floor only for the double-critical parts). Solution checksum: the
  // converged quantity, loose.
  w.rel_tol = 5e-6;
  w.output_tols = {{0, 5e-6, 1e-9}, {1, 1e-4, 1e-7}};
  return w;
}

}  // namespace fpmix::kernels
