# Empty dependencies file for bench_bitexact.
# This may be replaced when dependencies are built.
